//! The physical storage substrate: on-disk partitions, metadata-pruned
//! scans, and a real reorganization — the machinery behind Table I.
//!
//! ```text
//! cargo run --release --example physical_store
//! ```
//!
//! Writes a telemetry-shaped table to disk partitioned by arrival time,
//! runs pruned scans, then physically reorganizes to a collector-major
//! Qd-tree layout and shows how the same queries' I/O changes.

use oreo::layout::{build_exact_model, LayoutSpec, QdTreeBuilder};
use oreo::prelude::*;
use std::time::Instant;

fn main() -> oreo::storage::Result<()> {
    let bundle = oreo::workload::telemetry_bundle(60_000, 3);
    let table = &bundle.table;
    let k = 16;

    // initial on-disk layout: range partitions on arrival_time
    let by_time = RangeLayout::from_sample(table, 0, k);
    let assignment = by_time.assign(table);
    let dir = std::env::temp_dir().join(format!("oreo-example-store-{}", std::process::id()));
    let t0 = Instant::now();
    let store = DiskStore::create(&dir, table, &assignment, k)?;
    println!(
        "wrote {} partitions, {:.1} MB compressed, in {:?}",
        store.num_partitions(),
        store.total_bytes() as f64 / 1e6,
        t0.elapsed()
    );

    // two queries from the production mix
    let schema = table.schema();
    let day = 24 * 3600;
    let time_q = QueryBuilder::new(schema)
        .between("arrival_time", 30 * day, 33 * day)
        .build();
    let collector_q = QueryBuilder::new(schema)
        .eq("collector", "collector-001")
        .build();

    for (name, q) in [
        ("3-day time range", &time_q),
        ("collector filter", &collector_q),
    ] {
        let stats = store.scan(q)?;
        println!(
            "[by-time layout] {name}: read {}/{} partitions, {} rows matched",
            stats.partitions_read,
            store.num_partitions(),
            stats.rows_matched
        );
    }

    // physically reorganize to a Qd-tree optimized for collector queries
    let workload: Vec<Query> = (0..50)
        .map(|i| {
            QueryBuilder::new(schema)
                .eq("collector", format!("collector-{:03}", i % 8).as_str())
                .build()
        })
        .collect();
    let tree = QdTreeBuilder::new(k).build(table, &workload);
    let dir2 = dir.join("reorg");
    let t0 = Instant::now();
    let store2 = store.reorganize(&dir2, tree.k(), |t, row| tree.route(t, row))?;
    println!(
        "\nphysical reorganization to {} took {:?} (read → re-route → regroup → compress + write)",
        tree.describe(),
        t0.elapsed()
    );

    for (name, q) in [
        ("3-day time range", &time_q),
        ("collector filter", &collector_q),
    ] {
        let stats = store2.scan(q)?;
        println!(
            "[qd-tree layout] {name}: read {}/{} partitions, {} rows matched",
            stats.partitions_read,
            store2.num_partitions(),
            stats.rows_matched
        );
    }

    // the logical cost model agrees with what the physical scans did
    let model = build_exact_model(&tree, 1, table);
    println!(
        "\nlogical cost model: collector query reads {:.1}% of rows on the new layout",
        model.cost(&collector_q) * 100.0
    );

    store2.destroy()?;
    store.destroy()?;
    Ok(())
}
