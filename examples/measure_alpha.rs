//! Measuring α on your own hardware, then configuring OREO with it — the
//! deployment workflow the paper prescribes (§VI-D1: "users can measure
//! typical values of α based on their system configuration to provide as
//! inputs to OREO").
//!
//! ```text
//! cargo run --release --example measure_alpha
//! ```
//!
//! Writes a physical store, times a full-scan query versus a physical
//! reorganization (read → re-route → regroup → compress + write + sync),
//! and runs the framework with the measured ratio as its α.

use oreo::layout::LayoutSpec;
use oreo::prelude::*;
use oreo::sim::{run_policy, PolicySetup, Technique};
use std::time::Instant;

fn main() -> oreo::storage::Result<()> {
    // 1. Build a physical store from a TPC-H-shaped table.
    let bundle = oreo::workload::tpch_bundle(120_000, 7);
    let table = &bundle.table;
    let k = 16;
    let by_key = RangeLayout::from_sample(table, bundle.default_sort_col, k);
    let dir = std::env::temp_dir().join(format!("oreo-measure-{}", std::process::id()));
    let store = DiskStore::create(&dir, table, &by_key.assign(table), k)?;
    println!(
        "store: {} partitions, {:.1} MB on disk",
        store.num_partitions(),
        store.total_bytes() as f64 / 1e6
    );

    // 2. Measure the scan/reorganization ratio (Table I's methodology).
    let t0 = Instant::now();
    for _ in 0..3 {
        store.full_scan()?;
    }
    let scan = t0.elapsed().as_secs_f64() / 3.0;

    let ship = table.schema().col("l_shipdate").expect("shipdate");
    let by_ship = RangeLayout::from_sample(table, ship, k);
    let t0 = Instant::now();
    let store2 = store.reorganize(&dir.join("reorg"), k, |t, row| by_ship.route(t, row))?;
    let reorg = t0.elapsed().as_secs_f64();
    let alpha = (reorg / scan).max(1.0);
    println!("measured: full scan {scan:.3}s, reorganization {reorg:.3}s → α ≈ {alpha:.0}");
    store2.destroy()?;
    store.destroy()?;

    // 3. Run OREO with the measured α against the do-nothing default.
    let stream = bundle.stream(StreamConfig {
        total_queries: 3_000,
        segments: 6,
        seed: 5,
        ..Default::default()
    });
    let config = OreoConfig {
        alpha,
        partitions: 32,
        data_sample_rows: 4_000,
        ..Default::default()
    };
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
    let mut oreo = setup.oreo();
    let r = run_policy(&mut oreo, &stream.queries, 0);
    println!(
        "\nOREO with measured α: query {:.0} + reorg {:.0} = {:.0} logical scans \
         ({} reorganizations over {} queries)",
        r.ledger.query_cost,
        r.ledger.reorg_cost,
        r.total(),
        r.switches,
        r.ledger.queries
    );
    println!(
        "equivalent wall-time estimate: {:.1}s query + {:.1}s reorg",
        r.ledger.query_cost * scan,
        r.switches as f64 * reorg
    );
    Ok(())
}
