//! Plugging a custom layout technique into OREO.
//!
//! ```text
//! cargo run --release --example custom_layout
//! ```
//!
//! OREO is agnostic to the layout generation mechanism (§III-B): anything
//! that implements `generate_layout(D, Q, k)` plugs in. This example
//! implements a simple **single-column sort** generator — it ranges on
//! whichever column the recent window queries most — and runs the framework
//! with it, demonstrating the two-trait extension surface:
//!
//! * [`LayoutSpec`]  — a deterministic record → partition routing function;
//! * [`LayoutGenerator`] — builds a spec from (data sample, workload, k).

use oreo::layout::{LayoutGenerator, RangeLayout, SharedSpec};
use oreo::prelude::*;
use oreo::sampling::top_queried_columns;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Ranges on the single most-queried column of the workload sample.
struct HottestColumnSort;

impl LayoutGenerator for HottestColumnSort {
    fn name(&self) -> &str {
        "hottest-column-sort"
    }

    fn generate(
        &self,
        sample: &Table,
        workload: &[Query],
        k: usize,
        _rng: &mut StdRng,
    ) -> SharedSpec {
        // the most queried column, falling back to column 0 on a cold start
        let col = top_queried_columns(workload, 1)
            .first()
            .copied()
            .unwrap_or(0);
        Arc::new(RangeLayout::from_sample(sample, col, k))
    }
}

fn main() {
    let bundle = oreo::workload::tpch_bundle(15_000, 5);
    let stream = bundle.stream(StreamConfig {
        total_queries: 2_000,
        segments: 5,
        seed: 9,
        ..Default::default()
    });

    let config = OreoConfig {
        alpha: 40.0,
        partitions: 32,
        data_sample_rows: 2_000,
        ..Default::default()
    };
    let initial = oreo::sim::default_spec(&bundle, config.partitions, 0);
    let mut system = Oreo::new(
        Arc::clone(&bundle.table),
        initial,
        Arc::new(HottestColumnSort),
        config,
    );

    for q in &stream.queries {
        let report = system.observe(q);
        if let Some(target) = report.reorg_decision {
            println!(
                "query {:>4}: switch to {}",
                report.seq,
                system.layout_name(target).unwrap_or_default()
            );
        }
    }

    let l = system.ledger();
    println!(
        "\ncustom generator: total cost {:.1} over {} queries ({} switches, {} states)",
        l.total(),
        l.queries,
        l.switches,
        system.num_states()
    );
    println!(
        "mean fraction of table read per query: {:.3}",
        l.mean_query_cost()
    );
}
