//! Telemetry scenario: the paper's motivating production use case.
//!
//! ```text
//! cargo run --release --example telemetry_drift
//! ```
//!
//! An ingestion-job log (modeled after the description of VMware
//! SuperCollider) serves a query mix that drifts between time-range
//! dashboards, per-collector drill-downs, and failure investigations. A
//! layout tuned for any one of these is poor for the others — exactly the
//! situation where online reorganization pays. The example compares OREO
//! against the best *static* layout built with full workload knowledge.

use oreo::prelude::*;
use oreo::sim::{run_policy, PolicySetup, Technique};

fn main() {
    let bundle = oreo::workload::telemetry_bundle(30_000, 11);
    println!(
        "telemetry log: {} rows; templates: {}",
        bundle.table.num_rows(),
        bundle
            .templates
            .iter()
            .map(|t| t.name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let stream = bundle.stream(StreamConfig {
        total_queries: 8_000,
        segments: 10,
        seed: 3,
        ..Default::default()
    });

    let config = OreoConfig {
        alpha: 80.0,
        partitions: 64,
        data_sample_rows: 6_000,
        ..Default::default()
    };
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);

    let mut oreo = setup.oreo();
    let mut static_p = setup.static_policy(&stream.queries);
    let r_oreo = run_policy(&mut oreo, &stream.queries, 0);
    let r_static = run_policy(&mut static_p, &stream.queries, 0);

    println!("\nmethod  query-cost  reorg-cost  total  switches");
    for r in [&r_static, &r_oreo] {
        println!(
            "{:7} {:>10.1} {:>11.1} {:>6.1} {:>9}",
            r.name,
            r.ledger.query_cost,
            r.ledger.reorg_cost,
            r.total(),
            r.switches
        );
    }
    let f = oreo.framework();
    println!(
        "\nOREO explored {} candidate layouts, admitted {} (ε-filter rejected {}),",
        f.manager_stats().generated,
        f.manager_stats().admitted,
        f.manager_stats().rejected
    );
    println!(
        "ran {} D-UMTS phases, peak state space {} (competitive ratio bound 2·H({}) ≈ {:.1}).",
        f.phases(),
        f.max_states_seen(),
        f.max_states_seen(),
        2.0 * (1..=f.max_states_seen())
            .map(|i| 1.0 / i as f64)
            .sum::<f64>()
    );
    let saved = (1.0 - r_oreo.total() / r_static.total()) * 100.0;
    println!("total compute saved vs the best static layout: {saved:.1}%");
}
