//! Concurrent serving quickstart: run OREO as a live engine — multi-threaded
//! scans over snapshot-isolated table state, with layout switches built in
//! the background and published without blocking readers.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```

use oreo::prelude::*;
use oreo::sim::{default_spec, make_generator, Technique};
use oreo::workload::tpch_bundle;
use std::sync::Arc;

fn main() {
    // A TPC-H-shaped dataset and a drifting query stream.
    let bundle = tpch_bundle(20_000, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: 4_000,
        segments: 6,
        seed: 7,
        ..Default::default()
    });

    let config = OreoConfig {
        alpha: 60.0,
        partitions: 32,
        data_sample_rows: 2_000,
        seed: 3,
        ..Default::default()
    };

    // Boot the engine: 4 scan workers, background reorganizer on, measured
    // delay semantics (the logical switch lands when the rebuilt snapshot
    // is published, not after a configured number of queries).
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, config.partitions, config.seed),
        make_generator(Technique::QdTree, &bundle),
        config,
        EngineConfig {
            workers: 4,
            delay: DelaySemantics::Measured,
            ..Default::default()
        },
    );

    // Feed the stream from this thread (any number of threads may submit).
    let mut tracked = None;
    for (i, q) in stream.queries.iter().enumerate() {
        if i == stream.queries.len() / 2 {
            tracked = Some(engine.submit_tracked(q.clone()));
        } else {
            engine.submit(q.clone());
        }
    }

    // A tracked query returns its full outcome, including the exact global
    // row ids it matched and which snapshot served it.
    let outcome = tracked.expect("tracked one query").wait();
    println!(
        "tracked query: {} matching rows, served by layout {} (epoch {}), {} µs",
        outcome.scan.matches.len(),
        outcome.served_layout,
        outcome.served_epoch,
        outcome.latency.as_micros(),
    );

    engine.drain();
    let stats = engine.shutdown();

    println!();
    println!(
        "served {} queries at {:.0} qps with {} workers",
        stats.queries, stats.qps, stats.workers
    );
    println!(
        "latency: p50 {:.0} µs, p99 {:.0} µs",
        stats.latency.p50_us, stats.latency.p99_us
    );
    println!(
        "ledger: query cost {:.1}, reorg cost {:.1} ({} switches) — identical to the \
         sequential simulator's accounting",
        stats.ledger.query_cost, stats.ledger.reorg_cost, stats.switches
    );
    for w in &stats.windows {
        println!(
            "reorg → layout {}: Δ = {} queries / {:.1} ms (decided at seq {}, {} rows re-routed \
             into {} partitions)",
            w.target,
            w.queries_during,
            w.wall.as_secs_f64() * 1e3,
            w.decided_seq,
            w.rows,
            w.partitions,
        );
    }
    if stats.windows.is_empty() {
        println!("(no reorganization triggered on this stream)");
    }
}
