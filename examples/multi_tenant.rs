//! Multi-tenant serving quickstart: N tables behind one engine — one
//! worker pool, one shared buffer pool, one reorganizer pacing every
//! tenant's layout switches under a global α budget.
//!
//! Each tenant keeps its own bookkeeping core, so its cost ledger is
//! byte-identical to what a dedicated single-tenant engine (or the
//! sequential simulator) would have produced on the same substream.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use oreo::prelude::*;
use oreo::sim::{default_spec, make_generator, Technique};
use oreo::workload::{telemetry_bundle, tpch_bundle};
use std::sync::Arc;

fn main() {
    // Two co-resident tenants with different schemas and different drift:
    // a TPC-H-shaped analytics table and a telemetry table.
    let analytics = tpch_bundle(20_000, 1);
    let telemetry = telemetry_bundle(20_000, 2);

    let config = OreoConfig {
        alpha: 60.0,
        partitions: 32,
        data_sample_rows: 2_000,
        seed: 3,
        ..Default::default()
    };

    let tenants = vec![
        TenantSpec {
            name: "analytics".into(),
            table: Arc::clone(&analytics.table),
            initial_spec: default_spec(&analytics, config.partitions, config.seed),
            generator: make_generator(Technique::QdTree, &analytics),
            oreo: config.clone(),
        },
        TenantSpec {
            name: "telemetry".into(),
            table: Arc::clone(&telemetry.table),
            initial_spec: default_spec(&telemetry, config.partitions, config.seed),
            generator: make_generator(Technique::QdTree, &telemetry),
            oreo: config.clone(),
        },
    ];

    // One engine for both tables. The budget scheduler admits switches
    // only while cumulative reorganization spend stays within a fraction
    // of the query work the stream itself generated (plus a burst
    // allowance); deferred switches are never lost — they are
    // force-admitted after a bounded wait, so every tenant keeps its
    // worst-case guarantee.
    let engine = Engine::start_tenants(
        tenants,
        EngineConfig {
            workers: 2,
            budget: Some(ReorgBudget {
                fraction: 0.05,
                burst: config.alpha,
                max_defer_queries: 2_000,
            }),
            ..Default::default()
        },
    );

    // Interleave the two tenants' drifting streams; any number of threads
    // may submit, each query tagged with its tenant index.
    let streams = [
        analytics.stream(StreamConfig {
            total_queries: 3_000,
            segments: 5,
            seed: 7,
            ..Default::default()
        }),
        telemetry.stream(StreamConfig {
            total_queries: 3_000,
            segments: 5,
            seed: 8,
            ..Default::default()
        }),
    ];
    for i in 0..3_000 {
        for (tenant, stream) in streams.iter().enumerate() {
            engine.submit_to(tenant, stream.queries[i].clone());
        }
    }

    engine.drain();
    let stats = engine.shutdown();

    println!(
        "served {} queries over {} tenants at {:.0} qps",
        stats.queries,
        stats.tenants.len(),
        stats.qps
    );
    for ten in &stats.tenants {
        println!(
            "  {:>10}: {} queries, {} switches ({} deferred by the budget, all \
             published), ledger {:.1} — exactly what a solo run would bill",
            ten.name,
            ten.queries,
            ten.switches,
            ten.reorg_deferrals,
            ten.ledger.total(),
        );
    }
    println!(
        "global α budget: {:.0} billed across all tenants",
        stats.reorg_budget_spent
    );
}
