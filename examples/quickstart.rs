//! Quickstart: run OREO end-to-end on a drifting workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small TPC-H-shaped table, streams 3 000 queries whose template
//! drifts over time, and lets OREO decide when to reorganize. Prints every
//! reorganization decision and the final cost ledger next to the
//! do-nothing baseline (staying on the initial arrival-order layout).

use oreo::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Dataset: denormalized lineitem-like table (20 000 rows).
    let bundle = oreo::workload::tpch_bundle(20_000, 42);
    println!(
        "table: {} rows × {} columns",
        bundle.table.num_rows(),
        bundle.table.schema().len()
    );

    // 2. Workload: 3 000 queries drifting across 6 template segments.
    let stream = bundle.stream(StreamConfig {
        total_queries: 3_000,
        segments: 6,
        seed: 7,
        ..Default::default()
    });
    println!(
        "workload: {} queries, template switches at {:?}\n",
        stream.queries.len(),
        stream.switch_points()
    );

    // 3. OREO: start from range partitioning on the arrival order, generate
    //    Qd-tree candidates from the sliding window, switch via D-UMTS.
    let config = OreoConfig {
        alpha: 60.0,    // reorganization ≈ 60 full scans (Table I)
        partitions: 32, // target partition count
        data_sample_rows: 3_000,
        ..Default::default()
    };
    let initial = oreo::sim::default_spec(&bundle, config.partitions, 0);
    let mut system = Oreo::new(
        Arc::clone(&bundle.table),
        Arc::clone(&initial),
        Arc::new(QdTreeGenerator::new()),
        config,
    );

    // The do-nothing baseline: every query runs on the initial layout.
    let static_model = oreo::layout::build_exact_model(initial.as_ref(), 0, &bundle.table);
    let mut baseline_cost = 0.0;

    for q in &stream.queries {
        let report = system.observe(q);
        baseline_cost += static_model.cost(q);
        if let Some(target) = report.reorg_decision {
            println!(
                "query {:>5}: reorganize → {} (phase {}, {} states live)",
                report.seq,
                system.layout_name(target).unwrap_or_else(|| "?".into()),
                system.phases(),
                system.num_states(),
            );
        }
    }

    let ledger = system.ledger();
    println!("\n--- results over {} queries ---", ledger.queries);
    println!(
        "OREO:     query cost {:8.1} + reorg cost {:6.1} = {:8.1}  ({} switches)",
        ledger.query_cost,
        ledger.reorg_cost,
        ledger.total(),
        ledger.switches
    );
    println!("no-reorg: query cost {baseline_cost:8.1} + reorg cost    0.0 = {baseline_cost:8.1}");
    let saving = (1.0 - ledger.total() / baseline_cost) * 100.0;
    println!("OREO saves {saving:.1}% of total compute");
}
