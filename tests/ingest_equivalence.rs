//! PR 9 satellite: **delta-aware scans are indistinguishable from a naive
//! rebuilt table** under arbitrary interleavings of ingest, scan, and
//! compaction (fold) — matches *and* byte accounting — on both the
//! memory-resident and the disk-tiered (buffer-pooled) serving paths.
//!
//! The reference is `oreo::sim::MutableOracle`: plain `(id, row)` pairs
//! with delta-buffer semantics and row-at-a-time predicate evaluation — no
//! layouts, runs, tombstone overlays, or pruning. The proptests drive a
//! real `DeltaBuffer` + `TableSnapshot` (and, in the tiered variant, a
//! `TieredStore` + `BufferPool`) through the same randomized schedule and
//! assert every scan agrees with the oracle. Folds are rebuilt the way the
//! engine's reorganizer does (carve tombstones from base + runs,
//! concatenate survivors) and cross-checked against the oracle's own
//! rebuild, so id stability survives shrinking too.

use oreo::query::{Atom, ColumnType, Predicate, Scalar, Schema};
use oreo::sim::MutableOracle;
use oreo::storage::{
    concat_tables, BufferPool, BufferPoolConfig, DeltaBuffer, FoldCapture, IngestOp, MergePolicy,
    Table, TableBuilder, TableSnapshot, TieredStore, CHUNK_ROWS,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Two int columns: `v` (the routed/predicated one) and `w` (payload).
fn schema() -> Arc<Schema> {
    Arc::new(Schema::from_pairs([
        ("v", ColumnType::Int),
        ("w", ColumnType::Int),
    ]))
}

fn base_table(n: usize) -> Arc<Table> {
    let s = schema();
    let mut b = TableBuilder::new(Arc::clone(&s));
    for i in 0..n as i64 {
        b.push_row(&[Scalar::Int((i * 7) % 100), Scalar::Int(i % 10)]);
    }
    Arc::new(b.finish())
}

/// Route by `v`'s value band — deterministic, so rebuilt snapshots always
/// exercise metadata pruning on the scanned column.
fn route(base: &Table, k: usize) -> Vec<u32> {
    (0..base.num_rows())
        .map(|r| {
            let Scalar::Int(v) = base.scalar(r, 0) else {
                unreachable!("v is an int column")
            };
            ((v.rem_euclid(100) as usize * k) / 100).min(k - 1) as u32
        })
        .collect()
}

fn rebuild_snapshot(base: &Arc<Table>, ids: &[u32], k: usize) -> TableSnapshot {
    TableSnapshot::build_with_rows(base, ids, &route(base, k), k, 1, "equiv")
}

/// The engine's fold construction, replicated here as the system under
/// test: base survivors, then run survivors oldest-first; ids ascend.
fn fold_tables(base: &Arc<Table>, base_ids: &[u32], cap: &FoldCapture) -> (Arc<Table>, Vec<u32>) {
    let dead = |gid: u32| cap.tombstones.binary_search(&gid).is_ok();
    let keep: Vec<u32> = (0..base.num_rows() as u32)
        .filter(|&pos| !dead(base_ids[pos as usize]))
        .collect();
    let mut ids: Vec<u32> = keep.iter().map(|&pos| base_ids[pos as usize]).collect();
    let mut parts = vec![base.project_rows(&keep)];
    for run in &cap.runs {
        let live: Vec<u32> = (0..run.rows.len() as u32)
            .filter(|&pos| !dead(run.rows[pos as usize]))
            .collect();
        if live.is_empty() {
            continue;
        }
        ids.extend(live.iter().map(|&pos| run.rows[pos as usize]));
        parts.push(run.data.project_rows(&live));
    }
    let merged = concat_tables(base.schema(), &parts).expect("fold concat");
    (Arc::new(merged), ids)
}

/// One abstract op — concretized against the oracle's live-id set at apply
/// time, so updates/deletes always target a live row (as real clients do).
#[derive(Clone, Debug)]
enum AbOp {
    Append { v: i64, w: i64 },
    Update { sel: usize, v: i64 },
    Delete { sel: usize },
}

/// One step of the randomized schedule.
#[derive(Clone, Debug)]
enum Action {
    Ingest(Vec<AbOp>),
    Scan { lo: i64, span: i64 },
    Fold,
}

// The vendored `prop_oneof!` is unweighted; arms are repeated to bias the
// mix (appends 3:1:1 over updates/deletes, folds rarer than the rest).
fn ab_op() -> impl Strategy<Value = AbOp> {
    prop_oneof![
        (-50i64..150, 0i64..10).prop_map(|(v, w)| AbOp::Append { v, w }),
        (-50i64..150, 0i64..10).prop_map(|(v, w)| AbOp::Append { v, w }),
        (-50i64..150, 0i64..10).prop_map(|(v, w)| AbOp::Append { v, w }),
        (any::<usize>(), -50i64..150).prop_map(|(sel, v)| AbOp::Update { sel, v }),
        any::<usize>().prop_map(|sel| AbOp::Delete { sel }),
    ]
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        proptest::collection::vec(ab_op(), 1..8).prop_map(Action::Ingest),
        proptest::collection::vec(ab_op(), 1..8).prop_map(Action::Ingest),
        proptest::collection::vec(ab_op(), 1..8).prop_map(Action::Ingest),
        (-60i64..140, 0i64..60).prop_map(|(lo, span)| Action::Scan { lo, span }),
        (-60i64..140, 0i64..60).prop_map(|(lo, span)| Action::Scan { lo, span }),
        (-60i64..140, 0i64..60).prop_map(|(lo, span)| Action::Scan { lo, span }),
        Just(Action::Fold),
    ]
}

/// Concretize one abstract batch against the oracle's live ids.
fn concretize(oracle: &MutableOracle, ab: &[AbOp]) -> Vec<IngestOp> {
    let mut live = oracle.matches(&Predicate::always_true());
    let mut next = oracle.next_row();
    let mut ops = Vec::with_capacity(ab.len());
    for op in ab {
        match *op {
            AbOp::Append { v, w } => {
                ops.push(IngestOp::Append {
                    values: vec![Scalar::Int(v), Scalar::Int(w)],
                });
                live.push(next);
                next += 1;
            }
            AbOp::Update { sel, v } => {
                if live.is_empty() {
                    continue;
                }
                let victim = live.swap_remove(sel % live.len());
                ops.push(IngestOp::Update {
                    row: victim,
                    values: vec![Scalar::Int(v), Scalar::Int(0)],
                });
                live.push(next);
                next += 1;
            }
            AbOp::Delete { sel } => {
                if live.is_empty() {
                    continue;
                }
                let victim = live.swap_remove(sel % live.len());
                ops.push(IngestOp::Delete { row: victim });
            }
        }
    }
    ops
}

fn between(lo: i64, hi: i64) -> Predicate {
    Predicate::new(vec![Atom::Between {
        col: 0,
        low: Scalar::Int(lo),
        high: Scalar::Int(hi),
    }])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memory serving: vectorized delta-aware scans (and the row-at-a-time
    /// oracle path) equal the mutable oracle after every prefix of a
    /// random ingest/scan/fold schedule, including chunk-straddling base
    /// sizes; delta byte accounting stays a subset of total bytes and is
    /// exactly zero without an overlay.
    #[test]
    fn delta_aware_scan_equals_rebuilt_oracle_in_memory(
        n in prop_oneof![
            1usize..160,
            1usize..160,
            1usize..160,
            CHUNK_ROWS - 6..CHUNK_ROWS + 6,
        ],
        k in 1usize..4,
        actions in proptest::collection::vec(action(), 1..14),
    ) {
        let mut base = base_table(n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut oracle = MutableOracle::new(&base);
        let mut buf = DeltaBuffer::new(
            Arc::clone(base.schema()),
            n as u64,
            MergePolicy::KBinomial { k: 2 },
        );
        let mut snap = rebuild_snapshot(&base, &ids, k);
        for a in &actions {
            match a {
                Action::Ingest(ab) => {
                    let ops = concretize(&oracle, ab);
                    if ops.is_empty() {
                        continue;
                    }
                    oracle.apply(&ops).expect("oracle accepts live-target batch");
                    buf.apply(&ops).expect("buffer accepts live-target batch");
                    snap.set_delta(buf.overlay());
                }
                Action::Scan { lo, span } => {
                    let pred = between(*lo, lo + span);
                    let want = oracle.matches(&pred);
                    let scan = snap.scan(&pred);
                    prop_assert_eq!(&scan.matches, &want, "vectorized path diverged");
                    prop_assert!(scan.delta_bytes_scanned <= scan.bytes_scanned);
                    if snap.delta().is_none() {
                        prop_assert_eq!(scan.delta_bytes_scanned, 0,
                            "empty-delta scans must cost nothing extra");
                    }
                    let rowwise = snap.scan_rowwise(&pred);
                    prop_assert_eq!(&rowwise.matches, &want, "rowwise path diverged");
                }
                Action::Fold => {
                    let Some(cap) = buf.freeze_for_fold() else { continue };
                    let (merged, mids) = fold_tables(&base, &ids, &cap);
                    let (otab, oids) = oracle.rebuild();
                    prop_assert_eq!(&mids, &oids, "fold must preserve the oracle's id set");
                    prop_assert_eq!(merged.num_rows(), otab.num_rows());
                    base = merged;
                    ids = mids;
                    buf.complete_fold();
                    snap = rebuild_snapshot(&base, &ids, k);
                    snap.set_delta(buf.overlay());
                }
            }
        }
        prop_assert_eq!(snap.live_rows(), oracle.live_rows());
    }

    /// Tiered serving: buffer-pooled delta-aware scans equal the oracle
    /// under the same schedules, folds commit through
    /// `publish_with_fold`, and the pooled byte-accounting invariant
    /// `io_cold + io_cached + delta_bytes == bytes_scanned` holds on every
    /// scan.
    #[test]
    fn delta_aware_scan_equals_rebuilt_oracle_tiered(
        n in prop_oneof![
            20usize..120,
            20usize..120,
            CHUNK_ROWS - 4..CHUNK_ROWS + 4,
        ],
        k in 1usize..4,
        cap_pages in 2u64..16,
        actions in proptest::collection::vec(action(), 1..10),
        case in 0u32..1_000_000,
    ) {
        let mut base = base_table(n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut oracle = MutableOracle::new(&base);
        let mut buf = DeltaBuffer::new(
            Arc::clone(base.schema()),
            n as u64,
            MergePolicy::KBinomial { k: 2 },
        );
        let root = std::env::temp_dir().join(format!(
            "oreo-ingest-equiv-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut snap = rebuild_snapshot(&base, &ids, k);
        let (store, _) = TieredStore::create(&root, &mut snap).expect("create store");
        let page_bytes = 256usize;
        let pool = BufferPool::new(BufferPoolConfig {
            capacity_bytes: cap_pages * page_bytes as u64,
            page_bytes,
        });
        for a in &actions {
            match a {
                Action::Ingest(ab) => {
                    let ops = concretize(&oracle, ab);
                    if ops.is_empty() {
                        continue;
                    }
                    oracle.apply(&ops).expect("oracle accepts live-target batch");
                    buf.apply(&ops).expect("buffer accepts live-target batch");
                    snap.set_delta(buf.overlay());
                }
                Action::Scan { lo, span } => {
                    let pred = between(*lo, lo + span);
                    let want = oracle.matches(&pred);
                    let scan = snap.scan_pooled(&pred, &pool).expect("pooled scan");
                    prop_assert_eq!(&scan.matches, &want, "pooled path diverged");
                    prop_assert_eq!(
                        scan.io_cold_bytes + scan.io_cached_bytes + scan.delta_bytes_scanned,
                        scan.bytes_scanned,
                        "pooled byte accounting must stay exact with deltas"
                    );
                }
                Action::Fold => {
                    let Some(cap) = buf.freeze_for_fold() else { continue };
                    let (merged, mids) = fold_tables(&base, &ids, &cap);
                    prop_assert_eq!(&mids, &oracle.rebuild().1);
                    base = merged;
                    ids = mids;
                    let mut folded = rebuild_snapshot(&base, &ids, k);
                    store
                        .publish_with_fold(&mut folded, cap.watermark, cap.next_row)
                        .expect("fold publish");
                    buf.complete_fold();
                    snap = folded;
                    snap.set_delta(buf.overlay());
                }
            }
        }
        prop_assert_eq!(snap.live_rows(), oracle.live_rows());
        drop(snap);
        drop(store);
        let _ = std::fs::remove_dir_all(&root);
    }
}
