//! Workspace-level integration tests for the concurrent serving layer:
//! the engine must change *how* queries are executed (parallel,
//! snapshot-isolated, reorganized in the background) without changing
//! *what* they return or *what* the bookkeeping decides.

use oreo::core::OreoConfig;
use oreo::engine::{DelaySemantics, Engine, EngineConfig};
use oreo::sim::{default_spec, make_generator, run_policy, PolicySetup, Technique};
use oreo::storage::{SnapshotCell, TableSnapshot, TieredStore};
use oreo::workload::{tpch_bundle, StreamConfig};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn config(seed: u64) -> OreoConfig {
    OreoConfig {
        alpha: 30.0,
        partitions: 16,
        window: 100,
        generation_interval: 100,
        data_sample_rows: 1_000,
        seed,
        ..Default::default()
    }
}

/// The concurrent engine on a fixed single-threaded FIFO stream produces
/// *exactly* the ledger and switch decisions of `oreo-sim`'s sequential
/// OREO policy — concurrency changes the serving plane, never the
/// bookkeeping (the PR's acceptance criterion).
#[test]
fn engine_ledger_matches_sequential_sim_on_fixed_stream() {
    let seed = 3;
    let bundle = tpch_bundle(4_000, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: 600,
        segments: 4,
        seed: 2,
        ..Default::default()
    });

    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config(seed));
    let mut sequential = setup.oreo();
    let sim = run_policy(&mut sequential, &stream.queries, 0);

    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, config(seed).partitions, seed),
        make_generator(Technique::QdTree, &bundle),
        config(seed),
        EngineConfig::sequential_parity(),
    );
    for q in &stream.queries {
        engine.submit(q.clone());
    }
    engine.drain();
    let stats = engine.shutdown();

    assert_eq!(stats.ledger, sim.ledger, "ledger diverged from oreo-sim");
    assert_eq!(stats.switches, sim.switches, "switch decisions diverged");
    assert_eq!(stats.queries, 600);

    // PR 9 regression: with ingestion never invoked, the write path is
    // completely inert — nothing compacted, nothing billed as compaction,
    // no delta bytes scanned. This is what keeps the parity above exact.
    assert_eq!(
        stats.ledger.compactions, 0,
        "read-only run billed a compaction"
    );
    assert_eq!(stats.ledger.compaction_cost, 0.0);
    assert_eq!(stats.ingest_batches, 0);
    assert_eq!(stats.folds(), 0);
    assert_eq!(stats.delta_bytes_scanned, 0);
}

/// Scans executing while reorganizations are in flight return exactly the
/// row sets sequential execution would: snapshot isolation means a query
/// sees one complete, consistent partition cover — never a half-moved
/// table.
#[test]
fn concurrent_scans_during_reorg_return_sequential_row_sets() {
    let seed = 5;
    let bundle = tpch_bundle(3_000, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: 400,
        segments: 4,
        seed: 9,
        ..Default::default()
    });
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, config(seed).partitions, seed),
        make_generator(Technique::QdTree, &bundle),
        config(seed),
        EngineConfig {
            workers: 4,
            batch: 8,
            delay: DelaySemantics::Measured,
            ..Default::default()
        },
    );
    let handles: Vec<_> = stream
        .queries
        .iter()
        .map(|q| engine.submit_tracked(q.clone()))
        .collect();
    let n = bundle.table.num_rows() as u32;
    for (q, h) in stream.queries.iter().zip(handles) {
        let out = h.wait();
        let expected: Vec<u32> = (0..n)
            .filter(|&r| bundle.table.row_matches(r as usize, &q.predicate))
            .collect();
        assert_eq!(
            out.scan.matches, expected,
            "row set diverged (stream seq {}, served layout {}, epoch {})",
            q.seq, out.served_layout, out.served_epoch
        );
    }
    let stats = engine.shutdown();
    assert!(
        stats.switches >= 1,
        "stream never triggered a reorganization"
    );
    assert_eq!(
        stats.windows.len() as u64,
        stats.switches,
        "every decision must complete a background build"
    );
    for w in &stats.windows {
        assert!(w.wall >= w.build, "window excludes its own build time?");
        assert_eq!(w.rows, 3_000, "rebuild moved a partial table");
    }
}

/// Disk-tiered serving changes *where* snapshots live (every publish
/// commits a `gen-N/` directory before the pointer swap), not *what* the
/// bookkeeping decides: a single-worker tiered FIFO engine replays
/// `oreo-sim`'s ledger decisions exactly, while the same run also measures
/// the rewrite's byte/wall-clock bill (the empirical α inputs) and
/// recovers its last committed generation after a restart.
#[test]
fn tiered_engine_replays_sim_ledger_and_recovers_generation() {
    let seed = 3;
    let bundle = tpch_bundle(4_000, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: 600,
        segments: 4,
        seed: 2,
        ..Default::default()
    });

    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config(seed));
    let mut sequential = setup.oreo();
    let sim = run_policy(&mut sequential, &stream.queries, 0);

    let root = std::env::temp_dir().join(format!("oreo-itest-tiered-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, config(seed).partitions, seed),
        make_generator(Technique::QdTree, &bundle),
        config(seed),
        EngineConfig::sequential_parity().tiered(&root),
    );
    for q in &stream.queries {
        engine.submit(q.clone());
    }
    engine.drain();
    let stats = engine.shutdown();

    // the acceptance criterion: tiered FIFO replays the ledger exactly
    assert_eq!(stats.ledger, sim.ledger, "tiered ledger diverged");
    assert_eq!(stats.switches, sim.switches, "switch decisions diverged");
    assert_eq!(
        stats.ledger.compactions, 0,
        "read-only run billed a compaction"
    );
    assert_eq!(stats.wal_bytes, 0, "read-only run grew a WAL");

    // the same run produced the empirical-α inputs
    assert!(stats.switches >= 1, "stream never reorganized");
    assert!(stats.bytes_scanned > 0);
    for w in &stats.windows {
        assert!(w.bytes_written > 0, "rewrite persisted nothing");
    }
    assert!(stats.empirical_alpha().is_some(), "α not measurable");

    // tiered scans really travel through the buffer pool: pages were
    // requested, the stream re-touches partitions so some of them hit,
    // and no pooled scan fell back to the in-memory path
    let pool = stats.pool.expect("tiered run has a buffer pool");
    assert!(pool.misses > 0, "no page was ever read from disk");
    assert!(pool.hits > 0, "warm stream should re-hit pooled pages");
    assert!(stats.io_cold_bytes > 0 && stats.io_cached_bytes > 0);
    assert_eq!(
        stats.bytes_scanned,
        stats.io_cold_bytes + stats.io_cached_bytes,
        "tiered byte accounting must equal pooled page traffic"
    );
    assert_eq!(stats.scan_io_errors, 0, "pooled scans degraded");
    assert!(stats.pool_hit_rate() > 0.0);
    assert!(stats.alpha_warm().is_some(), "warm α̂ missing");

    // restart: the last committed generation recovers with the full table
    let (store, recovered, report) =
        TieredStore::open(&root, bundle.table.schema()).expect("reopen");
    assert_eq!(report.generation, 1 + stats.snapshots_published);
    assert_eq!(recovered.total_rows(), bundle.table.num_rows() as u64);
    assert_eq!(
        recovered.row_cover(),
        (0..bundle.table.num_rows() as u32).collect::<Vec<_>>()
    );
    drop(store);
    drop(recovered);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Randomized pin/publish interleavings never lose or duplicate partitions:
/// whatever snapshot a reader pins, its partitions cover every base-table
/// row exactly once.
#[test]
fn snapshot_pin_publish_preserves_partition_cover() {
    let bundle = tpch_bundle(800, 7);
    let table = &bundle.table;
    let n = table.num_rows();
    let expected: Vec<u32> = (0..n as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    let cell = SnapshotCell::new(TableSnapshot::build(table, &vec![0; n], 1, 0, "init"));
    let mut pinned = vec![cell.pin()];
    for round in 1..60u64 {
        // random action mix: publish a random re-partition, pin, or drop
        match rng.random_range(0..3u8) {
            0 | 1 => {
                let k = rng.random_range(1..9usize);
                let salt: u32 = rng.random();
                let assignment: Vec<u32> = (0..n as u32)
                    .map(|r| r.wrapping_mul(2654435761).wrapping_add(salt) % k as u32)
                    .collect();
                cell.publish(TableSnapshot::build(table, &assignment, k, round, "rand"));
            }
            _ => pinned.push(cell.pin()),
        }
        if pinned.len() > 8 {
            pinned.remove(0); // old pins release; Arc drops the snapshot
        }
        // every pin taken at any point still covers the table exactly
        for snap in &pinned {
            assert_eq!(snap.row_cover(), expected, "round {round}");
        }
        assert_eq!(cell.pin().row_cover(), expected, "round {round}");
    }
}
