//! PR 9 satellite: **WAL crash recovery**. Two kill points bracket the
//! write path's durability contract:
//!
//! 1. after the WAL append + fsync (the ack point) but **before the
//!    in-memory delta ever forms** — recovery must replay every acked
//!    batch into a fresh delta buffer, losing nothing;
//! 2. after a compaction **publishes** its folded generation but before
//!    the WAL is truncated — recovery must skip the already-folded records
//!    (replay is idempotent) while still replaying post-fold batches.
//!
//! Both reopen through the real `TieredStore::open` + `Wal::open` path and
//! compare the recovered snapshot against `oreo::sim::MutableOracle`
//! driven with the same acked batches.

use oreo::query::{Atom, ColumnType, Predicate, Scalar, Schema};
use oreo::sim::MutableOracle;
use oreo::storage::{
    DeltaBuffer, IngestOp, MergePolicy, Table, TableBuilder, TableSnapshot, TieredStore, Wal,
};
use std::path::PathBuf;
use std::sync::Arc;

const BASE_ROWS: u32 = 100;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::from_pairs([
        ("v", ColumnType::Int),
        ("w", ColumnType::Int),
    ]))
}

fn base_table() -> Arc<Table> {
    let mut b = TableBuilder::new(schema());
    for i in 0..i64::from(BASE_ROWS) {
        b.push_row(&[Scalar::Int(i), Scalar::Int(i % 7)]);
    }
    Arc::new(b.finish())
}

fn tmproot(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "oreo-ingest-recovery-{tag}-{}-{}",
        std::process::id(),
        rand::random::<u64>()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Single-partition snapshot over `table` with identity ids — layout choice
/// is irrelevant here; durability is what's under test.
fn snapshot_of(table: &Arc<Table>, ids: &[u32], generation: u64) -> TableSnapshot {
    let assignment = vec![0u32; table.num_rows()];
    TableSnapshot::build_with_rows(table, ids, &assignment, 1, generation, "recovery")
}

/// Three acked batches: appends in a fresh value band, an update of base
/// row 10, a delete of base row 20.
fn acked_batches() -> Vec<Vec<IngestOp>> {
    vec![
        (0..5)
            .map(|i| IngestOp::Append {
                values: vec![Scalar::Int(1_000 + i), Scalar::Int(0)],
            })
            .collect(),
        vec![
            IngestOp::Update {
                row: 10,
                values: vec![Scalar::Int(1_005), Scalar::Int(1)],
            },
            IngestOp::Append {
                values: vec![Scalar::Int(1_006), Scalar::Int(2)],
            },
        ],
        vec![IngestOp::Delete { row: 20 }],
    ]
}

fn band(lo: i64, hi: i64) -> Predicate {
    Predicate::new(vec![Atom::Between {
        col: 0,
        low: Scalar::Int(lo),
        high: Scalar::Int(hi),
    }])
}

/// Recovered snapshot ≡ oracle on the probes that cover base survivors,
/// the ingested band, and the whole domain.
fn assert_equivalent(snap: &TableSnapshot, oracle: &MutableOracle) {
    for pred in [
        band(0, 99),
        band(1_000, 1_099),
        band(10, 10),
        band(20, 20),
        Predicate::always_true(),
    ] {
        assert_eq!(
            snap.scan(&pred).matches,
            oracle.matches(&pred),
            "recovered snapshot diverged from oracle on {pred:?}"
        );
    }
    assert_eq!(snap.live_rows(), oracle.live_rows());
}

/// Kill point 1: the WAL has fsync'd (= acked) every batch, but the
/// process dies before any in-memory delta state or publish happens. On
/// reopen, replaying the recovered records restores every acked write.
#[test]
fn acked_writes_survive_crash_before_delta_flush() {
    let root = tmproot("pre-flush");
    std::fs::create_dir_all(&root).expect("mkdir");
    let table = base_table();
    let ids: Vec<u32> = (0..BASE_ROWS).collect();
    let mut snap = snapshot_of(&table, &ids, 0);
    let (store, _) = TieredStore::create(&root, &mut snap).expect("create store");

    let wal_path = root.join("wal.log");
    let (mut wal, fresh) = Wal::open(&wal_path).expect("open wal");
    assert!(fresh.records.is_empty(), "fresh WAL has nothing to recover");

    // Ack (WAL + fsync) every batch; the oracle tracks what clients were
    // promised. No delta buffer exists — that state "dies" with the crash.
    let mut oracle = MutableOracle::new(&table);
    for (i, batch) in acked_batches().iter().enumerate() {
        wal.append(i as u64 + 1, batch).expect("wal append");
        oracle.apply(batch).expect("oracle apply");
    }
    drop(wal);
    drop(store);
    drop(snap); // crash: all volatile state gone

    // Recovery: reopen the store and the WAL, replay past the fold point.
    let schema = schema();
    let (_store, mut recovered, report) = TieredStore::open(&root, &schema).expect("reopen store");
    assert_eq!(report.folded, 0, "nothing was folded before the crash");
    assert_eq!(report.next_row, u64::from(BASE_ROWS));
    let (_wal, recovery) = Wal::open(&wal_path).expect("reopen wal");
    assert_eq!(recovery.records.len(), 3, "all acked batches recovered");
    assert_eq!(recovery.torn_bytes, 0, "clean shutdown of the log file");

    let mut buf = DeltaBuffer::resume(
        Arc::clone(&schema),
        report.next_row,
        report.folded,
        MergePolicy::KBinomial { k: 2 },
    );
    let mut replayed = 0;
    for record in &recovery.records {
        assert!(record.seq > report.folded);
        buf.apply(&record.ops).expect("replay");
        replayed += 1;
    }
    assert_eq!(replayed, 3);
    recovered.set_delta(buf.overlay());

    assert_equivalent(&recovered, &oracle);
    // Recovery re-assigned the exact ids the crashed process acked.
    assert_eq!(buf.next_row(), u64::from(oracle.next_row()));
    let _ = std::fs::remove_dir_all(&root);
}

/// Kill point 2: a fold has published its generation (manifest committed)
/// and more batches were acked after it, but the process dies before
/// `truncate_through(watermark)`. On reopen the stale WAL prefix must be
/// skipped — replay is idempotent — while the post-fold suffix replays.
#[test]
fn published_fold_skips_stale_wal_records_on_recovery() {
    let root = tmproot("post-publish");
    std::fs::create_dir_all(&root).expect("mkdir");
    let table = base_table();
    let ids: Vec<u32> = (0..BASE_ROWS).collect();
    let mut snap = snapshot_of(&table, &ids, 0);
    let (store, _) = TieredStore::create(&root, &mut snap).expect("create store");

    let wal_path = root.join("wal.log");
    let (mut wal, _) = Wal::open(&wal_path).expect("open wal");
    let schema = schema();
    let mut oracle = MutableOracle::new(&table);
    let mut buf = DeltaBuffer::new(
        Arc::clone(&schema),
        u64::from(BASE_ROWS),
        MergePolicy::KBinomial { k: 2 },
    );

    // Batches 1 and 2 land fully (WAL + delta + oracle)...
    let batches = acked_batches();
    for (i, batch) in batches[..2].iter().enumerate() {
        wal.append(i as u64 + 1, batch).expect("wal append");
        buf.apply(batch).expect("delta apply");
        oracle.apply(batch).expect("oracle apply");
    }

    // ...then a fold captures and PUBLISHES them as generation 1. The
    // oracle's rebuild is the folded base: the buffer and oracle saw the
    // same two batches.
    let cap = buf.freeze_for_fold().expect("capture");
    assert_eq!(cap.watermark, 2);
    let (folded_table, folded_ids) = oracle.rebuild();
    let folded_table = Arc::new(folded_table);
    let mut folded_snap = snapshot_of(&folded_table, &folded_ids, 1);
    store
        .publish_with_fold(&mut folded_snap, cap.watermark, cap.next_row)
        .expect("publish fold");
    buf.complete_fold();

    // Batch 3 is acked after the fold...
    wal.append(3, &batches[2]).expect("wal append");
    buf.apply(&batches[2]).expect("delta apply");
    oracle.apply(&batches[2]).expect("oracle apply");

    // ...and the crash hits BEFORE truncate_through(cap.watermark).
    drop(wal);
    drop(store);
    drop(snap);
    drop(folded_snap);
    drop(buf);

    let (_store, mut recovered, report) = TieredStore::open(&root, &schema).expect("reopen store");
    // create published gen 1; the fold's publish is gen 2 and is live
    assert_eq!(
        report.generation, 2,
        "the published fold is the live generation"
    );
    assert_eq!(report.folded, 2, "manifest remembers the fold watermark");
    assert_eq!(report.next_row, cap.next_row);
    let (_wal, recovery) = Wal::open(&wal_path).expect("reopen wal");
    assert_eq!(recovery.records.len(), 3, "nothing was truncated");

    let mut buf2 = DeltaBuffer::resume(
        Arc::clone(&schema),
        report.next_row,
        report.folded,
        MergePolicy::KBinomial { k: 2 },
    );
    let mut replayed = 0;
    for record in &recovery.records {
        if record.seq <= report.folded {
            continue; // already folded into the published base
        }
        buf2.apply(&record.ops).expect("replay");
        replayed += 1;
    }
    assert_eq!(replayed, 1, "only the post-fold batch replays");
    recovered.set_delta(buf2.overlay());

    // No lost acked writes, and no duplicates from the stale prefix: the
    // tautology probe inside assert_equivalent would surface a row that
    // exists both in the folded base and in a wrongly-replayed delta run.
    assert_equivalent(&recovered, &oracle);
    assert_eq!(buf2.next_row(), u64::from(oracle.next_row()));
    let _ = std::fs::remove_dir_all(&root);
}
