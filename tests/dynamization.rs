//! Empirical verification of PR 9's **second worst-case guarantee**: on an
//! adversarial stream of `m` single-row append batches, the k-binomial
//! merge policy's measured write amplification stays within its
//! `k·m^{1/k} + 1` bound (Mathieu et al., arXiv:2011.02615), the naive
//! full merge stays within `(m+1)/2 + 1`, and the transform strictly beats
//! the naive policy. Mirrors the gating assertions of the `dynamization`
//! bench (which runs the same stream at `--quick`/full scale and emits
//! `BENCH_dynamization.json`), the way `competitive_ratio.rs` mirrors the
//! `serve_throughput` α-bound.

use oreo::query::{ColumnType, Scalar, Schema};
use oreo::storage::{kbinomial_sizes, DeltaBuffer, IngestOp, MergePolicy};
use std::sync::Arc;

/// Adversarial stream: every batch is a single row, so each merge decision
/// rewrites previously written rows. Returns (rows_written, final_runs).
fn drive(policy: MergePolicy, m: u64) -> (u64, usize) {
    let schema = Arc::new(Schema::from_pairs([
        ("ts", ColumnType::Int),
        ("v", ColumnType::Int),
    ]));
    let mut buf = DeltaBuffer::new(Arc::clone(&schema), 0, policy);
    let mut rows_written = 0u64;
    for i in 0..m as i64 {
        let receipt = buf
            .apply(&[IngestOp::Append {
                values: vec![Scalar::Int(i), Scalar::Int(i % 97)],
            }])
            .expect("append");
        rows_written += receipt.rows_written;
    }
    (rows_written, buf.runs().count())
}

#[test]
fn measured_write_amplification_respects_every_policy_bound() {
    let m = 512u64;
    let policies = [
        MergePolicy::NaiveFullMerge,
        MergePolicy::KBinomial { k: 2 },
        MergePolicy::KBinomial { k: 3 },
        MergePolicy::KBinomial { k: 4 },
    ];
    let mut written = Vec::new();
    for policy in policies {
        let (rows_written, final_runs) = drive(policy, m);
        let wa = rows_written as f64 / m as f64;
        let bound = policy.write_amplification_bound(m);
        assert!(
            wa <= bound,
            "{policy:?}: measured WA {wa:.2} exceeds its guarantee {bound:.2} at m={m}"
        );
        match policy {
            MergePolicy::NaiveFullMerge => {
                assert_eq!(final_runs, 1, "naive merge keeps a single run")
            }
            MergePolicy::KBinomial { k } => assert!(
                final_runs <= k as usize,
                "k-binomial must keep at most k={k} runs, had {final_runs}"
            ),
        }
        written.push(rows_written);
    }
    assert!(
        written[1] < written[0],
        "k-binomial (k=2) must beat the naive full merge on the adversarial \
         stream ({} vs {} rows written)",
        written[1],
        written[0]
    );
    // Deeper transforms trade read fan-out for less rewriting.
    assert!(written[2] <= written[1] && written[3] <= written[2]);
}

#[test]
fn kbinomial_run_sizes_partition_the_stream() {
    // The transform's invariant shape: at any prefix m, the planned run
    // sizes are a valid k-binomial decomposition — they sum to m and are
    // non-increasing.
    for k in 2u64..=4 {
        for m in [1u64, 2, 7, 63, 64, 100, 511, 512, 1000] {
            let sizes = kbinomial_sizes(m, k);
            assert_eq!(sizes.iter().sum::<u64>(), m, "sizes must cover the stream");
            assert!(
                sizes.windows(2).all(|w| w[0] >= w[1]),
                "k-binomial run sizes must be non-increasing: {sizes:?}"
            );
            assert!(
                sizes.len() <= k as usize,
                "at most k={k} runs at m={m}: {sizes:?}"
            );
        }
    }
}
