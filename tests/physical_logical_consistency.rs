//! The cost model is the physical truth: for any layout and query, the
//! *fraction of rows* the logical model predicts equals what the on-disk
//! store actually reads under metadata pruning — the property that makes
//! simulation results transfer to the physical substrate.

use oreo::layout::{build_exact_model, LayoutSpec, QdTreeBuilder, RangeLayout, ZOrderLayout};
use oreo::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "oreo-it-{}-{}-{}",
        tag,
        std::process::id(),
        rand::random::<u32>()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn logical_cost_equals_physical_rows_read() {
    let bundle = oreo::workload::tpch_bundle(8_000, 1);
    let table = &bundle.table;
    let stream = bundle.stream(StreamConfig {
        total_queries: 40,
        segments: 4,
        seed: 2,
        ..Default::default()
    });

    let specs: Vec<(&str, Box<dyn LayoutSpec>)> = vec![
        ("range", Box::new(RangeLayout::from_sample(table, 0, 8))),
        (
            "zorder",
            Box::new(ZOrderLayout::from_sample(
                table,
                &[table.schema().col("l_shipdate").unwrap(), 4],
                8,
                8,
            )),
        ),
        (
            "qdtree",
            Box::new(QdTreeBuilder::new(8).build(table, &stream.queries)),
        ),
    ];

    for (name, spec) in specs {
        let assignment = spec.assign(table);
        let dir = tmpdir(name);
        let store = DiskStore::create(&dir, table, &assignment, spec.k()).unwrap();
        let model = build_exact_model(spec.as_ref(), 0, table);

        for q in stream.queries.iter().take(12) {
            let stats = store.scan(q).unwrap();
            let physical_fraction = stats.rows_read as f64 / table.num_rows() as f64;
            let logical = model.cost(q);
            assert!(
                (physical_fraction - logical).abs() < 1e-9,
                "{name}: physical {physical_fraction} != logical {logical} for {:?}",
                q.predicate
            );
        }
        store.destroy().unwrap();
    }
}

#[test]
fn matched_rows_are_identical_across_layouts() {
    // Reorganization must never change query *results* — only I/O. The
    // number of matching rows is layout-invariant.
    let bundle = oreo::workload::telemetry_bundle(5_000, 2);
    let table = &bundle.table;
    let stream = bundle.stream(StreamConfig {
        total_queries: 20,
        segments: 2,
        seed: 3,
        ..Default::default()
    });

    let by_time = RangeLayout::from_sample(table, 0, 6);
    let tree = QdTreeBuilder::new(6).build(table, &stream.queries);

    let dir1 = tmpdir("layout-a");
    let dir2 = tmpdir("layout-b");
    let store_a = DiskStore::create(&dir1, table, &by_time.assign(table), by_time.k()).unwrap();
    let store_b = DiskStore::create(&dir2, table, &tree.assign(table), tree.k()).unwrap();

    for q in &stream.queries {
        let a = store_a.scan(q).unwrap();
        let b = store_b.scan(q).unwrap();
        assert_eq!(
            a.rows_matched, b.rows_matched,
            "layouts disagree on results for {:?}",
            q.predicate
        );
        // and both agree with the in-memory ground truth
        let truth = (table.selectivity(&q.predicate) * table.num_rows() as f64).round() as u64;
        assert_eq!(a.rows_matched, truth);
    }
    store_a.destroy().unwrap();
    store_b.destroy().unwrap();
}

#[test]
fn physical_reorganization_preserves_content() {
    let bundle = oreo::workload::tpcds_bundle(4_000, 5);
    let table = &bundle.table;
    let by_ticket = RangeLayout::from_sample(table, 0, 5);
    let dir = tmpdir("content");
    let store = DiskStore::create(&dir, table, &by_ticket.assign(table), 5).unwrap();

    let stream = bundle.stream(StreamConfig {
        total_queries: 30,
        segments: 3,
        seed: 6,
        ..Default::default()
    });
    let tree = QdTreeBuilder::new(8).build(table, &stream.queries);
    let dir2 = tmpdir("content-reorg");
    let store2 = store
        .reorganize(&dir2, tree.k(), |t, row| tree.route(t, row))
        .unwrap();

    assert_eq!(store2.total_rows(), table.num_rows() as u64);
    let back = store2.load_table().unwrap();
    // same multiset of ticket numbers (the unique key)
    let mut original: Vec<i64> = (0..table.num_rows())
        .map(|r| table.scalar(r, 0).as_int().unwrap())
        .collect();
    let mut roundtrip: Vec<i64> = (0..back.num_rows())
        .map(|r| back.scalar(r, 0).as_int().unwrap())
        .collect();
    original.sort_unstable();
    roundtrip.sort_unstable();
    assert_eq!(original, roundtrip);

    store2.destroy().unwrap();
    store.destroy().unwrap();
}
