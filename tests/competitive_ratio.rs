//! Empirical verification of Theorem IV.1: D-UMTS's expected total cost is
//! within `2·H(|S_max|)` of the true offline optimum (computed by dynamic
//! programming) plus an O(α) additive term, on oblivious inputs — including
//! inputs that add and remove states mid-stream.

use oreo::core::{Dumts, DumtsConfig, TransitionPolicy};
use oreo::sim::offline_optimum;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Drift-structured oblivious cost stream: one state is cheap per block.
fn block_stream(n_states: usize, queries: usize, block: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cheap = 0usize;
    (0..queries)
        .map(|t| {
            if t % block == 0 {
                cheap = rng.random_range(0..n_states);
            }
            (0..n_states)
                .map(|s| {
                    if s == cheap {
                        0.1 * rng.random::<f64>()
                    } else {
                        0.4 + 0.6 * rng.random::<f64>()
                    }
                })
                .collect()
        })
        .collect()
}

fn run_dumts(costs: &[Vec<f64>], alpha: f64, seed: u64) -> f64 {
    let states: Vec<u64> = (0..costs[0].len() as u64).collect();
    let mut d = Dumts::new(
        &states,
        DumtsConfig {
            alpha,
            transition: TransitionPolicy::Uniform,
            stay_on_reset: true,
            mid_phase_admission: false,
            seed,
        },
    );
    let mut total = 0.0;
    for row in costs {
        let o = d.observe_query(|s| row[s as usize]);
        total += row[d.current() as usize];
        if o.switched_to.is_some() {
            total += alpha;
        }
    }
    total
}

#[test]
fn fixed_state_space_respects_theorem_bound() {
    let n = 8;
    let alpha = 10.0;
    let costs = block_stream(n, 3_000, 250, 99);
    let opt = offline_optimum(&costs, alpha);
    assert!(opt.total_cost > 0.0);

    let trials = 12;
    let mean: f64 = (0..trials)
        .map(|s| run_dumts(&costs, alpha, s))
        .sum::<f64>()
        / trials as f64;

    let bound = 2.0 * harmonic(n) * opt.total_cost + 4.0 * alpha;
    assert!(
        mean <= bound,
        "mean {mean:.1} exceeds 2H({n})·OPT + 4α = {bound:.1} (OPT {:.1})",
        opt.total_cost
    );
    assert!(mean >= opt.total_cost - 1e-9, "online beat offline?!");
}

#[test]
fn dynamic_state_space_respects_theorem_bound() {
    // States are added and removed mid-stream; the benchmark is the DP
    // optimum over the FULL state set (an upper bound on the D-UMTS
    // adversary's power, hence a conservative test).
    let n_max = 6;
    let alpha = 8.0;
    let queries = 2_400;
    let costs = block_stream(n_max, queries, 200, 7);
    let opt = offline_optimum(&costs, alpha);

    let trials = 12;
    let mut total = 0.0;
    for seed in 0..trials {
        let mut d = Dumts::new(
            &[0, 1],
            DumtsConfig {
                alpha,
                transition: TransitionPolicy::Uniform,
                stay_on_reset: true,
                mid_phase_admission: false,
                seed,
            },
        );
        let mut live = 2u64;
        let mut cost = 0.0;
        for (t, row) in costs.iter().enumerate() {
            // grow the space to n_max over the first quarter, then churn
            if t % 100 == 0 && (live as usize) < n_max {
                d.add_state(live);
                live += 1;
            }
            let o = d.observe_query(|s| row[s as usize % n_max]);
            cost += row[d.current() as usize % n_max];
            if o.switched_to.is_some() {
                cost += alpha;
            }
        }
        assert!(d.max_states_seen() <= n_max);
        total += cost;
    }
    let mean = total / trials as f64;
    let bound = 2.0 * harmonic(n_max) * opt.total_cost + 4.0 * alpha;
    assert!(
        mean <= bound,
        "dynamic mean {mean:.1} exceeds 2H({n_max})·OPT + 4α = {bound:.1}"
    );
}

#[test]
fn biased_transitions_do_not_break_the_bound() {
    // Theorem IV.2: a predictor can only improve the expected ratio when it
    // favors good states; verify the γ-biased variant stays within the
    // uniform bound on the same stream.
    let n = 8;
    let alpha = 10.0;
    let costs = block_stream(n, 3_000, 250, 42);
    let opt = offline_optimum(&costs, alpha);

    let trials = 12;
    let mut total = 0.0;
    for seed in 0..trials {
        let states: Vec<u64> = (0..n as u64).collect();
        let mut d = Dumts::new(
            &states,
            DumtsConfig {
                alpha,
                transition: TransitionPolicy::SkippedWeighted { gamma: 1.0 },
                stay_on_reset: true,
                mid_phase_admission: false,
                seed,
            },
        );
        let mut cost = 0.0;
        for row in &costs {
            let o = d.observe_query(|s| row[s as usize]);
            cost += row[d.current() as usize];
            if o.switched_to.is_some() {
                cost += alpha;
            }
        }
        total += cost;
    }
    let mean = total / trials as f64;
    let bound = 2.0 * harmonic(n) * opt.total_cost + 4.0 * alpha;
    assert!(mean <= bound, "biased mean {mean:.1} > bound {bound:.1}");
}

#[test]
fn dp_optimum_agrees_with_brute_force_on_tiny_instances() {
    // exhaustive check over all state schedules for a 2-state, 6-query case
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..20 {
        let costs: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..2).map(|_| rng.random::<f64>()).collect())
            .collect();
        let alpha = 0.7;
        let opt = offline_optimum(&costs, alpha);
        // brute force: 2^6 schedules
        let mut best = f64::INFINITY;
        for mask in 0u32..64 {
            let mut cost = 0.0;
            let mut prev: Option<usize> = None;
            for (t, row) in costs.iter().enumerate() {
                let s = ((mask >> t) & 1) as usize;
                if let Some(p) = prev {
                    if p != s {
                        cost += alpha;
                    }
                }
                cost += row[s];
                prev = Some(s);
            }
            best = best.min(cost);
        }
        assert!(
            (opt.total_cost - best).abs() < 1e-9,
            "DP {} vs brute force {best}",
            opt.total_cost
        );
    }
}
