//! Workspace-level observability integration tests: the `oreo-obs` layer
//! must *describe* a run without *changing* it. The event journal of a
//! single-worker FIFO run replays to exactly the `CostLedger` the engine
//! (and `oreo-sim`'s sequential OREO) computed — in memory mode and
//! through the disk tier — every query's lifecycle span is complete, and
//! the metrics exporter streams JSONL snapshots with the documented
//! schema and monotone counters.

use oreo::core::{CostLedger, OreoConfig};
use oreo::engine::{Engine, EngineConfig, EngineStats, ObsConfig, ServeMode};
use oreo::obs::EventKind;
use oreo::sim::{default_spec, make_generator, run_policy, PolicySetup, Technique};
use oreo::workload::{tpch_bundle, DatasetBundle, QueryStream, StreamConfig};
use std::sync::Arc;
use std::time::Duration;

fn config(seed: u64) -> OreoConfig {
    OreoConfig {
        alpha: 30.0,
        partitions: 16,
        window: 100,
        generation_interval: 100,
        data_sample_rows: 1_000,
        seed,
        ..Default::default()
    }
}

fn workload(rows: usize, queries: usize) -> (DatasetBundle, QueryStream) {
    let bundle = tpch_bundle(rows, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: queries,
        segments: 4,
        seed: 2,
        ..Default::default()
    });
    (bundle, stream)
}

/// A single-worker FIFO run with the journal sized so nothing is dropped.
fn run_fifo(
    bundle: &DatasetBundle,
    stream: &QueryStream,
    seed: u64,
    mode: ServeMode,
) -> EngineStats {
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(bundle, config(seed).partitions, seed),
        make_generator(Technique::QdTree, bundle),
        config(seed),
        EngineConfig::sequential_parity()
            .with_mode(mode)
            .with_journal_capacity(stream.queries.len() * 8 + 4096),
    );
    for q in &stream.queries {
        engine.submit(q.clone());
    }
    engine.drain();
    engine.shutdown()
}

/// Replaying the journal's policy events reproduces the engine's ledger
/// bit-for-bit, and that ledger is the sequential simulator's — the trace
/// is a faithful record of the bookkeeping, not an approximation of it.
fn assert_trace_parity(stats: &EngineStats, sim_ledger: &CostLedger, queries: u64) {
    assert_eq!(stats.events_dropped, 0, "journal sized for the run");
    let replayed = CostLedger::replay(&stats.events);
    assert_eq!(&replayed, &stats.ledger, "journal replay vs engine ledger");
    assert_eq!(&stats.ledger, sim_ledger, "engine ledger vs oreo-sim");

    // span coverage: every submitted query appears as a complete
    // enqueue → pickup → scan → complete lifecycle, exactly once each
    let mut enqueued = vec![0u32; queries as usize];
    let mut picked = vec![0u32; queries as usize];
    let mut scanned = vec![0u32; queries as usize];
    let mut completed = vec![0u32; queries as usize];
    for e in &stats.events {
        match e.kind {
            EventKind::QueryEnqueued { submit_id } => enqueued[submit_id as usize] += 1,
            EventKind::QueryPickup { submit_id } => picked[submit_id as usize] += 1,
            EventKind::QueryScanned { submit_id, .. } => scanned[submit_id as usize] += 1,
            EventKind::QueryCompleted { submit_id, .. } => completed[submit_id as usize] += 1,
            _ => {}
        }
    }
    for stage in [&enqueued, &picked, &scanned, &completed] {
        assert!(stage.iter().all(|&n| n == 1), "incomplete lifecycle span");
    }
    // policy events match the ledger's op counts
    let observed = stats
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::QueryObserved { .. }))
        .count() as u64;
    let decided = stats
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SwitchDecided { .. }))
        .count() as u64;
    assert_eq!(observed, stats.ledger.queries);
    assert_eq!(decided, stats.switches);
}

#[test]
fn journal_replay_matches_sim_in_memory_mode() {
    let seed = 3;
    let (bundle, stream) = workload(4_000, 500);
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config(seed));
    let sim = run_policy(&mut setup.oreo(), &stream.queries, 0);

    let stats = run_fifo(&bundle, &stream, seed, ServeMode::Memory);
    assert_trace_parity(&stats, &sim.ledger, 500);
}

#[test]
fn journal_replay_matches_sim_in_tiered_mode() {
    let seed = 3;
    let (bundle, stream) = workload(4_000, 500);
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config(seed));
    let sim = run_policy(&mut setup.oreo(), &stream.queries, 0);

    let root = std::env::temp_dir().join(format!("oreo-obs-tiered-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let stats = run_fifo(
        &bundle,
        &stream,
        seed,
        ServeMode::Tiered { root: root.clone() },
    );
    let _ = std::fs::remove_dir_all(&root);
    assert_trace_parity(&stats, &sim.ledger, 500);
}

/// Extract `"key":<unsigned integer>` from one JSONL snapshot line.
fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The exporter writes ≥2 snapshots per run (initial + final at minimum),
/// every line carries the documented schema keys, and monotone counters
/// never decrease across successive snapshots.
#[test]
fn exporter_snapshots_have_schema_and_monotone_counters() {
    let seed = 3;
    let (bundle, stream) = workload(4_000, 600);
    let dir = std::env::temp_dir().join(format!("oreo-obs-export-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.jsonl");

    let engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, config(seed).partitions, seed),
        make_generator(Technique::QdTree, &bundle),
        config(seed),
        EngineConfig::default().with_workers(2).with_obs(ObsConfig {
            metrics_json: Some(path.clone()),
            metrics_interval: Some(Duration::from_millis(5)),
            label: "obs-test".into(),
            ..Default::default()
        }),
    );
    for q in &stream.queries {
        engine.submit(q.clone());
    }
    engine.drain();
    let stats = engine.shutdown();
    assert_eq!(stats.queries, 600);

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "want ≥2 snapshots, got {}", lines.len());

    for line in &lines {
        assert!(line.starts_with("{\"snapshot_seq\":"), "snapshot framing");
        assert!(line.ends_with('}'), "complete JSON object per line");
        for key in [
            "\"cell\":\"obs-test\"",
            "\"elapsed_s\":",
            "\"engine.latency_us\":{\"count\":",
            "\"p50\":",
            "\"p99\":",
            "\"pool.hit_rate\":",
            "\"alpha.hat\":",
            "\"engine.queries_submitted\":",
            "\"engine.queries_completed\":",
        ] {
            assert!(line.contains(key), "snapshot missing {key}: {line}");
        }
    }

    // monotone counters: snapshot_seq strictly increases, cumulative
    // counters never decrease
    for counter in [
        "snapshot_seq",
        "engine.queries_submitted",
        "engine.queries_completed",
        "engine.rows_scanned",
        "engine.bytes_scanned",
        "reorg.switches",
    ] {
        let series: Vec<u64> = lines
            .iter()
            .map(|l| extract_u64(l, counter).unwrap_or_else(|| panic!("no {counter} in {l}")))
            .collect();
        assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "{counter} not monotone: {series:?}"
        );
    }
    let last = lines.last().unwrap();
    assert_eq!(extract_u64(last, "engine.queries_completed"), Some(600));
}
