//! Cross-crate integration: the full OREO pipeline over each synthetic
//! dataset at small scale (fast enough for debug-mode CI).

use oreo::prelude::*;
use oreo::sim::{run_policy, PolicySetup, Technique};
use std::sync::Arc;

fn small_config() -> OreoConfig {
    OreoConfig {
        alpha: 30.0,
        window: 100,
        generation_interval: 100,
        partitions: 16,
        data_sample_rows: 1_500,
        seed: 5,
        ..Default::default()
    }
}

#[test]
fn oreo_runs_on_all_three_datasets() {
    for bundle in oreo::workload::all_bundles(6_000, 1) {
        let stream = bundle.stream(StreamConfig {
            total_queries: 800,
            segments: 4,
            seed: 2,
            ..Default::default()
        });
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, small_config());
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 0);
        assert_eq!(r.ledger.queries, 800, "{}", bundle.name);
        assert!(r.ledger.query_cost > 0.0);
        assert!(
            r.ledger.query_cost < 800.0,
            "{}: query cost not bounded by full scans",
            bundle.name
        );
        assert!(
            (r.ledger.reorg_cost - r.switches as f64 * 30.0).abs() < 1e-9,
            "{}: ledger inconsistent",
            bundle.name
        );
    }
}

#[test]
fn oreo_adapts_better_than_never_reorganizing() {
    let bundle = oreo::workload::tpch_bundle(10_000, 3);
    let stream = bundle.stream(StreamConfig {
        total_queries: 1_500,
        segments: 5,
        seed: 4,
        ..Default::default()
    });
    let config = small_config();
    let initial = oreo::sim::default_spec(&bundle, config.partitions, config.seed);
    let never = oreo::layout::build_exact_model(initial.as_ref(), 0, &bundle.table);
    let never_cost: f64 = stream.queries.iter().map(|q| never.cost(q)).sum();

    let mut system = Oreo::new(
        Arc::clone(&bundle.table),
        initial,
        Arc::new(QdTreeGenerator::new()),
        config,
    );
    for q in &stream.queries {
        system.observe(q);
    }
    assert!(
        system.ledger().total() < never_cost,
        "OREO {} !< never-reorganize {}",
        system.ledger().total(),
        never_cost
    );
}

#[test]
fn both_techniques_work_through_the_full_stack() {
    let bundle = oreo::workload::tpcds_bundle(6_000, 2);
    let stream = bundle.stream(StreamConfig {
        total_queries: 600,
        segments: 3,
        seed: 6,
        ..Default::default()
    });
    for technique in [Technique::QdTree, Technique::ZOrder] {
        let setup = PolicySetup::new(bundle.clone(), technique, small_config());
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 0);
        assert_eq!(r.ledger.queries, 600, "{technique:?}");
    }
}

#[test]
fn framework_is_deterministic_end_to_end() {
    let bundle = oreo::workload::telemetry_bundle(5_000, 9);
    let stream = bundle.stream(StreamConfig {
        total_queries: 500,
        segments: 3,
        seed: 8,
        ..Default::default()
    });
    let run = || {
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, small_config());
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 50);
        (r.trajectory.clone(), r.switches, r.ledger)
    };
    assert_eq!(run(), run());
}

#[test]
fn reorg_delay_only_hurts_query_cost() {
    let bundle = oreo::workload::tpch_bundle(6_000, 4);
    let stream = bundle.stream(StreamConfig {
        total_queries: 900,
        segments: 4,
        seed: 11,
        ..Default::default()
    });
    let run_with_delay = |delay: u64| {
        let mut config = small_config();
        config.reorg_delay = delay;
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
        let mut oreo = setup.oreo();
        run_policy(&mut oreo, &stream.queries, 0).ledger
    };
    let immediate = run_with_delay(0);
    let delayed = run_with_delay(30);
    // decisions are identical (same seeds) → same reorg cost; the delay can
    // only increase the query bill (§VI-D5)
    assert_eq!(immediate.switches, delayed.switches);
    assert!(delayed.query_cost >= immediate.query_cost - 1e-9);
}
