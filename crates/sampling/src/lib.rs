//! # oreo-sampling
//!
//! Query-stream sampling strategies used by the LAYOUT MANAGER:
//!
//! * [`SlidingWindow`] — the default candidate-generation source (§V-A found
//!   layouts specialized to the recent window beat blended histories);
//! * [`Reservoir`] — classic uniform reservoir sampling, kept for the
//!   §VI-D4 ablation (SW vs RS vs SW+RS);
//! * [`TimeBiasedReservoir`] — the R-TBS-style exponentially time-biased
//!   sample that Algorithm 5 computes admission cost vectors on;
//! * [`top_queried_columns`] — queried-column statistics feeding
//!   workload-aware Z-ordering.

pub mod colstats;
pub mod reservoir;
pub mod rtbs;
pub mod sliding;

pub use colstats::{column_frequencies, top_queried_columns};
pub use reservoir::Reservoir;
pub use rtbs::TimeBiasedReservoir;
pub use sliding::SlidingWindow;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// The sliding window always holds the suffix of the stream.
        #[test]
        fn window_is_stream_suffix(cap in 1usize..20, n in 0usize..100) {
            let mut w = SlidingWindow::new(cap);
            for i in 0..n {
                w.push(i);
            }
            let expected: Vec<usize> = (n.saturating_sub(cap)..n).collect();
            prop_assert_eq!(w.to_vec(), expected);
        }

        /// Reservoir and time-biased reservoir never exceed capacity and
        /// only ever contain offered items.
        #[test]
        fn samples_are_bounded_subsets(cap in 1usize..16, n in 0u64..500, seed in 0u64..50, lambda in 0.0f64..0.1) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(cap);
            let mut t = TimeBiasedReservoir::new(cap, lambda);
            for i in 0..n {
                r.push(i, &mut rng);
                t.push(i, &mut rng);
            }
            prop_assert!(r.len() <= cap);
            prop_assert!(t.len() <= cap);
            prop_assert!(r.items().iter().all(|&v| v < n));
            prop_assert!(t.to_vec().iter().all(|&v| v < n));
            // below capacity the sample is exhaustive
            if (n as usize) <= cap {
                prop_assert_eq!(r.len(), n as usize);
                prop_assert_eq!(t.len(), n as usize);
            }
        }

        /// Time-biased sample items are unique (arrival times never repeat).
        #[test]
        fn rtbs_no_duplicates(cap in 1usize..16, n in 0u64..300, seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = TimeBiasedReservoir::new(cap, 0.01);
            for i in 0..n {
                t.push(i, &mut rng);
            }
            let mut times = t.sample_times();
            times.sort_unstable();
            times.dedup();
            prop_assert_eq!(times.len(), t.len());
        }
    }
}
