//! Time-biased reservoir sampling.
//!
//! Algorithm 5 of the paper evaluates candidate layouts on "a reservoir-based
//! time-biased sampling (R-TBS)" sample of the query stream (citing
//! Hentschel, Haas & Tian, TODS 2019): recent queries are over-represented,
//! but the sample never completely forgets the past and memory stays bounded.
//!
//! We implement the exponential-decay flavor via weighted reservoir sampling
//! (Efraimidis–Spirakis A-Res): an item arriving at time `t` carries weight
//! `exp(λ·t)`. Relative weights between items are then `exp(-λ·Δt)` — i.e.
//! inclusion probability decays exponentially with age, the R-TBS guarantee
//! — and, crucially, the *relative* weights never change as time advances,
//! so a standard weighted reservoir maintains the invariant incrementally.
//!
//! Keys are kept in log space (`ln(u) · exp(-λ·t)`); for very old items the
//! factor underflows toward 0⁻, which gracefully degrades to "newest items
//! always win" rather than misbehaving.

use rand::Rng;

/// One sampled item plus bookkeeping.
#[derive(Clone, Debug)]
struct Entry<T> {
    item: T,
    /// A-Res key in log space; larger keys win (all keys are ≤ 0).
    key: f64,
    /// Arrival time, for diagnostics and tests.
    time: u64,
}

/// Bounded sample with exponential bias toward recent items.
#[derive(Clone, Debug)]
pub struct TimeBiasedReservoir<T> {
    entries: Vec<Entry<T>>,
    capacity: usize,
    /// Decay rate λ: an item's inclusion odds halve every `ln 2 / λ` steps.
    lambda: f64,
    now: u64,
    seen: u64,
}

impl<T> TimeBiasedReservoir<T> {
    /// Create a reservoir of `capacity` items with decay rate `lambda` per
    /// time step (0 recovers uniform reservoir sampling in distribution).
    ///
    /// # Panics
    /// Panics when `capacity == 0`, `lambda < 0`, or `lambda` is not finite.
    pub fn new(capacity: usize, lambda: f64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be finite and non-negative"
        );
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            lambda,
            now: 0,
            seen: 0,
        }
    }

    /// Offer an item arriving at the next time step.
    pub fn push(&mut self, item: T, rng: &mut impl Rng) {
        let t = self.now;
        self.now += 1;
        self.seen += 1;
        // A-Res key: u^(1/w) with w = exp(λ t)  ⇒  log key = ln(u)·exp(-λ t).
        // ln(u) < 0, so multiplying by a *smaller* positive factor (newer t
        // ⇒ larger w ⇒ smaller exp(-λt)… careful: weight grows with t, so
        // exponent 1/w shrinks and the key grows toward 1). In log space:
        let u: f64 = loop {
            let x = rng.random::<f64>();
            if x > 0.0 {
                break x;
            }
        };
        let key = u.ln() * (-self.lambda * t as f64).exp();
        let entry = Entry { item, key, time: t };

        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return;
        }
        // Replace the minimum-key entry if the newcomer beats it.
        let (min_idx, min_key) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.key))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty reservoir");
        if entry.key > min_key {
            self.entries[min_idx] = entry;
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of items the reservoir keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The exponential time-bias rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Borrow the sampled items (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.item)
    }

    /// Clone the sample out (arbitrary order).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }

    /// Arrival times of the current sample (for tests/diagnostics).
    pub fn sample_times(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.time).collect()
    }

    /// Mean age (in steps) of the sampled items relative to now.
    pub fn mean_age(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let now = self.now as f64;
        self.entries
            .iter()
            .map(|e| now - e.time as f64)
            .sum::<f64>()
            / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounded_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = TimeBiasedReservoir::new(16, 0.01);
        for i in 0..5000 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 5000);
    }

    #[test]
    fn biases_toward_recent() {
        // With decay, the sample's mean age must be far below the uniform
        // expectation (≈ n/2).
        let n = 10_000u64;
        let mut rng = StdRng::seed_from_u64(2);
        let mut biased = TimeBiasedReservoir::new(50, 0.005);
        for i in 0..n {
            biased.push(i, &mut rng);
        }
        let uniform_expected_age = n as f64 / 2.0;
        assert!(
            biased.mean_age() < uniform_expected_age / 3.0,
            "mean age {} not biased (uniform would be ~{})",
            biased.mean_age(),
            uniform_expected_age
        );
    }

    #[test]
    fn keeps_some_history() {
        // Unlike a sliding window, old items survive with positive
        // probability: with gentle decay over a short stream, at least one
        // sampled item should predate the most recent window of 100.
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = TimeBiasedReservoir::new(50, 0.001);
        for i in 0..1000 {
            r.push(i, &mut rng);
        }
        assert!(
            r.sample_times().iter().any(|&t| t < 900),
            "no memory of the past: {:?}",
            r.sample_times()
        );
    }

    #[test]
    fn lambda_zero_is_roughly_uniform() {
        let n = 2000u64;
        let mut ages = 0.0;
        let runs = 50;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = TimeBiasedReservoir::new(20, 0.0);
            for i in 0..n {
                r.push(i, &mut rng);
            }
            ages += r.mean_age();
        }
        let mean_age = ages / runs as f64;
        let expected = n as f64 / 2.0;
        assert!(
            (mean_age - expected).abs() < expected * 0.15,
            "λ=0 mean age {mean_age}, expected ≈ {expected}"
        );
    }

    #[test]
    fn extreme_decay_keeps_only_newest() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = TimeBiasedReservoir::new(4, 5.0);
        for i in 0..100u64 {
            r.push(i, &mut rng);
        }
        let mut times = r.sample_times();
        times.sort_unstable();
        // strong decay ⇒ the sample is (almost surely) the most recent items
        assert!(times[0] >= 90, "expected newest items, got {times:?}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_rejected() {
        TimeBiasedReservoir::<u32>::new(4, -0.1);
    }
}
