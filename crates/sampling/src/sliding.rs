//! Fixed-capacity sliding window over the query stream.
//!
//! The paper's LAYOUT MANAGER generates candidate layouts from "a sliding
//! window of recent queries" (200 by default, §VI-A3); §V-A's experiments
//! found this beats reservoir-based histories because switching costs are
//! constant, so specializing to the *current* workload wins.

use std::collections::VecDeque;

/// A bounded FIFO of the most recent items.
#[derive(Clone, Debug)]
pub struct SlidingWindow<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Total number of items ever pushed (not just retained).
    pushed: u64,
}

impl<T> SlidingWindow<T> {
    /// Create a window holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
        }
    }

    /// Push an item, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
        self.pushed += 1;
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of items the window keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once the window has filled to capacity at least once.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Total items pushed over the window's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Clone the contents into a `Vec` (oldest first).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.items.iter().cloned().collect()
    }

    /// Drop all items, keeping capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_when_full() {
        let mut w = SlidingWindow::new(3);
        for i in 0..5 {
            w.push(i);
        }
        assert_eq!(w.to_vec(), vec![2, 3, 4]);
        assert_eq!(w.len(), 3);
        assert!(w.is_full());
        assert_eq!(w.total_pushed(), 5);
    }

    #[test]
    fn not_full_until_capacity() {
        let mut w = SlidingWindow::new(4);
        w.push(1);
        assert!(!w.is_full());
        assert_eq!(w.to_vec(), vec![1]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut w = SlidingWindow::new(2);
        w.push(1);
        w.push(2);
        w.clear();
        assert!(w.is_empty());
        w.push(9);
        assert_eq!(w.to_vec(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SlidingWindow::<i32>::new(0);
    }
}
