//! Queried-column frequency statistics.
//!
//! Workload-aware Z-ordering picks "the top three most queried columns in
//! the sliding window" (§VI-A1). This module ranks columns by how many
//! queries in a sample reference them, with deterministic tie-breaking so
//! layout generation stays reproducible.

use oreo_query::{ColId, Query};
use std::collections::HashMap;

/// Count, per column, how many queries in `queries` reference it (a query
/// referencing a column twice still counts once).
pub fn column_frequencies(queries: &[Query]) -> HashMap<ColId, usize> {
    let mut freq: HashMap<ColId, usize> = HashMap::new();
    for q in queries {
        for col in q.predicate.columns() {
            *freq.entry(col).or_default() += 1;
        }
    }
    freq
}

/// The `k` most frequently queried columns, most-queried first. Ties break
/// toward the smaller column id so results are deterministic.
pub fn top_queried_columns(queries: &[Query], k: usize) -> Vec<ColId> {
    let freq = column_frequencies(queries);
    let mut cols: Vec<(ColId, usize)> = freq.into_iter().collect();
    cols.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    cols.into_iter().take(k).map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{ColumnType, QueryBuilder, Schema};

    fn queries() -> (Schema, Vec<Query>) {
        let s = Schema::from_pairs([
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
            ("c", ColumnType::Int),
        ]);
        let qs = vec![
            QueryBuilder::new(&s).lt("a", 1).lt("b", 1).build(),
            QueryBuilder::new(&s).lt("a", 2).build(),
            QueryBuilder::new(&s).lt("a", 3).lt("c", 3).build(),
            QueryBuilder::new(&s).lt("b", 4).build(),
        ];
        (s, qs)
    }

    #[test]
    fn frequencies_count_queries_not_atoms() {
        let s = Schema::from_pairs([("a", ColumnType::Int)]);
        let q = QueryBuilder::new(&s).ge("a", 0).lt("a", 10).build();
        let freq = column_frequencies(&[q]);
        assert_eq!(freq[&0], 1, "two atoms on one column count once");
    }

    #[test]
    fn top_columns_ordered_by_frequency() {
        let (_, qs) = queries();
        // a: 3, b: 2, c: 1
        assert_eq!(top_queried_columns(&qs, 2), vec![0, 1]);
        assert_eq!(top_queried_columns(&qs, 10), vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_by_column_id() {
        let s = Schema::from_pairs([("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let qs = vec![
            QueryBuilder::new(&s).lt("b", 1).build(),
            QueryBuilder::new(&s).lt("a", 1).build(),
        ];
        assert_eq!(top_queried_columns(&qs, 2), vec![0, 1]);
    }

    #[test]
    fn empty_workload_yields_nothing() {
        assert!(top_queried_columns(&[], 3).is_empty());
    }
}
