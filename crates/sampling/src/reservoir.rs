//! Classic uniform reservoir sampling (Vitter's Algorithm R).
//!
//! Used by the §VI-D4 ablation (sliding window vs reservoir sampling for
//! candidate layout generation) and as the baseline the time-biased variant
//! is compared against.

use rand::Rng;

/// A fixed-size uniform sample over an unbounded stream.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Offer an item to the sample. After `n` offers, every offered item is
    /// retained with probability `capacity / n`.
    pub fn push(&mut self, item: T, rng: &mut impl Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let j = rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of items the reservoir keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (arbitrary order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Clone the sample out.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.items.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_before_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(5);
        for i in 0..5 {
            r.push(i, &mut rng);
        }
        let mut items = r.to_vec();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn size_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(10);
        for i in 0..10_000 {
            r.push(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Inclusion frequency of the first item over many independent runs
        // should be ≈ capacity / n.
        let n = 200u64;
        let cap = 10usize;
        let runs = 3000;
        let mut hits = 0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(cap);
            for i in 0..n {
                r.push(i, &mut rng);
            }
            if r.items().contains(&0) {
                hits += 1;
            }
        }
        let freq = hits as f64 / runs as f64;
        let expected = cap as f64 / n as f64; // 0.05
        assert!(
            (freq - expected).abs() < 0.02,
            "freq {freq} vs expected {expected}"
        );
    }

    #[test]
    fn mean_of_sample_tracks_stream_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Reservoir::new(100);
        for i in 0..100_000i64 {
            r.push(i, &mut rng);
        }
        let mean: f64 = r.items().iter().map(|&v| v as f64).sum::<f64>() / r.len() as f64;
        assert!(
            (mean - 50_000.0).abs() < 15_000.0,
            "uniform sample mean {mean} too far from 50k"
        );
    }
}
