//! Release-profile integration test: the paper's policy-ordering narrative
//! (§VI-C) on a drifting TPC-H stream.
//!
//! Compiled away under `debug_assertions` — the four policy runs cost
//! ~60 s even in release, and an order of magnitude more unoptimized. Run
//! with:
//!
//! ```sh
//! cargo test --release -p oreo-sim --test policy_ordering
//! ```
//!
//! Configuration notes (the outcome of the tuning investigation tracked in
//! ROADMAP.md): the narrative needs the paper's segment-length-to-α ratio.
//! The evaluation setup (§VI-A3) drifts every ~1 500 queries with α=80 —
//! D-UMTS must absorb ~α of service cost on its counters before each
//! switch, so segments only a few multiples of α long (like the previous
//! 6 000-query/10-segment attempt, 600 queries/segment at α=60) drown the
//! signal in exploration no matter how γ/ε are tuned. At 12 000 queries
//! over 8 segments (1 500 queries/segment, α=80) OREO beats the
//! fully-informed Static baseline by ~40% under the vendored RNG.

#![cfg(not(debug_assertions))]

use oreo_core::OreoConfig;
use oreo_sim::{run_policy, PolicySetup, Technique};
use oreo_workload::{tpch_bundle, StreamConfig};

/// On a drifting TPC-H-shaped stream, dynamic reorganization (OREO) beats
/// the static layout in total cost, Greedy has the lowest query cost but
/// pays the most reorganization, and Regret reorganizes the least among
/// the reactive methods.
#[test]
fn policy_ordering_matches_paper_narrative() {
    let bundle = tpch_bundle(30_000, 1);
    let stream = bundle.stream(StreamConfig {
        total_queries: 12_000,
        segments: 8,
        seed: 2,
        ..Default::default()
    });
    let config = OreoConfig {
        alpha: 80.0,
        partitions: 64,
        data_sample_rows: 6_000,
        seed: 3,
        ..Default::default()
    };
    let setup = PolicySetup::new(bundle, Technique::QdTree, config);

    let mut static_p = setup.static_policy(&stream.queries);
    let mut greedy = setup.greedy();
    let mut regret = setup.regret();
    let mut oreo = setup.oreo();

    let rs = run_policy(&mut static_p, &stream.queries, 0);
    let rg = run_policy(&mut greedy, &stream.queries, 0);
    let rr = run_policy(&mut regret, &stream.queries, 0);
    let ro = run_policy(&mut oreo, &stream.queries, 0);

    // dynamic reorganization beats static overall (paper: up to 32%; this
    // stream gives OREO ≈ 3 087 vs Static ≈ 5 303)
    assert!(
        ro.total() < rs.total(),
        "OREO {} !< Static {}",
        ro.total(),
        rs.total()
    );
    // Greedy reorganizes at least as much as anyone
    assert!(rg.switches >= ro.switches, "Greedy switched less than OREO");
    assert!(
        rg.switches >= rr.switches,
        "Greedy switched less than Regret"
    );
    // Greedy's query cost is the smallest among online methods
    assert!(rg.ledger.query_cost <= ro.ledger.query_cost + 1e-9);
    assert!(rg.ledger.query_cost <= rr.ledger.query_cost + 1e-9);
    // and OREO's worst-case machinery keeps it ahead of the heuristics in
    // combined cost on this stream
    assert!(
        ro.total() < rg.total(),
        "OREO {} !< Greedy {}",
        ro.total(),
        rg.total()
    );
}
