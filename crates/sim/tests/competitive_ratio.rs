//! Release-profile integration tests: the workload zoo's two regression
//! claims, asserted against the full framework (not the synthetic cost
//! matrices of the in-crate unit tests).
//!
//! Compiled away under `debug_assertions` — each test replays 12 000
//! queries through live OREO instances and the offline DP. Run with:
//!
//! ```sh
//! cargo test --release -p oreo-sim --test competitive_ratio
//! ```
//!
//! The configuration mirrors `serve_throughput --scenario suite` exactly
//! (α = 80, 64 partitions, 100-query candidate cadence, 1 500-query zoo
//! phases), so a failure here reproduces under the bench binary and vice
//! versa.

#![cfg(not(debug_assertions))]

use oreo_core::OreoConfig;
use oreo_sim::{adversarial_bound, compare_oreo_static, zoo_stream, PolicySetup, Technique};
use oreo_workload::{telemetry_bundle, Scenario, ScenarioConfig};

/// The suite's shared framework configuration: paper defaults with the
/// candidate window/generation cadence halved so candidates train on
/// intra-phase windows (zoo phases are ~1 500 queries).
fn suite_setup() -> PolicySetup {
    PolicySetup::new(
        telemetry_bundle(20_000, 1),
        Technique::QdTree,
        OreoConfig {
            alpha: 80.0,
            epsilon: 0.08,
            gamma: 1.0,
            window: 100,
            generation_interval: 100,
            partitions: 64,
            data_sample_rows: 6_000,
            seed: 3,
            ..Default::default()
        },
    )
}

const SUITE_CFG: ScenarioConfig = ScenarioConfig {
    total_queries: 12_000,
    seed: 2,
};

/// The additive constant of the adversarial assertion, in units of α —
/// kept in lockstep with `SUITE_SLACK_ALPHAS` in the `serve_throughput`
/// binary. The classic proof grants O(α) for the phase in flight; the
/// full framework adds estimate-vs-exact model noise on top (decisions on
/// sample estimates, billing on exact models).
const SLACK_ALPHAS: f64 = 8.0;

/// Theorem IV.2 against the real machinery: the adaptive MTS adversary
/// generates its stream against a live OREO instance, and OREO's online
/// total must stay within `2·H(n)·cost(OFF) + c·α` of the exact offline
/// DP over the adversary's own state space (one probe-optimal layout per
/// probe family plus the default layout).
#[test]
fn adversarial_zoo_respects_2hn_bound() {
    let setup = suite_setup();
    let (stream, bound) = adversarial_bound(&setup, SUITE_CFG, SLACK_ALPHAS);
    assert_eq!(stream.queries.len(), SUITE_CFG.total_queries);
    assert!(
        bound.offline.total_cost > 0.0,
        "degenerate offline optimum — the adversary emitted free queries"
    );
    // Online can never beat the offline DP over the same surface.
    assert!(bound.oreo_total >= bound.offline.total_cost - 1e-9);
    assert!(
        bound.holds,
        "2·H(n) bound violated: OREO {:.1} > 2·H({}) · OFF {:.1} + {}·α = {:.1} (ratio {:.2})",
        bound.oreo_total,
        bound.n_states,
        bound.offline.total_cost,
        SLACK_ALPHAS,
        bound.bound,
        bound.ratio,
    );
}

/// The zoo's ordering claim: on every *oblivious* scenario — flash crowds,
/// diurnal cycles, rotating predicates, correlated columns — OREO's total
/// (service + α·switches) beats the fully informed Static baseline, whose
/// one layout is built from a uniform sample of the entire stream it will
/// be judged on. Static loses because the zoo's phase anchors collectively
/// overflow a single 64-partition layout; OREO re-specializes and pays α
/// per move.
#[test]
fn oreo_beats_informed_static_on_every_oblivious_scenario() {
    let setup = suite_setup();
    let mut failures: Vec<String> = Vec::new();
    for scenario in Scenario::ALL {
        if scenario.is_adversarial() {
            continue;
        }
        let stream = zoo_stream(&setup, scenario, SUITE_CFG);
        let (oreo_run, static_run) = compare_oreo_static(&setup, &stream);
        let (oreo_total, static_total) = (oreo_run.total(), static_run.total());
        if oreo_total >= static_total {
            failures.push(format!(
                "{}: OREO {oreo_total:.1} ({} switches) >= Static {static_total:.1}",
                scenario.name(),
                oreo_run.switches,
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "OREO must beat Static on every non-adversarial zoo scenario: {failures:?}"
    );
}
