//! Minimal ASCII table rendering for the benchmark harnesses (the paper's
//! tables and figure series are reprinted as monospace tables), plus the
//! [`ThroughputReport`] rows the concurrent-serving harness emits.

use std::fmt::Write as _;

/// A simple right-padded ASCII table.
#[derive(Clone, Debug)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; its length must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with column-wide padding and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Format a float with fixed decimals, trimming `-0.00` to `0.00`.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

/// Percentage-change string, e.g. `+38%` / `-5.3%` (one decimal under 10%).
pub fn fmt_pct_change(base: f64, v: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    let pct = (v - base) / base * 100.0;
    if pct.abs() < 10.0 {
        format!("{pct:+.1}%")
    } else {
        format!("{pct:+.0}%")
    }
}

/// One measured serving configuration of the `serve_throughput` harness:
/// a worker count × reorganization mode cell, with its throughput and
/// latency percentiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThroughputReport {
    /// Configuration label, e.g. `"reorg on"` / `"reorg off"`.
    pub label: String,
    /// Serving mode: `"memory"` (snapshots live in memory only) or
    /// `"tiered"` (every publish persists an on-disk generation).
    pub serve_mode: String,
    /// Scan worker threads.
    pub workers: usize,
    /// Queries served.
    pub queries: u64,
    /// Wall-clock seconds from first submit to full drain.
    pub elapsed_s: f64,
    /// Queries per second.
    pub qps: f64,
    /// Median per-query service latency (worker pickup → completion),
    /// microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Maximum latency, microseconds.
    pub max_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Layout switches decided during the run.
    pub switches: u64,
    /// Background reorganizations completed (snapshots published).
    pub reorgs_completed: u64,
    /// Mean measured reorganization window Δ, in queries (the quantity
    /// `OreoConfig::reorg_delay` configures in the sequential simulator).
    pub mean_delta_queries: f64,
    /// Mean measured reorganization window Δ, in seconds.
    pub mean_delta_s: f64,
    /// Bytes read across all scans (in-memory bytes in memory mode, page
    /// bytes fetched through the buffer pool in tiered mode).
    pub bytes_scanned: u64,
    /// Bytes written by aside rewrites (0 in memory mode).
    pub reorg_bytes_written: u64,
    /// Empirical α measured on this run — mean aside-rewrite wall-clock
    /// over extrapolated full-scan wall-clock (0 when not measurable,
    /// e.g. no completed rewrite). Cold-preferring: extrapolated from
    /// disk-throughput samples when the run produced any.
    pub alpha_empirical: f64,
    /// α̂ from cold (disk) scan throughput only (0 when not measurable).
    pub alpha_cold: f64,
    /// α̂ from warm (pool-hit / memory) scan throughput (0 when not
    /// measurable).
    pub alpha_warm: f64,
    /// Buffer-pool page hits over the run (0 in memory mode).
    pub pool_hits: u64,
    /// Buffer-pool page misses over the run (0 in memory mode).
    pub pool_misses: u64,
    /// Buffer-pool evictions over the run (0 in memory mode).
    pub pool_evictions: u64,
    /// Pool hits over total page requests, 0.0..=1.0 (0 in memory mode).
    pub pool_hit_rate: f64,
    /// Page bytes read from disk across scans (0 in memory mode).
    pub io_cold_bytes: u64,
    /// Page bytes served from the pool across scans (0 in memory mode).
    pub io_cached_bytes: u64,
    /// 1024-row chunks the vectorized scan kernels evaluated across scans.
    pub chunks_evaluated: u64,
    /// Rows the adaptive AND order skipped later kernels for (already
    /// rejected by a cheaper atom).
    pub rows_short_circuited: u64,
    /// Total ledger cost (query + reorg, logical units).
    pub total_cost: f64,
}

impl ThroughputReport {
    /// Header row matching [`ThroughputReport::table_row`].
    pub fn table_headers() -> Vec<&'static str> {
        vec![
            "mode",
            "serve",
            "workers",
            "queries",
            "qps",
            "p50(µs)",
            "p95(µs)",
            "p99(µs)",
            "max(µs)",
            "switches",
            "reorgs",
            "Δ(queries)",
            "Δ(s)",
            "α̂",
            "hit%",
        ]
    }

    /// This report as one ASCII-table row.
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.serve_mode.clone(),
            self.workers.to_string(),
            self.queries.to_string(),
            fmt_f(self.qps, 0),
            fmt_f(self.p50_us, 0),
            fmt_f(self.p95_us, 0),
            fmt_f(self.p99_us, 0),
            fmt_f(self.max_us, 0),
            self.switches.to_string(),
            self.reorgs_completed.to_string(),
            fmt_f(self.mean_delta_queries, 1),
            fmt_f(self.mean_delta_s, 3),
            if self.alpha_empirical > 0.0 {
                fmt_f(self.alpha_empirical, 1)
            } else {
                "-".into()
            },
            if self.pool_hits + self.pool_misses > 0 {
                fmt_f(self.pool_hit_rate * 100.0, 1)
            } else {
                "-".into()
            },
        ]
    }

    /// Render a set of reports as one ASCII table.
    pub fn render_table(reports: &[ThroughputReport]) -> String {
        let mut t = AsciiTable::new(Self::table_headers());
        for r in reports {
            t.row(r.table_row());
        }
        t.render()
    }

    /// Throughput scaling of `self` relative to a baseline run (e.g. the
    /// 1-worker cell), as a multiplier.
    pub fn speedup_over(&self, baseline: &ThroughputReport) -> f64 {
        if baseline.qps == 0.0 {
            return 0.0;
        }
        self.qps / baseline.qps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rows_align_with_headers() {
        let r = ThroughputReport {
            label: "reorg on".into(),
            serve_mode: "tiered".into(),
            workers: 4,
            queries: 1000,
            qps: 2512.3,
            p50_us: 410.0,
            p95_us: 1400.0,
            p99_us: 1900.0,
            max_us: 4200.0,
            switches: 3,
            reorgs_completed: 3,
            mean_delta_queries: 41.5,
            mean_delta_s: 0.012,
            bytes_scanned: 1 << 20,
            reorg_bytes_written: 1 << 19,
            alpha_empirical: 72.4,
            alpha_cold: 72.4,
            alpha_warm: 410.0,
            pool_hits: 900,
            pool_misses: 100,
            pool_hit_rate: 0.9,
            ..Default::default()
        };
        assert_eq!(r.table_row().len(), ThroughputReport::table_headers().len());
        let rendered = ThroughputReport::render_table(std::slice::from_ref(&r));
        assert!(rendered.contains("reorg on"));
        assert!(rendered.contains("tiered"));
        assert!(rendered.contains("2512"));
        assert!(rendered.contains("72.4"));
        assert!(rendered.contains("90.0"), "hit rate rendered as percent");
        // an unmeasured α (and an absent pool) render as "-"
        let none = ThroughputReport::default();
        assert_eq!(*none.table_row().last().unwrap(), "-");
        assert_eq!(none.table_row()[13], "-", "α̂ column");
        // all five latency summary fields show up in the row
        assert!(rendered.contains("1400"), "p95 rendered");
        assert!(rendered.contains("4200"), "max rendered");
    }

    #[test]
    fn speedup_is_qps_ratio() {
        let base = ThroughputReport {
            qps: 100.0,
            ..Default::default()
        };
        let fast = ThroughputReport {
            qps: 250.0,
            ..Default::default()
        };
        assert!((fast.speedup_over(&base) - 2.5).abs() < 1e-12);
        assert_eq!(fast.speedup_over(&ThroughputReport::default()), 0.0);
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(["name", "cost"]);
        t.row(["static", "35.70"]);
        t.row(["oreo", "24.1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "name    cost");
        assert!(lines[1].starts_with("----"));
        assert_eq!(lines[2], "static  35.70");
        assert_eq!(lines[3], "oreo    24.1");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        AsciiTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(fmt_pct_change(100.0, 138.0), "+38%");
        assert_eq!(fmt_pct_change(100.0, 94.7), "-5.3%");
        assert_eq!(fmt_pct_change(0.0, 1.0), "n/a");
    }

    #[test]
    fn fmt_f_avoids_negative_zero() {
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_f(1.259, 2), "1.26");
    }
}
