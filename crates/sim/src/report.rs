//! Minimal ASCII table rendering for the benchmark harnesses (the paper's
//! tables and figure series are reprinted as monospace tables).

use std::fmt::Write as _;

/// A simple right-padded ASCII table.
#[derive(Clone, Debug)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; its length must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with column-wide padding and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Format a float with fixed decimals, trimming `-0.00` to `0.00`.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

/// Percentage-change string, e.g. `+38%` / `-5.3%` (one decimal under 10%).
pub fn fmt_pct_change(base: f64, v: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    let pct = (v - base) / base * 100.0;
    if pct.abs() < 10.0 {
        format!("{pct:+.1}%")
    } else {
        format!("{pct:+.0}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(["name", "cost"]);
        t.row(["static", "35.70"]);
        t.row(["oreo", "24.1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "name    cost");
        assert!(lines[1].starts_with("----"));
        assert_eq!(lines[2], "static  35.70");
        assert_eq!(lines[3], "oreo    24.1");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        AsciiTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(fmt_pct_change(100.0, 138.0), "+38%");
        assert_eq!(fmt_pct_change(100.0, 94.7), "-5.3%");
        assert_eq!(fmt_pct_change(0.0, 1.0), "n/a");
    }

    #[test]
    fn fmt_f_avoids_negative_zero() {
        assert_eq!(fmt_f(-0.0001, 2), "0.00");
        assert_eq!(fmt_f(1.259, 2), "1.26");
    }
}
