//! The true offline optimum for UMTS over a fixed state space, by dynamic
//! programming.
//!
//! The competitive guarantees of Theorem IV.1 are stated against *any*
//! offline algorithm that sees the whole task sequence and may switch
//! states. This module computes that optimum exactly:
//!
//! `dp_t(s) = min( dp_{t-1}(s), min_{s'} dp_{t-1}(s') + α ) + c(s, q_t)`
//!
//! with `dp_0(s) = 0` (any free starting state, matching the algorithm's
//! free initial draw). One `min` pass makes each step O(n). Used by the
//! competitive-ratio property tests and as a diagnostic in the harnesses.

/// Exact offline optimum and its switch count.
#[derive(Clone, Debug, PartialEq)]
pub struct OfflineOptimum {
    /// Minimum achievable total cost (service + α·switches).
    pub total_cost: f64,
    /// Switches used by one optimal schedule.
    pub switches: u64,
    /// The optimal schedule: state index per query.
    pub schedule: Vec<usize>,
}

/// Compute the optimum for a cost matrix: `costs[t][s]` = cost of serving
/// query `t` in state `s`. All `n` states exist throughout; switching costs
/// `alpha`.
///
/// # Panics
/// Panics when the matrix is empty or ragged.
pub fn offline_optimum(costs: &[Vec<f64>], alpha: f64) -> OfflineOptimum {
    assert!(!costs.is_empty(), "need at least one query");
    let n = costs[0].len();
    assert!(n > 0, "need at least one state");

    let t_max = costs.len();
    let mut dp = vec![0.0f64; n];
    // parent[t][s] = state at t-1 from which dp_t(s) was reached
    let mut parent: Vec<Vec<usize>> = Vec::with_capacity(t_max);

    for row in costs {
        assert_eq!(row.len(), n, "ragged cost matrix");
        // best predecessor if we switch
        let (best_idx, best_val) = dp
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .expect("n > 0");
        let mut parents = vec![0usize; n];
        let mut next = vec![0.0f64; n];
        for s in 0..n {
            let stay = dp[s];
            let jump = best_val + alpha;
            if stay <= jump {
                next[s] = stay + row[s];
                parents[s] = s;
            } else {
                next[s] = jump + row[s];
                parents[s] = best_idx;
            }
        }
        dp = next;
        parent.push(parents);
    }

    // Backtrack the schedule.
    let (mut state, _) = dp
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("n > 0");
    let total_cost = dp[state];
    let mut schedule = vec![0usize; t_max];
    for t in (0..t_max).rev() {
        schedule[t] = state;
        state = parent[t][state];
    }
    let switches = schedule.windows(2).filter(|w| w[0] != w[1]).count() as u64;

    OfflineOptimum {
        total_cost,
        switches,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state_sums_costs() {
        let costs = vec![vec![0.5], vec![0.25], vec![1.0]];
        let o = offline_optimum(&costs, 10.0);
        assert!((o.total_cost - 1.75).abs() < 1e-12);
        assert_eq!(o.switches, 0);
        assert_eq!(o.schedule, vec![0, 0, 0]);
    }

    #[test]
    fn high_alpha_prevents_switching() {
        // state 0 cheap early, state 1 cheap late; α too big to bother
        let mut costs = Vec::new();
        for t in 0..10 {
            costs.push(if t < 5 {
                vec![0.0, 1.0]
            } else {
                vec![1.0, 0.0]
            });
        }
        let o = offline_optimum(&costs, 100.0);
        assert_eq!(o.switches, 0);
        assert!((o.total_cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn low_alpha_switches_at_drift() {
        let mut costs = Vec::new();
        for t in 0..10 {
            costs.push(if t < 5 {
                vec![0.0, 1.0]
            } else {
                vec![1.0, 0.0]
            });
        }
        let o = offline_optimum(&costs, 1.0);
        assert_eq!(o.switches, 1);
        assert!((o.total_cost - 1.0).abs() < 1e-12);
        assert_eq!(o.schedule, vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn free_initial_state() {
        // the first query decides the free starting state
        let costs = vec![vec![1.0, 0.0]];
        let o = offline_optimum(&costs, 5.0);
        assert_eq!(o.total_cost, 0.0);
        assert_eq!(o.schedule, vec![1]);
    }

    #[test]
    fn optimum_is_lower_bound_of_any_fixed_state() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let costs: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..4).map(|_| rng.random::<f64>()).collect())
            .collect();
        let o = offline_optimum(&costs, 7.0);
        for s in 0..4 {
            let fixed: f64 = costs.iter().map(|row| row[s]).sum();
            assert!(o.total_cost <= fixed + 1e-9);
        }
    }

    #[test]
    fn schedule_cost_matches_reported_cost() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let costs: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..3).map(|_| rng.random::<f64>()).collect())
            .collect();
        let alpha = 2.5;
        let o = offline_optimum(&costs, alpha);
        let mut replay = 0.0;
        for (t, &s) in o.schedule.iter().enumerate() {
            replay += costs[t][s];
            if t > 0 && o.schedule[t - 1] != s {
                replay += alpha;
            }
        }
        assert!(
            (replay - o.total_cost).abs() < 1e-9,
            "{replay} vs {}",
            o.total_cost
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        offline_optimum(&[vec![0.0, 1.0], vec![0.0]], 1.0);
    }
}
