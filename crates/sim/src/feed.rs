//! Shared candidate-layout feed.
//!
//! §VI-A3: "The three online approaches (Greedy, Regret and OREO) utilize
//! the same set of data layout candidates computed periodically based on a
//! sliding window of recent queries, but use different reorganization
//! strategies." This feed is that shared producer: every
//! `generation_interval` queries it emits one candidate generated from the
//! current window, with an estimated (sample-scaled) cost model attached.

use oreo_layout::{build_model, LayoutGenerator, SharedSpec};
use oreo_query::Query;
use oreo_sampling::SlidingWindow;
use oreo_storage::{LayoutModel, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A freshly generated candidate layout.
#[derive(Clone)]
pub struct Candidate {
    /// Identifier shared with the policies' state spaces.
    pub id: u64,
    /// The candidate's routing spec.
    pub spec: SharedSpec,
    /// Estimated model (metadata from the data sample, scaled to the table).
    pub model: LayoutModel,
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Candidate({}: {})", self.id, self.model.name())
    }
}

/// Periodic candidate generator over a sliding window.
pub struct CandidateFeed {
    window: SlidingWindow<Query>,
    generator: Arc<dyn LayoutGenerator>,
    data_sample: Table,
    full_rows: f64,
    k: usize,
    interval: u64,
    seen: u64,
    next_id: u64,
    rng: StdRng,
}

impl CandidateFeed {
    /// A feed over `table` producing candidates with `generator`.
    pub fn new(
        data_sample: Table,
        full_rows: f64,
        generator: Arc<dyn LayoutGenerator>,
        k: usize,
        window: usize,
        interval: u64,
        seed: u64,
    ) -> Self {
        Self {
            window: SlidingWindow::new(window),
            generator,
            data_sample,
            full_rows,
            k,
            interval,
            seen: 0,
            next_id: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Push a query; on generation boundaries, return a new candidate.
    pub fn observe(&mut self, query: &Query) -> Option<Candidate> {
        self.window.push(query.clone());
        self.seen += 1;
        if !self.seen.is_multiple_of(self.interval) || self.window.is_empty() {
            return None;
        }
        let workload = self.window.to_vec();
        let spec = self
            .generator
            .generate(&self.data_sample, &workload, self.k, &mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        let model = build_model(spec.as_ref(), id, &self.data_sample, self.full_rows);
        Some(Candidate { id, spec, model })
    }

    /// Current window contents (used by Greedy's comparison).
    pub fn window_queries(&self) -> Vec<Query> {
        self.window.to_vec()
    }

    /// Number of queries offered to the feed so far.
    pub fn queries_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::QdTreeGenerator;
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
    use oreo_storage::TableBuilder;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i)]);
        }
        b.finish()
    }

    #[test]
    fn emits_every_interval() {
        let t = table(1000);
        let mut feed = CandidateFeed::new(
            t.clone(),
            1000.0,
            Arc::new(QdTreeGenerator::new()),
            4,
            20,
            20,
            7,
        );
        let mut emitted = 0;
        for i in 0..100i64 {
            let q = QueryBuilder::new(t.schema())
                .between("v", (i * 10) % 800, (i * 10) % 800 + 100)
                .build();
            if let Some(c) = feed.observe(&q) {
                emitted += 1;
                assert!(c.model.num_partitions() >= 1);
                assert_eq!(c.id, emitted);
            }
        }
        assert_eq!(emitted, 5);
    }
}
