//! The Static baseline (§VI-A3): observes the entire query workload in
//! advance, builds one layout optimized for all of it, and never switches.

use crate::policy::{ReorgPolicy, StepCost};
use oreo_layout::{build_exact_model, LayoutGenerator};
use oreo_query::Query;
use oreo_storage::{LayoutModel, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A single precomputed layout for the whole stream.
pub struct StaticPolicy {
    model: LayoutModel,
    switches: u64,
}

impl StaticPolicy {
    /// Build the static layout from (a sample of) the full workload.
    ///
    /// `workload_sample_size` bounds the number of queries handed to the
    /// generator — mirroring the paper's use of workload samples for layout
    /// construction. The sample is an even stride over the stream, so every
    /// template segment is represented proportionally.
    pub fn build(
        table: &Arc<Table>,
        full_workload: &[Query],
        generator: &Arc<dyn LayoutGenerator>,
        k: usize,
        data_sample_rows: usize,
        workload_sample_size: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data_sample = table.sample(&mut rng, data_sample_rows);
        let workload: Vec<Query> = if full_workload.len() <= workload_sample_size {
            full_workload.to_vec()
        } else {
            let stride = full_workload.len() / workload_sample_size;
            full_workload
                .iter()
                .step_by(stride.max(1))
                .take(workload_sample_size)
                .cloned()
                .collect()
        };
        let spec = generator.generate(&data_sample, &workload, k, &mut rng);
        let model = build_exact_model(spec.as_ref(), 0, table);
        Self { model, switches: 0 }
    }

    /// The materialized layout's model (diagnostics).
    pub fn model(&self) -> &LayoutModel {
        &self.model
    }
}

impl ReorgPolicy for StaticPolicy {
    fn name(&self) -> String {
        "Static".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        StepCost {
            service: self.model.cost(query),
            reorg: 0.0,
            switched: false,
        }
    }

    fn switches(&self) -> u64 {
        self.switches
    }
}
