//! The Greedy baseline (§VI-A3): whenever a new candidate layout appears,
//! compare its (estimated) query cost on the sliding window against the
//! current layout's and switch if the candidate is better — ignoring the
//! reorganization cost entirely.

use crate::feed::CandidateFeed;
use crate::policy::{ReorgPolicy, StepCost};
use oreo_layout::build_exact_model;
use oreo_query::Query;
use oreo_storage::{LayoutModel, Table};
use std::sync::Arc;

/// Greedy reorganizer.
pub struct GreedyPolicy {
    feed: CandidateFeed,
    table: Arc<Table>,
    alpha: f64,
    /// Estimated model of the current layout (decision surface).
    current_estimate: LayoutModel,
    /// Exact model of the current layout (billing surface).
    current_exact: LayoutModel,
    switches: u64,
}

impl GreedyPolicy {
    /// A greedy policy switching to the cheapest candidate each interval.
    pub fn new(
        table: Arc<Table>,
        feed: CandidateFeed,
        initial_estimate: LayoutModel,
        initial_exact: LayoutModel,
        alpha: f64,
    ) -> Self {
        Self {
            feed,
            table,
            alpha,
            current_estimate: initial_estimate,
            current_exact: initial_exact,
            switches: 0,
        }
    }
}

impl ReorgPolicy for GreedyPolicy {
    fn name(&self) -> String {
        "Greedy".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let mut cost = StepCost::default();
        if let Some(candidate) = self.feed.observe(query) {
            let window = self.feed.window_queries();
            let cand_cost = candidate.model.mean_cost(&window);
            let cur_cost = self.current_estimate.mean_cost(&window);
            if cand_cost < cur_cost {
                // switch unconditionally on improvement — α be damned
                self.switches += 1;
                cost.reorg = self.alpha;
                cost.switched = true;
                self.current_exact =
                    build_exact_model(candidate.spec.as_ref(), candidate.id, &self.table);
                self.current_estimate = candidate.model;
            }
        }
        cost.service = self.current_exact.cost(query);
        cost
    }

    fn switches(&self) -> u64 {
        self.switches
    }
}
