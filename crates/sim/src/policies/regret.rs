//! The Regret baseline (§VI-A3), inspired by TASM's storage management:
//! track the *cumulative* query-cost difference between the current layout
//! and each alternative; when some alternative's accumulated saving exceeds
//! the reorganization cost α, switch to it. New candidates retroactively
//! replay the queries serviced on the current layout to initialize their
//! saving counters.

use crate::feed::{Candidate, CandidateFeed};
use crate::policy::{ReorgPolicy, StepCost};
use oreo_layout::build_exact_model;
use oreo_query::Query;
use oreo_storage::{LayoutModel, Table};
use std::collections::VecDeque;
use std::sync::Arc;

/// Cap on the replay history per current layout, bounding the retroactive
/// evaluation cost of each new candidate. Long histories add nothing: a
/// candidate whose savings need >4000 queries to reach α will accumulate
/// them incrementally after admission anyway.
const MAX_HISTORY: usize = 4_000;

struct Alternative {
    candidate: Candidate,
    /// Σ (c(current, q) − c(alt, q)) since this layout became current.
    saving: f64,
}

/// Regret-based reorganizer.
pub struct RegretPolicy {
    feed: CandidateFeed,
    table: Arc<Table>,
    alpha: f64,
    current_estimate: LayoutModel,
    current_exact: LayoutModel,
    alternatives: Vec<Alternative>,
    /// Queries serviced on the current layout (bounded replay buffer).
    history: VecDeque<Query>,
    switches: u64,
    /// Cap on tracked alternatives (oldest evicted first).
    max_alternatives: usize,
}

impl RegretPolicy {
    /// A regret-triggered policy (switch when accumulated regret exceeds α).
    pub fn new(
        table: Arc<Table>,
        feed: CandidateFeed,
        initial_estimate: LayoutModel,
        initial_exact: LayoutModel,
        alpha: f64,
    ) -> Self {
        Self {
            feed,
            table,
            alpha,
            current_estimate: initial_estimate,
            current_exact: initial_exact,
            alternatives: Vec::new(),
            history: VecDeque::new(),
            switches: 0,
            max_alternatives: 16,
        }
    }

    fn admit_candidate(&mut self, candidate: Candidate) {
        // Retroactive saving over the replay buffer (the paper: "using all
        // queries that have been serviced on the current layout").
        let saving: f64 = self
            .history
            .iter()
            .map(|q| self.current_estimate.cost(q) - candidate.model.cost(q))
            .sum();
        self.alternatives.push(Alternative { candidate, saving });
        if self.alternatives.len() > self.max_alternatives {
            self.alternatives.remove(0);
        }
    }
}

impl ReorgPolicy for RegretPolicy {
    fn name(&self) -> String {
        "Regret".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let mut cost = StepCost::default();
        if let Some(candidate) = self.feed.observe(query) {
            self.admit_candidate(candidate);
        }

        // Update cumulative savings with this query.
        let cur = self.current_estimate.cost(query);
        for alt in &mut self.alternatives {
            alt.saving += cur - alt.candidate.model.cost(query);
        }
        self.history.push_back(query.clone());
        if self.history.len() > MAX_HISTORY {
            self.history.pop_front();
        }

        // Switch when the best accumulated saving exceeds α.
        let best = self
            .alternatives
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.saving.total_cmp(&b.1.saving));
        if let Some((idx, alt)) = best {
            if alt.saving > self.alpha {
                let chosen = self.alternatives.swap_remove(idx);
                self.switches += 1;
                cost.reorg = self.alpha;
                cost.switched = true;
                self.current_exact = build_exact_model(
                    chosen.candidate.spec.as_ref(),
                    chosen.candidate.id,
                    &self.table,
                );
                self.current_estimate = chosen.candidate.model;
                // savings were measured against the old current; restart
                self.alternatives.clear();
                self.history.clear();
            }
        }

        cost.service = self.current_exact.cost(query);
        cost
    }

    fn switches(&self) -> u64 {
        self.switches
    }
}
