//! Offline Optimal (§VI-C): sees the whole workload in advance and switches
//! to each template's best layout *exactly at* the template boundary — the
//! lower-bound reference of Fig. 4. It pays α per boundary switch but never
//! lags the drift the way online methods must.

use crate::policies::templates::TemplateLayouts;
use crate::policy::{ReorgPolicy, StepCost};
use oreo_query::Query;
use oreo_storage::LayoutModel;
use oreo_workload::Segment;

/// Template-boundary switcher with full workload knowledge.
pub struct OfflineTemplatePolicy {
    /// (start sequence, exact model) per segment, in order.
    plan: Vec<(u64, LayoutModel)>,
    alpha: f64,
    seen: u64,
    /// Index of the segment currently in force.
    at: usize,
    switches: u64,
}

impl OfflineTemplatePolicy {
    /// The clairvoyant per-segment policy (knows segment boundaries).
    pub fn new(layouts: &TemplateLayouts, segments: &[Segment], alpha: f64) -> Self {
        assert!(!segments.is_empty());
        assert_eq!(layouts.len(), segments.len(), "one layout per segment");
        let plan = segments
            .iter()
            .enumerate()
            .map(|(i, s)| (s.start as u64, layouts.get(i).exact.clone()))
            .collect();
        Self {
            plan,
            alpha,
            seen: 0,
            at: 0,
            switches: 0,
        }
    }
}

impl ReorgPolicy for OfflineTemplatePolicy {
    fn name(&self) -> String {
        "Offline Optimal".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let seq = self.seen;
        self.seen += 1;
        let mut cost = StepCost::default();
        // advance to the segment owning `seq`; each advance is a switch
        while self.at + 1 < self.plan.len() && self.plan[self.at + 1].0 <= seq {
            self.at += 1;
            self.switches += 1;
            cost.reorg += self.alpha;
            cost.switched = true;
        }
        cost.service = self.plan[self.at].1.cost(query);
        cost
    }

    fn switches(&self) -> u64 {
        self.switches
    }
}
