//! MTS Optimal (§VI-C): OREO's modified MTS algorithm running over a
//! *fixed, precomputed* state space containing the best layout for each
//! query template (segment) — isolating the value of workload knowledge in
//! state-space construction from the online switching algorithm itself.

use crate::policies::templates::TemplateLayouts;
use crate::policy::{ReorgPolicy, StepCost};
use oreo_core::{Dumts, DumtsConfig};
use oreo_query::Query;
use oreo_storage::LayoutModel;

/// D-UMTS over per-template layouts.
pub struct MtsOptimalPolicy {
    reorganizer: Dumts,
    /// state id (= segment index) → exact model
    models: Vec<LayoutModel>,
    alpha: f64,
}

impl MtsOptimalPolicy {
    /// A D-UMTS policy over the fixed per-segment template layouts.
    pub fn new(layouts: &TemplateLayouts, config: DumtsConfig) -> Self {
        assert!(!layouts.is_empty());
        let alpha = config.alpha;
        let models: Vec<LayoutModel> = layouts.layouts.iter().map(|l| l.exact.clone()).collect();
        let ids: Vec<u64> = (0..models.len() as u64).collect();
        let reorganizer = Dumts::new(&ids, config);
        Self {
            reorganizer,
            models,
            alpha,
        }
    }

    /// The segment whose layout the policy currently sits on.
    pub fn current_segment(&self) -> usize {
        self.reorganizer.current() as usize
    }
}

impl ReorgPolicy for MtsOptimalPolicy {
    fn name(&self) -> String {
        "MTS Optimal".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let models = &self.models;
        let outcome = self
            .reorganizer
            .observe_query(|s| models[s as usize].cost(query));
        let service = self.models[self.reorganizer.current() as usize].cost(query);
        StepCost {
            service,
            reorg: if outcome.switched_to.is_some() {
                self.alpha
            } else {
                0.0
            },
            switched: outcome.switched_to.is_some(),
        }
    }

    fn switches(&self) -> u64 {
        self.reorganizer.switches()
    }
}
