//! Per-template (per-segment) optimal layouts — the extra workload
//! knowledge granted to the MTS-Optimal and Offline-Optimal comparison
//! methods (§VI-C: "a fixed state space that includes the best data layout
//! precomputed for each query template").
//!
//! A "template" here is one of the stream's *concrete* query shapes: each
//! segment anchors one instantiation of a template family, so the natural
//! state space has one layout per segment (the paper's 20).

use oreo_layout::{build_exact_model, build_model, LayoutGenerator, SharedSpec};
use oreo_storage::{LayoutModel, Table};
use oreo_workload::QueryStream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One precomputed layout per stream segment.
pub struct SegmentLayout {
    /// Index into the stream's segment list.
    pub segment: usize,
    /// The layout built from that segment's queries.
    pub spec: SharedSpec,
    /// Estimated (sample-scaled) model.
    pub estimate: LayoutModel,
    /// Exact model over the full table.
    pub exact: LayoutModel,
}

/// The precomputed state space for the §VI-C comparison methods.
pub struct TemplateLayouts {
    /// One precomputed layout per stream segment.
    pub layouts: Vec<SegmentLayout>,
}

impl TemplateLayouts {
    /// Generate one layout per segment from up to `queries_per_segment` of
    /// the segment's own queries.
    pub fn build(
        table: &Arc<Table>,
        stream: &QueryStream,
        generator: &Arc<dyn LayoutGenerator>,
        k: usize,
        data_sample_rows: usize,
        queries_per_segment: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data_sample = table.sample(&mut rng, data_sample_rows);
        let mut layouts = Vec::with_capacity(stream.segments.len());
        for (i, seg) in stream.segments.iter().enumerate() {
            let take = seg.len.min(queries_per_segment);
            let workload = &stream.queries[seg.start..seg.start + take];
            let spec = generator.generate(&data_sample, workload, k, &mut rng);
            let estimate = build_model(
                spec.as_ref(),
                i as u64,
                &data_sample,
                table.num_rows() as f64,
            );
            let exact = build_exact_model(spec.as_ref(), i as u64, table);
            layouts.push(SegmentLayout {
                segment: i,
                spec,
                estimate,
                exact,
            });
        }
        Self { layouts }
    }

    /// The precomputed layout for `segment`.
    pub fn get(&self, segment: usize) -> &SegmentLayout {
        &self.layouts[segment]
    }

    /// Number of precomputed layouts.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether no layouts were precomputed.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }
}
