//! The SAT-style heuristic baseline (§VII-2): "SAT monitors the ratio of
//! the actual query selectivity and the data skipping rate, and triggers
//! \[the\] reorganization process when the ratio is below a certain
//! threshold" (Xie et al., WWWJ 2023).
//!
//! Intuition: when a query *selects* few rows but still *reads* many (the
//! layout fails to skip), the layout has decayed. SAT tracks an
//! exponentially weighted moving average of `selectivity / fraction_read`
//! and reorganizes to the freshest candidate when it drops below a
//! threshold — a rule-based trigger with no cost model, the kind of
//! industry heuristic OREO's formal framework replaces.

use crate::feed::{Candidate, CandidateFeed};
use crate::policy::{ReorgPolicy, StepCost};
use oreo_layout::build_exact_model;
use oreo_query::Query;
use oreo_storage::{LayoutModel, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// SAT-style ratio-triggered reorganizer.
pub struct SatPolicy {
    feed: CandidateFeed,
    table: Arc<Table>,
    alpha: f64,
    /// Trigger threshold τ: reorganize when EWMA(sel/read) < τ.
    threshold: f64,
    /// EWMA decay (weight of the newest observation).
    ewma_weight: f64,
    ewma: f64,
    /// Row sample for cheap selectivity estimates.
    selectivity_sample: Table,
    current_exact: LayoutModel,
    latest_candidate: Option<Candidate>,
    /// Cool-down: minimum queries between triggers (avoids thrashing on a
    /// burst of unskippable queries).
    cooldown: u64,
    since_switch: u64,
    switches: u64,
}

impl SatPolicy {
    /// A SAT-style periodic re-optimization policy.
    pub fn new(
        table: Arc<Table>,
        feed: CandidateFeed,
        initial_exact: LayoutModel,
        alpha: f64,
        threshold: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(0x5A7);
        let selectivity_sample = table.sample(&mut rng, 2_000.min(table.num_rows()));
        Self {
            feed,
            table,
            alpha,
            threshold,
            ewma_weight: 0.05,
            ewma: 1.0,
            selectivity_sample,
            current_exact: initial_exact,
            latest_candidate: None,
            cooldown: 200,
            since_switch: u64::MAX / 2,
            switches: 0,
        }
    }
}

impl ReorgPolicy for SatPolicy {
    fn name(&self) -> String {
        "SAT".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let mut cost = StepCost::default();
        if let Some(candidate) = self.feed.observe(query) {
            self.latest_candidate = Some(candidate);
        }
        self.since_switch += 1;

        let read = self.current_exact.cost(query).max(1e-9);
        let selectivity = self.selectivity_sample.selectivity(&query.predicate);
        let ratio = (selectivity / read).clamp(0.0, 1.0);
        self.ewma = (1.0 - self.ewma_weight) * self.ewma + self.ewma_weight * ratio;

        if self.ewma < self.threshold
            && self.since_switch >= self.cooldown
            && self.latest_candidate.is_some()
        {
            let candidate = self.latest_candidate.take().expect("checked");
            self.switches += 1;
            self.since_switch = 0;
            self.ewma = 1.0; // optimistic reset for the fresh layout
            cost.reorg = self.alpha;
            cost.switched = true;
            self.current_exact =
                build_exact_model(candidate.spec.as_ref(), candidate.id, &self.table);
        }

        cost.service = self.current_exact.cost(query);
        cost
    }

    fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::CandidateFeed;
    use oreo_layout::{build_exact_model, build_model, QdTreeGenerator, RangeLayout};
    use oreo_query::QueryBuilder;
    use oreo_workload::{tpch_bundle, StreamConfig};

    #[test]
    fn triggers_when_skipping_decays() {
        let bundle = tpch_bundle(8_000, 1);
        let table = Arc::clone(&bundle.table);
        let initial = RangeLayout::from_sample(&table, 0, 16); // by orderkey
        let initial_exact = build_exact_model(&initial, 0, &table);
        let feed = CandidateFeed::new(
            table.sample(&mut StdRng::seed_from_u64(1), 2_000),
            table.num_rows() as f64,
            Arc::new(QdTreeGenerator::new()),
            16,
            100,
            100,
            2,
        );
        let mut sat = SatPolicy::new(Arc::clone(&table), feed, initial_exact, 40.0, 0.3);

        // selective shipdate queries that the orderkey layout cannot skip:
        // selectivity ~2%, fraction read ~100% → ratio ~0.02 → must trigger
        let mut rng = StdRng::seed_from_u64(3);
        let mut switched_at = None;
        for i in 0..600u64 {
            use rand::Rng;
            let d = rng.random_range(365..2000i64);
            let q = QueryBuilder::new(table.schema())
                .between("l_shipdate", d, d + 40)
                .build()
                .with_seq(i);
            let step = sat.observe(&q);
            if step.switched && switched_at.is_none() {
                switched_at = Some(i);
            }
        }
        assert!(
            switched_at.is_some(),
            "SAT never triggered despite decayed skipping"
        );
        assert!(sat.switches() >= 1);
    }

    #[test]
    fn stays_quiet_when_layout_skips_well() {
        let bundle = tpch_bundle(6_000, 2);
        let table = Arc::clone(&bundle.table);
        // layout already matches the workload: range on shipdate
        let ship = table.schema().col("l_shipdate").unwrap();
        let initial = RangeLayout::from_sample(&table, ship, 16);
        let initial_exact = build_exact_model(&initial, 0, &table);
        let _ = build_model(&initial, 0, &table, table.num_rows() as f64);
        let feed = CandidateFeed::new(
            table.sample(&mut StdRng::seed_from_u64(1), 2_000),
            table.num_rows() as f64,
            Arc::new(QdTreeGenerator::new()),
            16,
            100,
            100,
            2,
        );
        let mut sat = SatPolicy::new(Arc::clone(&table), feed, initial_exact, 40.0, 0.3);
        let stream = bundle.stream(StreamConfig {
            total_queries: 400,
            segments: 1,
            seed: 4,
            anchor_jitter: None,
        });
        // restrict to the q1 analogue (id 0): selectivity ≈ fraction read
        // ≈ 1, so the sel/read ratio stays high and SAT must not trigger
        let mut observed = 0;
        for q in stream.queries.iter().filter(|q| q.template == Some(0)) {
            sat.observe(q);
            observed += 1;
        }
        if observed > 0 {
            assert_eq!(sat.switches(), 0, "well-matched layout must not trigger");
        }
    }
}
