//! [`ReorgPolicy`] adapter for the full OREO framework.

use crate::policy::{ReorgPolicy, StepCost};
use oreo_core::{Oreo, OreoConfig};
use oreo_layout::{LayoutGenerator, SharedSpec};
use oreo_query::Query;
use oreo_storage::Table;
use std::sync::Arc;

/// OREO as a simulator policy.
pub struct OreoPolicy {
    inner: Oreo,
}

impl OreoPolicy {
    /// Wraps a full OREO instance behind the [`crate::ReorgPolicy`] interface.
    pub fn new(
        table: Arc<Table>,
        initial_spec: SharedSpec,
        generator: Arc<dyn LayoutGenerator>,
        config: OreoConfig,
    ) -> Self {
        Self {
            inner: Oreo::new(table, initial_spec, generator, config),
        }
    }

    /// Access the wrapped framework (for state-space statistics).
    pub fn framework(&self) -> &Oreo {
        &self.inner
    }
}

impl ReorgPolicy for OreoPolicy {
    fn name(&self) -> String {
        "OREO".into()
    }

    fn observe(&mut self, query: &Query) -> StepCost {
        let report = self.inner.observe(query);
        StepCost {
            service: report.service_cost,
            reorg: if report.reorg_decision.is_some() {
                self.inner.config().alpha
            } else {
                0.0
            },
            switched: report.reorg_decision.is_some(),
        }
    }

    fn switches(&self) -> u64 {
        self.inner.switches()
    }
}
