//! Reorganization strategies: OREO and every comparison method of §VI-A3
//! and §VI-C.

pub mod greedy;
pub mod mts_optimal;
pub mod offline_template;
pub mod oreo_adapter;
pub mod regret;
pub mod sat;
pub mod static_layout;
pub mod templates;

pub use greedy::GreedyPolicy;
pub use mts_optimal::MtsOptimalPolicy;
pub use offline_template::OfflineTemplatePolicy;
pub use oreo_adapter::OreoPolicy;
pub use regret::RegretPolicy;
pub use sat::SatPolicy;
pub use static_layout::StaticPolicy;
pub use templates::{SegmentLayout, TemplateLayouts};
