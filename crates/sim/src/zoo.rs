//! Workload-zoo assembly: attach the zoo's adaptive MTS adversary to a live
//! OREO instance and check Theorem IV.2's 2·H(n) bound against the true
//! offline DP optimum.
//!
//! `oreo-workload` defines the scenarios and the [`LayoutOracle`] trait the
//! adversary interrogates; this module supplies the real oracle (a full
//! [`Oreo`] framework probed via [`Oreo::physical_cost`]) plus the offline
//! state space the bound is measured against: one probe-optimal layout per
//! adversary family and the shared default layout, all costed with exact
//! full-table models — the same surface OREO's own ledger is billed on.

use crate::offline_dp::{offline_optimum, OfflineOptimum};
use crate::policy::{run_policy, RunResult};
use crate::setup::{default_spec, make_generator, PolicySetup};
use oreo_core::Oreo;
use oreo_layout::build_exact_model;
use oreo_query::Query;
use oreo_workload::{adversary_probes, LayoutOracle, QueryStream, Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A live OREO framework behind the adversary's observation interface.
///
/// Probing reads the exact cost of a candidate on OREO's *current physical*
/// layout without advancing anything; serving feeds the emitted query
/// through [`Oreo::observe`]. Because generation interleaves probe/serve
/// against the very instance being attacked, the oracle's final ledger *is*
/// OREO's online cost on the returned stream — and since everything is
/// seeded, replaying the stream through an identically configured fresh
/// instance reproduces that ledger exactly.
pub struct OreoOracle {
    oreo: Oreo,
}

impl OreoOracle {
    /// Build the attacked instance exactly as [`PolicySetup::oreo`] would.
    pub fn new(setup: &PolicySetup) -> Self {
        let spec = default_spec(&setup.bundle, setup.config.partitions, setup.config.seed);
        let oreo = Oreo::new(
            Arc::clone(&setup.bundle.table),
            spec,
            make_generator(setup.technique, &setup.bundle),
            setup.config.clone(),
        );
        Self { oreo }
    }

    /// The attacked framework (ledger, switch count, state space).
    pub fn framework(&self) -> &Oreo {
        &self.oreo
    }
}

impl LayoutOracle for OreoOracle {
    fn probe_cost(&mut self, query: &Query) -> f64 {
        self.oreo.physical_cost(query)
    }

    fn serve(&mut self, query: &Query) {
        self.oreo.observe(query);
    }
}

/// Generate one zoo stream for a policy setup: oblivious scenarios generate
/// directly; the adversarial scenario runs against a fresh live OREO
/// instance (discarded afterwards — use [`adversarial_bound`] when the
/// attacked run's costs are needed too).
pub fn zoo_stream(setup: &PolicySetup, scenario: Scenario, cfg: ScenarioConfig) -> QueryStream {
    match scenario {
        Scenario::Adversarial => {
            let mut oracle = OreoOracle::new(setup);
            scenario.generate_with_oracle(setup.bundle.table.schema(), cfg, &mut oracle)
        }
        _ => scenario.generate(setup.bundle.table.schema(), cfg),
    }
}

/// Run OREO and the fully informed Static baseline over one stream,
/// returning `(oreo, static)` run results. The zoo's ordering claim — OREO
/// beats Static on every non-adversarial scenario — reduces to comparing
/// the two totals.
pub fn compare_oreo_static(setup: &PolicySetup, stream: &QueryStream) -> (RunResult, RunResult) {
    let mut oreo = setup.oreo();
    let oreo_run = run_policy(&mut oreo, &stream.queries, 0);
    let mut static_policy = setup.static_policy(&stream.queries);
    let static_run = run_policy(&mut static_policy, &stream.queries, 0);
    (oreo_run, static_run)
}

/// Outcome of one adversarial bound measurement (Theorem IV.2 as a
/// regression test).
#[derive(Clone, Debug)]
pub struct AdversarialBound {
    /// OREO's online total (service + α·switches) on the adaptive stream.
    pub oreo_total: f64,
    /// Switches the adversary extracted from OREO.
    pub oreo_switches: u64,
    /// The offline DP optimum over the probe-state space.
    pub offline: OfflineOptimum,
    /// States in the offline space (probe families + the default layout).
    pub n_states: usize,
    /// Harmonic number H(n) of the state-space size.
    pub h_n: f64,
    /// The asserted ceiling: `2·H(n)·offline.total_cost + slack·α`.
    pub bound: f64,
    /// `oreo_total / offline.total_cost` (diagnostic).
    pub ratio: f64,
    /// Whether `oreo_total <= bound`.
    pub holds: bool,
}

/// Attack a fresh OREO instance with the adaptive adversary and measure
/// cost(OREO) against `2·H(n)·cost(OFF) + slack_alphas·α`, where OFF is the
/// exact offline DP over one probe-optimal layout per adversary family plus
/// the default layout.
///
/// `slack_alphas` is the additive constant `c` of the assertion, in units
/// of α: the classic proof grants the online algorithm O(α) slack for the
/// phase in flight, and the full framework adds estimate-vs-exact model
/// noise on top (decisions use sample estimates, the bill is exact).
pub fn adversarial_bound(
    setup: &PolicySetup,
    cfg: ScenarioConfig,
    slack_alphas: f64,
) -> (QueryStream, AdversarialBound) {
    let mut oracle = OreoOracle::new(setup);
    let stream =
        Scenario::Adversarial.generate_with_oracle(setup.bundle.table.schema(), cfg, &mut oracle);
    let oreo_total = oracle.framework().ledger().total();
    let oreo_switches = oracle.framework().switches();

    // The offline state space: a layout tuned to each probe family (the
    // adversary's own repertoire — the strongest fixed schedule chooses
    // among exactly these) plus the default layout everyone starts from.
    let probes = adversary_probes(setup.bundle.table.schema(), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0FF1);
    let sample = setup
        .bundle
        .table
        .sample(&mut rng, setup.config.data_sample_rows);
    let generator = make_generator(setup.technique, &setup.bundle);
    let mut models = Vec::with_capacity(probes.len() + 1);
    for (i, probe) in probes.iter().enumerate() {
        let train: Vec<Query> = (0..64).map(|_| probe.instantiate(&mut rng)).collect();
        let spec = generator.generate(&sample, &train, setup.config.partitions, &mut rng);
        models.push(build_exact_model(
            spec.as_ref(),
            i as u64,
            &setup.bundle.table,
        ));
    }
    let default = default_spec(&setup.bundle, setup.config.partitions, setup.config.seed);
    models.push(build_exact_model(
        default.as_ref(),
        probes.len() as u64,
        &setup.bundle.table,
    ));

    let costs: Vec<Vec<f64>> = stream
        .queries
        .iter()
        .map(|q| models.iter().map(|m| m.cost(q)).collect())
        .collect();
    let offline = offline_optimum(&costs, setup.config.alpha);
    let n_states = models.len();
    let h_n: f64 = (1..=n_states).map(|i| 1.0 / i as f64).sum();
    let bound = 2.0 * h_n * offline.total_cost + slack_alphas * setup.config.alpha;
    let ratio = if offline.total_cost > 0.0 {
        oreo_total / offline.total_cost
    } else {
        f64::INFINITY
    };
    let holds = oreo_total <= bound;
    (
        stream,
        AdversarialBound {
            oreo_total,
            oreo_switches,
            offline,
            n_states,
            h_n,
            bound,
            ratio,
            holds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Technique;
    use oreo_core::OreoConfig;
    use oreo_workload::telemetry_bundle;

    fn small_setup() -> PolicySetup {
        PolicySetup::new(
            telemetry_bundle(2_000, 1),
            Technique::QdTree,
            OreoConfig {
                alpha: 20.0,
                partitions: 16,
                data_sample_rows: 1_000,
                window: 100,
                generation_interval: 100,
                seed: 11,
                ..Default::default()
            },
        )
    }

    #[test]
    fn zoo_streams_generate_for_every_scenario() {
        let setup = small_setup();
        let cfg = ScenarioConfig {
            total_queries: 300,
            seed: 5,
        };
        for s in Scenario::ALL {
            let stream = zoo_stream(&setup, s, cfg);
            assert_eq!(stream.queries.len(), 300, "{}", s.name());
            assert!(!stream.segments.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn adversarial_stream_is_reproducible_with_a_fresh_oracle() {
        let setup = small_setup();
        let cfg = ScenarioConfig {
            total_queries: 250,
            seed: 6,
        };
        let a = zoo_stream(&setup, Scenario::Adversarial, cfg);
        let b = zoo_stream(&setup, Scenario::Adversarial, cfg);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.segments, b.segments);
    }

    #[test]
    fn oracle_ledger_matches_a_replay_of_the_stream() {
        // The attacked instance's ledger must equal a fresh OREO replaying
        // the emitted stream — this is what lets the bench serve the
        // pre-generated adversarial stream and still claim the attacked
        // run's costs.
        let setup = small_setup();
        let cfg = ScenarioConfig {
            total_queries: 250,
            seed: 8,
        };
        let mut oracle = OreoOracle::new(&setup);
        let stream = Scenario::Adversarial.generate_with_oracle(
            setup.bundle.table.schema(),
            cfg,
            &mut oracle,
        );
        let attacked = *oracle.framework().ledger();

        let mut replay = OreoOracle::new(&setup);
        for q in &stream.queries {
            replay.serve(q);
        }
        let replayed = *replay.framework().ledger();
        assert_eq!(attacked, replayed);
    }

    #[test]
    fn adversarial_bound_measures_a_finite_ratio() {
        let setup = small_setup();
        let cfg = ScenarioConfig {
            total_queries: 400,
            seed: 9,
        };
        let (stream, bound) = adversarial_bound(&setup, cfg, 8.0);
        assert_eq!(stream.queries.len(), 400);
        assert_eq!(
            bound.n_states,
            oreo_workload::ADVERSARY_PROBE_FAMILIES + 1,
            "probe layouts + default"
        );
        assert!(bound.offline.total_cost > 0.0, "offline cost degenerate");
        assert!(bound.oreo_total >= bound.offline.total_cost - 1e-9);
        assert!(bound.ratio.is_finite());
        assert!(bound.h_n > 1.0);
    }
}
