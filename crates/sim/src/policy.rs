//! The policy interface every reorganization strategy implements, so the
//! runner and harnesses compare identical quantities.

use oreo_core::CostLedger;
use oreo_query::Query;

/// Costs incurred while observing one query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepCost {
    /// Service cost of this query: the fraction of the table read.
    pub service: f64,
    /// Reorganization cost incurred this step (α per switch decided now).
    pub reorg: f64,
    /// Whether a switch was decided this step.
    pub switched: bool,
}

/// An online (or offline-replayed) reorganization strategy.
pub trait ReorgPolicy {
    /// Display name, e.g. `"OREO"`, `"Static"`, `"Greedy"`.
    fn name(&self) -> String;

    /// Observe and "execute" one query, returning the costs it incurred.
    fn observe(&mut self, query: &Query) -> StepCost;

    /// Number of layout switches so far.
    fn switches(&self) -> u64;
}

/// Drive a policy over a stream, accumulating a ledger and a cumulative-cost
/// trajectory sampled every `sample_every` queries (for Fig. 4-style plots).
pub fn run_policy(
    policy: &mut dyn ReorgPolicy,
    queries: &[Query],
    sample_every: usize,
) -> RunResult {
    let mut ledger = CostLedger::new();
    let mut trajectory = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let step = policy.observe(q);
        ledger.add_query(step.service);
        if step.switched {
            ledger.add_reorg(step.reorg);
        } else {
            debug_assert_eq!(step.reorg, 0.0, "reorg cost without a switch");
        }
        if sample_every > 0 && (i + 1) % sample_every == 0 {
            trajectory.push((i as u64 + 1, ledger.total()));
        }
    }
    RunResult {
        name: policy.name(),
        ledger,
        trajectory,
        switches: policy.switches(),
    }
}

/// Outcome of one policy run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The policy's display name.
    pub name: String,
    /// Accumulated query/reorganization costs.
    pub ledger: CostLedger,
    /// `(queries processed, cumulative total cost)` samples.
    pub trajectory: Vec<(u64, f64)>,
    /// Number of layout switches performed.
    pub switches: u64,
}

impl RunResult {
    /// Total cost: query + reorganization.
    pub fn total(&self) -> f64 {
        self.ledger.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl ReorgPolicy for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn observe(&mut self, _q: &Query) -> StepCost {
            StepCost {
                service: self.0,
                reorg: 0.0,
                switched: false,
            }
        }
        fn switches(&self) -> u64 {
            0
        }
    }

    #[test]
    fn runner_accumulates_and_samples() {
        let queries: Vec<Query> = (0..100).map(|i| Query::full_scan().with_seq(i)).collect();
        let mut p = Fixed(0.5);
        let r = run_policy(&mut p, &queries, 25);
        assert_eq!(r.ledger.queries, 100);
        assert!((r.total() - 50.0).abs() < 1e-9);
        assert_eq!(r.trajectory.len(), 4);
        assert_eq!(r.trajectory[0], (25, 12.5));
        assert_eq!(r.switches, 0);
    }
}
