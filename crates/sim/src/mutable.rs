//! A row-level mutable oracle for the live-ingestion path.
//!
//! [`MutableOracle`] holds the ground-truth table contents as plain
//! `(global id, row values)` pairs and applies [`IngestOp`]s with the same
//! semantics the engine's delta buffer implements: appends take the next
//! global id, updates tombstone + re-append under a fresh id, deletes
//! tombstone. Queries evaluate every live row directly — no layouts, no
//! runs, no pruning — so any divergence between the oracle and a
//! delta-aware snapshot scan is a bug in the scan, not the reference.
//!
//! The equivalence proptests and crash-recovery tests compare engine/
//! storage answers against this oracle after arbitrary op interleavings.

use oreo_query::{Predicate, Scalar, Schema};
use oreo_storage::{IngestOp, StorageError, Table, TableBuilder};
use std::sync::Arc;

/// Ground-truth mutable table state.
#[derive(Clone, Debug)]
pub struct MutableOracle {
    schema: Arc<Schema>,
    /// Live rows as `(global id, cells)`, kept sorted by id (appends are
    /// monotone; updates re-append at the tail).
    rows: Vec<(u32, Vec<Scalar>)>,
    next_row: u32,
}

impl MutableOracle {
    /// Seed the oracle with `table`'s rows under identity ids `0..n`.
    pub fn new(table: &Table) -> Self {
        let schema = Arc::clone(table.schema());
        let rows = (0..table.num_rows())
            .map(|r| {
                (
                    r as u32,
                    (0..schema.len())
                        .map(|c| table.scalar(r, c))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>();
        let next_row = rows.len() as u32;
        Self {
            schema,
            rows,
            next_row,
        }
    }

    /// Apply one op batch with delta-buffer semantics. Fails (leaving the
    /// oracle untouched, like the buffer's atomic validate-then-apply) if
    /// an op has the wrong arity or targets a dead/unknown row.
    pub fn apply(&mut self, ops: &[IngestOp]) -> oreo_storage::Result<()> {
        // validate against a shadow of the live set, then commit
        let mut shadow: Vec<(u32, Option<&Vec<Scalar>>)> = Vec::new();
        let mut shadow_next = self.next_row;
        let live_now =
            |rows: &[(u32, Vec<Scalar>)], shadow: &[(u32, Option<&Vec<Scalar>>)], id: u32| {
                let born = rows.binary_search_by_key(&id, |(g, _)| *g).is_ok()
                    || shadow.iter().any(|(g, v)| *g == id && v.is_some());
                let killed = shadow.iter().any(|(g, v)| *g == id && v.is_none());
                born && !killed
            };
        for op in ops {
            match op {
                IngestOp::Append { values } => {
                    if values.len() != self.schema.len() {
                        return Err(StorageError::Corrupt(format!(
                            "append arity {} != schema {}",
                            values.len(),
                            self.schema.len()
                        )));
                    }
                    shadow.push((shadow_next, Some(values)));
                    shadow_next += 1;
                }
                IngestOp::Update { row, values } => {
                    if values.len() != self.schema.len() {
                        return Err(StorageError::Corrupt(format!(
                            "update arity {} != schema {}",
                            values.len(),
                            self.schema.len()
                        )));
                    }
                    if !live_now(&self.rows, &shadow, *row) {
                        return Err(StorageError::Corrupt(format!("update of dead row {row}")));
                    }
                    shadow.push((*row, None));
                    shadow.push((shadow_next, Some(values)));
                    shadow_next += 1;
                }
                IngestOp::Delete { row } => {
                    if !live_now(&self.rows, &shadow, *row) {
                        return Err(StorageError::Corrupt(format!("delete of dead row {row}")));
                    }
                    shadow.push((*row, None));
                }
            }
        }
        // commit: replay the shadow onto the real state
        for (id, values) in shadow {
            match values {
                Some(v) => self.rows.push((id, v.clone())),
                None => {
                    if let Ok(pos) = self.rows.binary_search_by_key(&id, |(g, _)| *g) {
                        self.rows.remove(pos);
                    }
                }
            }
        }
        self.next_row = shadow_next;
        Ok(())
    }

    /// Global ids of live rows matching `predicate`, ascending.
    pub fn matches(&self, predicate: &Predicate) -> Vec<u32> {
        self.rows
            .iter()
            .filter(|(_, cells)| predicate.matches_with(|c| cells[c].clone()))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Live row count.
    pub fn live_rows(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Next global row id an append would take.
    pub fn next_row(&self) -> u32 {
        self.next_row
    }

    /// The schema rows conform to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Materialize the live rows (id order) as a fresh table + id vector —
    /// the "naive rebuilt table" the equivalence tests scan for reference.
    pub fn rebuild(&self) -> (Table, Vec<u32>) {
        let mut b = TableBuilder::new(Arc::clone(&self.schema));
        let mut ids = Vec::with_capacity(self.rows.len());
        for (id, cells) in &self.rows {
            b.push_row(cells);
            ids.push(*id);
        }
        (b.finish(), ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{ColumnType, QueryBuilder};

    fn base(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i)]);
        }
        b.finish()
    }

    fn append(v: i64) -> IngestOp {
        IngestOp::Append {
            values: vec![Scalar::Int(v)],
        }
    }

    #[test]
    fn applies_delta_semantics_and_answers_queries() {
        let t = base(10);
        let mut o = MutableOracle::new(&t);
        o.apply(&[append(100), append(101)]).unwrap(); // ids 10, 11
        o.apply(&[
            IngestOp::Update {
                row: 10,
                values: vec![Scalar::Int(200)],
            }, // tombstone 10, id 12
            IngestOp::Delete { row: 3 },
        ])
        .unwrap();
        assert_eq!(o.live_rows(), 11);
        assert_eq!(o.next_row(), 13);
        let q = QueryBuilder::new(o.schema()).between("v", 100, 200).build();
        assert_eq!(o.matches(&q.predicate), vec![11, 12]);
        let q = QueryBuilder::new(o.schema()).between("v", 3, 3).build();
        assert_eq!(
            o.matches(&q.predicate),
            Vec::<u32>::new(),
            "deleted row hidden"
        );

        let (rebuilt, ids) = o.rebuild();
        assert_eq!(rebuilt.num_rows(), 11);
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6, 7, 8, 9, 11, 12]);
        assert_eq!(rebuilt.scalar(10, 0), Scalar::Int(200));
    }

    #[test]
    fn bad_batches_are_rejected_atomically() {
        let t = base(5);
        let mut o = MutableOracle::new(&t);
        // second op dead-targets: whole batch must not land
        let err = o.apply(&[append(50), IngestOp::Delete { row: 99 }]);
        assert!(err.is_err());
        assert_eq!(o.live_rows(), 5);
        assert_eq!(o.next_row(), 5);
        // same-batch reference: append then delete the appended row
        o.apply(&[append(60), IngestOp::Delete { row: 5 }]).unwrap();
        assert_eq!(o.live_rows(), 5);
        assert_eq!(o.next_row(), 6);
        // double delete rejected
        assert!(o.apply(&[IngestOp::Delete { row: 5 }]).is_err());
        // arity mismatch rejected
        assert!(o
            .apply(&[IngestOp::Append {
                values: vec![Scalar::Int(1), Scalar::Int(2)]
            }])
            .is_err());
    }
}
