//! Assembly helpers: build comparable policy instances for a dataset bundle
//! so that every harness wires baselines identically.

use crate::feed::CandidateFeed;
use crate::policies::greedy::GreedyPolicy;
use crate::policies::mts_optimal::MtsOptimalPolicy;
use crate::policies::offline_template::OfflineTemplatePolicy;
use crate::policies::oreo_adapter::OreoPolicy;
use crate::policies::regret::RegretPolicy;
use crate::policies::sat::SatPolicy;
use crate::policies::static_layout::StaticPolicy;
use crate::policies::templates::TemplateLayouts;
use oreo_core::{DumtsConfig, OreoConfig, TransitionPolicy};
use oreo_layout::{
    build_exact_model, build_model, LayoutGenerator, QdTreeGenerator, RangeLayout, SharedSpec,
    ZOrderGenerator,
};
use oreo_query::Query;
use oreo_storage::Table;
use oreo_workload::{DatasetBundle, Segment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Layout-generation technique under evaluation (Fig. 3 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Technique {
    /// Qd-tree candidate generation.
    QdTree,
    /// Workload-aware Z-order candidate generation.
    ZOrder,
}

impl Technique {
    /// Human-readable name for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Technique::QdTree => "Qd-tree",
            Technique::ZOrder => "Z-Order",
        }
    }
}

/// Instantiate the generator for a technique over a bundle. Z-order falls
/// back to the bundle's default sort column when the workload is cold.
pub fn make_generator(technique: Technique, bundle: &DatasetBundle) -> Arc<dyn LayoutGenerator> {
    match technique {
        Technique::QdTree => Arc::new(QdTreeGenerator::new()),
        Technique::ZOrder => Arc::new(ZOrderGenerator::with_defaults(vec![
            bundle.default_sort_col,
        ])),
    }
}

/// The default layout every online method starts from: range partitioning
/// on the bundle's natural ingest column ("partition by time", §IV-A).
pub fn default_spec(bundle: &DatasetBundle, k: usize, seed: u64) -> SharedSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEFA);
    let sample = bundle
        .table
        .sample(&mut rng, 4000.min(bundle.table.num_rows()));
    Arc::new(RangeLayout::from_sample(
        &sample,
        bundle.default_sort_col,
        k,
    ))
}

/// Everything the Fig. 3 / Table II harnesses need to build one policy set.
pub struct PolicySetup {
    /// The dataset and query templates under test.
    pub bundle: DatasetBundle,
    /// Which candidate-generation technique to use.
    pub technique: Technique,
    /// Shared OREO configuration for all policies.
    pub config: OreoConfig,
}

impl PolicySetup {
    /// Bundles a dataset, technique and configuration into one setup.
    pub fn new(bundle: DatasetBundle, technique: Technique, config: OreoConfig) -> Self {
        Self {
            bundle,
            technique,
            config,
        }
    }

    fn generator(&self) -> Arc<dyn LayoutGenerator> {
        make_generator(self.technique, &self.bundle)
    }

    fn data_sample(&self) -> Table {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xD5A7);
        self.bundle
            .table
            .sample(&mut rng, self.config.data_sample_rows)
    }

    fn feed(&self) -> CandidateFeed {
        CandidateFeed::new(
            self.data_sample(),
            self.bundle.table.num_rows() as f64,
            self.generator(),
            self.config.partitions,
            self.config.window,
            self.config.generation_interval,
            self.config.seed,
        )
    }

    /// Initial (estimated, exact) models of the default layout.
    fn initial_models(
        &self,
    ) -> (
        oreo_storage::LayoutModel,
        oreo_storage::LayoutModel,
        SharedSpec,
    ) {
        let spec = default_spec(&self.bundle, self.config.partitions, self.config.seed);
        let estimate = build_model(
            spec.as_ref(),
            0,
            &self.data_sample(),
            self.bundle.table.num_rows() as f64,
        );
        let exact = build_exact_model(spec.as_ref(), 0, &self.bundle.table);
        (estimate, exact, spec)
    }

    /// The OREO policy.
    pub fn oreo(&self) -> OreoPolicy {
        let (_, _, spec) = self.initial_models();
        OreoPolicy::new(
            Arc::clone(&self.bundle.table),
            spec,
            self.generator(),
            self.config.clone(),
        )
    }

    /// The Greedy baseline.
    pub fn greedy(&self) -> GreedyPolicy {
        let (estimate, exact, _) = self.initial_models();
        GreedyPolicy::new(
            Arc::clone(&self.bundle.table),
            self.feed(),
            estimate,
            exact,
            self.config.alpha,
        )
    }

    /// The Regret baseline.
    pub fn regret(&self) -> RegretPolicy {
        let (estimate, exact, _) = self.initial_models();
        RegretPolicy::new(
            Arc::clone(&self.bundle.table),
            self.feed(),
            estimate,
            exact,
            self.config.alpha,
        )
    }

    /// The SAT-style heuristic baseline (§VII-2): ratio-triggered
    /// reorganization with threshold τ = 0.3.
    pub fn sat(&self) -> SatPolicy {
        let (_, exact, _) = self.initial_models();
        SatPolicy::new(
            Arc::clone(&self.bundle.table),
            self.feed(),
            exact,
            self.config.alpha,
            0.3,
        )
    }

    /// The Static baseline (needs the whole workload in advance).
    pub fn static_policy(&self, full_workload: &[Query]) -> StaticPolicy {
        StaticPolicy::build(
            &self.bundle.table,
            full_workload,
            &self.generator(),
            self.config.partitions,
            self.config.data_sample_rows,
            2_000,
            self.config.seed,
        )
    }

    /// Per-template (per-segment) layouts shared by MTS-Optimal and
    /// Offline-Optimal. Needs the generated stream, since each segment
    /// anchors a concrete query shape.
    pub fn template_layouts(&self, stream: &oreo_workload::QueryStream) -> TemplateLayouts {
        TemplateLayouts::build(
            &self.bundle.table,
            stream,
            &self.generator(),
            self.config.partitions,
            self.config.data_sample_rows,
            100,
            self.config.seed,
        )
    }

    /// MTS Optimal over a precomputed per-template state space.
    pub fn mts_optimal(&self, layouts: &TemplateLayouts) -> MtsOptimalPolicy {
        MtsOptimalPolicy::new(
            layouts,
            DumtsConfig {
                alpha: self.config.alpha,
                transition: if self.config.gamma == 0.0 {
                    TransitionPolicy::Uniform
                } else {
                    TransitionPolicy::SkippedWeighted {
                        gamma: self.config.gamma,
                    }
                },
                stay_on_reset: self.config.stay_on_reset,
                mid_phase_admission: self.config.mid_phase_admission,
                seed: self.config.seed,
            },
        )
    }

    /// Offline Optimal switching at template boundaries.
    pub fn offline_optimal(
        &self,
        layouts: &TemplateLayouts,
        segments: &[Segment],
    ) -> OfflineTemplatePolicy {
        OfflineTemplatePolicy::new(layouts, segments, self.config.alpha)
    }
}
