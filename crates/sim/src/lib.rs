//! # oreo-sim
//!
//! The simulation harness that drives OREO and every baseline of the
//! paper's evaluation over identical query streams:
//!
//! * [`policy`] — the [`ReorgPolicy`] interface + the stream runner;
//! * [`feed`] — the shared candidate-layout feed (§VI-A3: all online
//!   methods see the same candidates);
//! * [`policies`] — Static, Greedy, Regret, OREO, MTS-Optimal and
//!   Offline-Optimal implementations;
//! * [`mutable`] — the row-level mutable oracle the live-ingestion
//!   equivalence tests compare delta-aware scans against;
//! * [`offline_dp`] — the *true* offline UMTS optimum by dynamic
//!   programming, used to verify Theorem IV.1 empirically;
//! * [`setup`] — one-stop assembly of comparable policy sets per dataset;
//! * [`report`] — ASCII tables for the figure/table harnesses;
//! * [`zoo`] — the workload zoo's live adversary oracle and the 2·H(n)
//!   bound measurement against the offline DP.

pub mod feed;
pub mod mutable;
pub mod offline_dp;
pub mod policies;
pub mod policy;
pub mod report;
pub mod setup;
pub mod zoo;

pub use feed::{Candidate, CandidateFeed};
pub use mutable::MutableOracle;
pub use offline_dp::{offline_optimum, OfflineOptimum};
pub use policies::{
    GreedyPolicy, MtsOptimalPolicy, OfflineTemplatePolicy, OreoPolicy, RegretPolicy, SatPolicy,
    StaticPolicy, TemplateLayouts,
};
pub use policy::{run_policy, ReorgPolicy, RunResult, StepCost};
pub use report::{fmt_f, fmt_pct_change, AsciiTable, ThroughputReport};
pub use setup::{default_spec, make_generator, PolicySetup, Technique};
pub use zoo::{adversarial_bound, compare_oreo_static, zoo_stream, AdversarialBound, OreoOracle};

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_core::{Bls, DumtsConfig, OreoConfig, TransitionPolicy};
    use oreo_workload::{tpch_bundle, StreamConfig};

    // NOTE: the former `policy_ordering_matches_paper_narrative` test
    // (quarantined with `#[ignore]` since the workspace bootstrap) now
    // lives in `tests/policy_ordering.rs` as a release-profile
    // integration test. The tuning investigation found the old 6 000-query
    // / 10-segment configuration gave only ~600 queries per drift segment —
    // too short for D-UMTS to amortize its α=60 exploration (counters must
    // absorb ~α of cost before every switch), so *no* tuning of γ/ε could
    // make OREO beat the fully-informed Static baseline there. At the
    // paper's segment-length-to-α ratio (§VI-A3: 1 500-query segments,
    // α=80) the narrative holds with a wide margin; see ROADMAP.md.

    /// Theorem IV.1 empirically: the classic algorithm's expected cost is
    /// within 2(1 + ln n)·OPT + O(α) of the DP optimum on oblivious random
    /// streams.
    #[test]
    fn competitive_ratio_respected_against_dp_optimum() {
        use rand::{Rng, SeedableRng};
        let n = 6usize;
        let alpha = 8.0;
        let queries = 4_000usize;
        let mut adv = rand::rngs::StdRng::seed_from_u64(31);
        // oblivious adversarial-ish stream: block-correlated costs so that
        // switching actually matters
        let mut costs: Vec<Vec<f64>> = Vec::with_capacity(queries);
        let mut cheap = 0usize;
        for t in 0..queries {
            if t % 200 == 0 {
                cheap = adv.random_range(0..n);
            }
            costs.push(
                (0..n)
                    .map(|s| {
                        if s == cheap {
                            0.05 * adv.random::<f64>()
                        } else {
                            0.5 + 0.5 * adv.random::<f64>()
                        }
                    })
                    .collect(),
            );
        }
        let opt = offline_optimum(&costs, alpha);
        assert!(opt.total_cost > 0.0);

        let trials = 10;
        let mut total = 0.0;
        for seed in 0..trials {
            let states: Vec<u64> = (0..n as u64).collect();
            let mut bls = Bls::with_config(
                &states,
                DumtsConfig {
                    alpha,
                    transition: TransitionPolicy::Uniform,
                    stay_on_reset: true,
                    mid_phase_admission: false,
                    seed,
                },
            );
            let mut cost = 0.0;
            for row in &costs {
                let o = bls.observe_query(|s| row[s as usize]);
                cost += row[bls.current() as usize];
                if o.switched_to.is_some() {
                    cost += alpha;
                }
            }
            total += cost;
        }
        let mean = total / trials as f64;
        let h_n: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let bound = 2.0 * h_n * opt.total_cost + 4.0 * alpha; // additive slack
        assert!(
            mean <= bound,
            "algorithm {mean:.1} exceeds 2H(n)·OPT bound {bound:.1} (OPT = {:.1})",
            opt.total_cost
        );
        // and the algorithm is genuinely online: it must cost more than OPT
        assert!(mean >= opt.total_cost - 1e-9);
    }

    /// MTS Optimal and Offline Optimal order correctly: offline knowledge
    /// of switch points beats online switching over the same state space.
    #[test]
    fn offline_beats_online_over_same_states() {
        let bundle = tpch_bundle(10_000, 4);
        let stream = bundle.stream(StreamConfig {
            total_queries: 2_000,
            segments: 5,
            seed: 5,
            ..Default::default()
        });
        let config = OreoConfig {
            alpha: 40.0,
            partitions: 32,
            data_sample_rows: 2_000,
            seed: 6,
            ..Default::default()
        };
        let setup = PolicySetup::new(bundle, Technique::QdTree, config);
        let layouts = setup.template_layouts(&stream);
        let mut mts = setup.mts_optimal(&layouts);
        let mut offline = setup.offline_optimal(&layouts, &stream.segments);

        let rm = run_policy(&mut mts, &stream.queries, 0);
        let roff = run_policy(&mut offline, &stream.queries, 0);
        assert!(
            roff.ledger.query_cost <= rm.ledger.query_cost + 1e-9,
            "offline query cost {} > online {}",
            roff.ledger.query_cost,
            rm.ledger.query_cost
        );
        assert_eq!(roff.switches as usize, stream.segments.len() - 1);
    }
}
