//! Side-by-side policy comparison on one dataset/technique — the
//! development diagnostic behind the Fig. 3/4 harnesses.
//!
//! ```text
//! cargo run --release -p oreo-sim --example compare_policies \
//!     [total_queries] [segments] [alpha] [partitions] [sample_rows] [jitter] [gamma] [epsilon]
//! env: DS=tpch|tpcds|telemetry  TECH=qdtree|zorder
//! ```

use oreo_core::OreoConfig;
use oreo_sim::*;
use oreo_workload::{telemetry_bundle, tpcds_bundle, tpch_bundle, StreamConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(6000);
    let segments: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(8);
    let alpha: f64 = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(80.0);
    let k: usize = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(32);
    let sample: usize = args.get(5).map(|s| s.parse().unwrap()).unwrap_or(3_000);

    let ds = std::env::var("DS").unwrap_or_else(|_| "tpch".into());
    let bundle = match ds.as_str() {
        "tpcds" => tpcds_bundle(30_000, 1),
        "telemetry" => telemetry_bundle(30_000, 1),
        _ => tpch_bundle(30_000, 1),
    };
    let jitter: f64 = args.get(6).map(|s| s.parse().unwrap()).unwrap_or(0.15);
    let gamma: f64 = args.get(7).map(|s| s.parse().unwrap()).unwrap_or(1.0);
    let epsilon: f64 = args.get(8).map(|s| s.parse().unwrap()).unwrap_or(0.08);
    let stream = bundle.stream(StreamConfig {
        total_queries: total,
        segments,
        seed: 2,
        anchor_jitter: Some(jitter),
    });
    let config = OreoConfig {
        alpha,
        window: 200,
        generation_interval: 200,
        partitions: k,
        data_sample_rows: sample,
        seed: 3,
        gamma,
        epsilon,
        ..Default::default()
    };
    let tech = if std::env::var("TECH").as_deref() == Ok("zorder") {
        Technique::ZOrder
    } else {
        Technique::QdTree
    };
    let setup = PolicySetup::new(bundle.clone(), tech, config.clone());

    let mut static_p = setup.static_policy(&stream.queries);
    let rs = run_policy(&mut static_p, &stream.queries, 0);
    let mut oreo = setup.oreo();
    let ro = run_policy(&mut oreo, &stream.queries, 0);
    let mut greedy = setup.greedy();
    let rg = run_policy(&mut greedy, &stream.queries, 0);
    let mut regret = setup.regret();
    let rr = run_policy(&mut regret, &stream.queries, 0);

    let layouts = setup.template_layouts(&stream);
    let mut mts = setup.mts_optimal(&layouts);
    let rm = run_policy(&mut mts, &stream.queries, 0);
    let mut off = setup.offline_optimal(&layouts, &stream.segments);
    let roff = run_policy(&mut off, &stream.queries, 0);

    for r in [&rs, &ro, &rg, &rr, &rm, &roff] {
        println!(
            "{:16} total={:8.1} query={:8.1} reorg={:7.1} switches={}",
            r.name,
            r.total(),
            r.ledger.query_cost,
            r.ledger.reorg_cost,
            r.switches
        );
    }
    let f = oreo.framework();
    println!(
        "OREO states={} stats={:?}",
        f.num_states(),
        f.manager_stats()
    );
}
