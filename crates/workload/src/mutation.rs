//! Deterministic mutation streams for the live-ingestion evaluation.
//!
//! The paper's workloads are read-only; PR 9's write path needs the
//! read-side drift *interleaved with writes*. [`mutation_stream`] produces
//! a seeded schedule of [`IngestOp`] batches pinned to stream positions
//! ("apply this batch after query `after_query`"), mirroring the engine's
//! id assignment so every `Update`/`Delete` targets a row that is live at
//! that point — appends take the next global id in op order, updates
//! tombstone their target and re-append under a fresh id.
//!
//! Everything is a pure function of `(schema, base_rows, config)`, so the
//! engine run and the sim's mutable oracle replay byte-identical op
//! sequences.

use oreo_query::{ColumnType, Scalar, Schema};
use oreo_storage::IngestOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated mutation schedule.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// Number of op batches spread over the stream.
    pub batches: usize,
    /// Appends per batch.
    pub appends_per_batch: usize,
    /// Updates per batch (skipped while no row is live).
    pub updates_per_batch: usize,
    /// Deletes per batch (skipped while no row is live).
    pub deletes_per_batch: usize,
    /// Read-stream length the batches are spread over.
    pub total_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        Self {
            batches: 20,
            appends_per_batch: 50,
            updates_per_batch: 5,
            deletes_per_batch: 5,
            total_queries: 1_000,
            seed: 0,
        }
    }
}

/// One op batch pinned to a stream position.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationBatch {
    /// Apply after this many stream queries have been served.
    pub after_query: usize,
    /// The ops, in apply order.
    pub ops: Vec<IngestOp>,
}

/// A generated mutation schedule plus its bookkeeping totals.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationStream {
    /// Batches in stream order (non-decreasing `after_query`).
    pub batches: Vec<MutationBatch>,
    /// Rows appended across all batches (updates count their re-append).
    pub appended: u64,
    /// Rows tombstoned across all batches (updates count their tombstone).
    pub deleted: u64,
    /// Live rows after every batch lands on a `base_rows`-row table.
    pub expected_live: u64,
}

impl MutationStream {
    /// Total ops across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(|b| b.ops.len()).sum()
    }
}

/// Draw one row of cell values for `schema`. Ints land in a fresh
/// six-digit band so ingested rows are distinguishable from typical base
/// domains; strings draw from a small tag pool (dictionary-friendly).
fn draw_row(schema: &Schema, rng: &mut StdRng) -> Vec<Scalar> {
    (0..schema.len())
        .map(|col| match schema.column_type(col) {
            ColumnType::Int | ColumnType::Timestamp => {
                Scalar::Int(rng.random_range(100_000..200_000))
            }
            ColumnType::Float => Scalar::Float(rng.random::<f64>() * 1e5),
            ColumnType::Str => Scalar::Str(format!("ingest-{}", rng.random_range(0..8u32))),
        })
        .collect()
}

/// Generate a deterministic mutation schedule over a `base_rows`-row table
/// of `schema`. Batches are evenly spaced over `config.total_queries`;
/// update/delete targets are drawn uniformly from the rows live at that
/// point of the schedule (ids tracked exactly as the engine assigns them).
pub fn mutation_stream(schema: &Schema, base_rows: u64, config: MutationConfig) -> MutationStream {
    assert!(config.batches > 0, "need at least one batch");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut live: Vec<u32> = (0..base_rows as u32).collect();
    let mut next_row = base_rows as u32;
    let mut batches = Vec::with_capacity(config.batches);
    let mut appended = 0u64;
    let mut deleted = 0u64;

    for i in 0..config.batches {
        let after_query = (i + 1) * config.total_queries / (config.batches + 1);
        let mut ops = Vec::with_capacity(
            config.appends_per_batch + config.updates_per_batch + config.deletes_per_batch,
        );
        for _ in 0..config.appends_per_batch {
            ops.push(IngestOp::Append {
                values: draw_row(schema, &mut rng),
            });
            live.push(next_row);
            next_row += 1;
            appended += 1;
        }
        for _ in 0..config.updates_per_batch {
            if live.is_empty() {
                break;
            }
            let victim = live.swap_remove(rng.random_range(0..live.len()));
            ops.push(IngestOp::Update {
                row: victim,
                values: draw_row(schema, &mut rng),
            });
            live.push(next_row);
            next_row += 1;
            appended += 1;
            deleted += 1;
        }
        for _ in 0..config.deletes_per_batch {
            if live.is_empty() {
                break;
            }
            let victim = live.swap_remove(rng.random_range(0..live.len()));
            ops.push(IngestOp::Delete { row: victim });
            deleted += 1;
        }
        batches.push(MutationBatch { after_query, ops });
    }

    MutationStream {
        batches,
        appended,
        deleted,
        expected_live: base_rows + appended - deleted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("ts", ColumnType::Int),
            ("v", ColumnType::Float),
            ("tag", ColumnType::Str),
        ])
    }

    #[test]
    fn schedule_is_deterministic_and_balanced() {
        let cfg = MutationConfig {
            batches: 10,
            appends_per_batch: 8,
            updates_per_batch: 2,
            deletes_per_batch: 3,
            total_queries: 500,
            seed: 7,
        };
        let s = schema();
        let a = mutation_stream(&s, 100, cfg);
        let b = mutation_stream(&s, 100, cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.batches.len(), 10);
        assert_eq!(a.appended, 10 * (8 + 2));
        assert_eq!(a.deleted, 10 * (2 + 3));
        assert_eq!(a.expected_live, 100 + 100 - 50);
        assert_eq!(a.total_ops(), 10 * (8 + 2 + 3));
        // positions spread monotonically over the stream
        let positions: Vec<usize> = a.batches.iter().map(|b| b.after_query).collect();
        assert!(positions.windows(2).all(|w| w[0] <= w[1]));
        assert!(*positions.last().unwrap() < 500);
    }

    #[test]
    fn targets_are_always_live_and_rows_match_schema() {
        let s = schema();
        let stream = mutation_stream(
            &s,
            50,
            MutationConfig {
                batches: 30,
                appends_per_batch: 1,
                updates_per_batch: 2,
                deletes_per_batch: 2,
                total_queries: 300,
                seed: 3,
            },
        );
        // replay the id assignment; every update/delete must name a live id
        let mut live: Vec<u32> = (0..50).collect();
        let mut next = 50u32;
        for batch in &stream.batches {
            for op in &batch.ops {
                match op {
                    IngestOp::Append { values } => {
                        assert_eq!(values.len(), s.len());
                        live.push(next);
                        next += 1;
                    }
                    IngestOp::Update { row, values } => {
                        assert_eq!(values.len(), s.len());
                        let pos = live.iter().position(|r| r == row).expect("live target");
                        live.swap_remove(pos);
                        live.push(next);
                        next += 1;
                    }
                    IngestOp::Delete { row } => {
                        let pos = live.iter().position(|r| r == row).expect("live target");
                        live.swap_remove(pos);
                    }
                }
            }
        }
        assert_eq!(live.len() as u64, stream.expected_live);
    }

    #[test]
    fn drains_gracefully_when_everything_dies() {
        let s = schema();
        let stream = mutation_stream(
            &s,
            2,
            MutationConfig {
                batches: 4,
                appends_per_batch: 0,
                updates_per_batch: 0,
                deletes_per_batch: 5,
                total_queries: 100,
                seed: 1,
            },
        );
        assert_eq!(stream.deleted, 2, "only live rows can die");
        assert_eq!(stream.expected_live, 0);
    }
}
