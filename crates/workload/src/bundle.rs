//! A dataset + workload bundle: everything a harness needs to reproduce one
//! of the paper's three evaluation settings.

use crate::generator::{generate_stream, QueryStream, StreamConfig, Template};
use oreo_query::ColId;
use oreo_storage::Table;
use std::sync::Arc;

/// One evaluation setting: a table, its query templates, and the column the
/// "default layout" (partition by arrival order/time) sorts on.
#[derive(Clone, Debug)]
pub struct DatasetBundle {
    /// Dataset name (used in reports).
    pub name: &'static str,
    /// The generated base table.
    pub table: Arc<Table>,
    /// The query templates streams are drawn from.
    pub templates: Vec<Template>,
    /// The natural ingest-order column (e.g. arrival time) used for the
    /// initial range layout.
    pub default_sort_col: ColId,
}

impl DatasetBundle {
    /// Generate the paper-shaped drifting stream for this bundle.
    pub fn stream(&self, config: StreamConfig) -> QueryStream {
        generate_stream(&self.templates, config)
    }

    /// Template lookup by id.
    pub fn template(&self, id: oreo_query::TemplateId) -> Option<&Template> {
        self.templates.iter().find(|t| t.id == id)
    }
}
