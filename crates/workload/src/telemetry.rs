//! Telemetry-shaped dataset and workload (§VI-A2).
//!
//! The paper's third dataset is a production table from VMware's internal
//! SuperCollider data platform: a log of monitoring information for
//! ingestion jobs, with six months of queries. That data is proprietary;
//! the paper describes its shape precisely enough to synthesize:
//!
//! > "The most popular predicates include range queries on the arrival time
//! > of the record, where the time interval ranges from a few hours to a
//! > few months, as well as filters on the name of the collector who has
//! > sent the data."
//!
//! We model an ingestion-job log over a six-month time domain with a
//! Zipf-skewed collector population, and templates dominated by
//! arrival-time ranges (hours → months) and collector filters.

use crate::bundle::DatasetBundle;
use crate::generator::{zipf_index, Template};
use oreo_query::{ColumnType, QueryBuilder, Schema};
use oreo_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Six months in seconds.
pub const TIME_MAX: i64 = 6 * 30 * 24 * 3600;

pub(crate) const HOUR: i64 = 3600;
pub(crate) const DAY: i64 = 24 * HOUR;
pub(crate) const MONTH: i64 = 30 * DAY;

pub(crate) const NUM_COLLECTORS: usize = 50;
pub(crate) const NUM_TEAMS: usize = 100;
const NUM_HOSTS: usize = 200;
const STATUSES: [&str; 5] = ["ok", "failed", "retried", "skipped", "timeout"];
pub(crate) const DATACENTERS: [&str; 8] = [
    "dc-ams", "dc-dub", "dc-iad", "dc-lhr", "dc-nrt", "dc-pdx", "dc-sin", "dc-sjc",
];

/// Ingestion-job log schema.
pub fn telemetry_schema() -> Schema {
    use ColumnType::*;
    Schema::from_pairs([
        ("arrival_time", Timestamp),
        ("collector", Str),
        ("team", Str),
        ("job_id", Int),
        ("status", Str),
        ("duration_ms", Int),
        ("bytes_ingested", Int),
        ("error_count", Int),
        ("host", Str),
        ("datacenter", Str),
    ])
}

pub(crate) fn collector_name(i: usize) -> String {
    format!("collector-{i:03}")
}

pub(crate) fn team_name(i: usize) -> String {
    format!("team-{i:03}")
}

/// Generate the log table. Rows arrive in time order (it is a log), with a
/// Zipf-skewed collector/team population and mostly-successful jobs.
pub fn telemetry_table(rows: usize, seed: u64) -> Table {
    let schema = Arc::new(telemetry_schema());
    let mut b = TableBuilder::new(Arc::clone(&schema));
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..rows {
        // time-ordered arrivals with jitter
        let base = (i as i64 * TIME_MAX) / rows.max(1) as i64;
        let arrival = (base + rng.random_range(0..=TIME_MAX / rows.max(1) as i64)).min(TIME_MAX);
        let collector = collector_name(zipf_index(&mut rng, NUM_COLLECTORS));
        let team = team_name(zipf_index(&mut rng, NUM_TEAMS));
        let failed: bool = rng.random_range(0..100) < 7;
        let status = if failed {
            STATUSES[rng.random_range(1..STATUSES.len())]
        } else {
            "ok"
        };

        b.push_int(0, arrival);
        b.push_str(1, &collector);
        b.push_str(2, &team);
        b.push_int(3, i as i64);
        b.push_str(4, status);
        b.push_int(5, rng.random_range(50..600_000));
        b.push_int(6, rng.random_range(1_000..10_000_000_000));
        b.push_int(7, if failed { rng.random_range(1..100) } else { 0 });
        b.push_str(8, &format!("host-{:03}", zipf_index(&mut rng, NUM_HOSTS)));
        b.push_str(9, DATACENTERS[rng.random_range(0..DATACENTERS.len())]);
        b.finish_row();
    }
    b.finish()
}

/// Eight templates matching the described production query mix.
pub fn telemetry_templates(schema: &Arc<Schema>) -> Vec<Template> {
    let mut out = Vec::new();
    macro_rules! template {
        ($id:expr, $name:expr, |$rng:ident, $q:ident| $body:expr) => {{
            let sc = Arc::clone(schema);
            out.push(Template::new($id, $name, move |$rng| {
                let $q = QueryBuilder::new(&sc);
                $body
            }));
        }};
    }

    // recent few hours of data
    template!(0, "time-hours", |rng, q| {
        let span = rng.random_range(1..=6) * HOUR;
        let start = rng.random_range(0..TIME_MAX - span);
        q.between("arrival_time", start, start + span)
            .build_predicate()
    });

    // a few days
    template!(1, "time-days", |rng, q| {
        let span = rng.random_range(1..=7) * DAY;
        let start = rng.random_range(0..TIME_MAX - span);
        q.between("arrival_time", start, start + span)
            .build_predicate()
    });

    // one to three months
    template!(2, "time-months", |rng, q| {
        let span = rng.random_range(1..=3) * MONTH;
        let start = rng.random_range(0..TIME_MAX - span);
        q.between("arrival_time", start, start + span)
            .build_predicate()
    });

    // per-collector drill-down (popular collectors queried more)
    template!(3, "collector", |rng, q| q
        .eq(
            "collector",
            collector_name(zipf_index(rng, NUM_COLLECTORS)).as_str()
        )
        .build_predicate());

    // collector within a day
    template!(4, "collector-day", |rng, q| {
        let start = rng.random_range(0..TIME_MAX - DAY);
        q.eq(
            "collector",
            collector_name(zipf_index(rng, NUM_COLLECTORS)).as_str(),
        )
        .between("arrival_time", start, start + DAY)
        .build_predicate()
    });

    // a team's jobs within a week
    template!(5, "team-week", |rng, q| {
        let start = rng.random_range(0..TIME_MAX - 7 * DAY);
        q.eq("team", team_name(zipf_index(rng, NUM_TEAMS)).as_str())
            .between("arrival_time", start, start + 7 * DAY)
            .build_predicate()
    });

    // failure investigation within a day
    template!(6, "failures-day", |rng, q| {
        let start = rng.random_range(0..TIME_MAX - DAY);
        q.in_set("status", ["failed", "timeout"])
            .between("arrival_time", start, start + DAY)
            .build_predicate()
    });

    // datacenter health over a few hours
    template!(7, "dc-hours", |rng, q| {
        let span = rng.random_range(2..=12) * HOUR;
        let start = rng.random_range(0..TIME_MAX - span);
        q.eq(
            "datacenter",
            DATACENTERS[rng.random_range(0..DATACENTERS.len())],
        )
        .between("arrival_time", start, start + span)
        .build_predicate()
    });

    out
}

/// Build the full telemetry bundle.
pub fn telemetry_bundle(rows: usize, seed: u64) -> DatasetBundle {
    let table = Arc::new(telemetry_table(rows, seed));
    let templates = telemetry_templates(table.schema());
    DatasetBundle {
        name: "Telemetry",
        table,
        templates,
        default_sort_col: 0, // arrival_time: the natural ingest order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_time_ordered() {
        let t = telemetry_table(1000, 1);
        assert_eq!(t.num_columns(), 10);
        let col = t.schema().col("arrival_time").unwrap();
        let mut prev = 0i64;
        for r in 0..t.num_rows() {
            let v = t.scalar(r, col).as_int().unwrap();
            assert!(v >= prev - TIME_MAX / 1000, "roughly ordered");
            assert!((0..=TIME_MAX).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn collectors_are_skewed() {
        let t = telemetry_table(5000, 2);
        let col = t.schema().col("collector").unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in 0..t.num_rows() {
            *counts.entry(t.scalar(r, col)).or_insert(0usize) += 1;
        }
        let top = counts.values().copied().max().unwrap();
        let avg = 5000 / counts.len();
        assert!(top > avg * 3, "top collector {top} not skewed vs avg {avg}");
    }

    #[test]
    fn failures_are_rare_and_consistent() {
        let t = telemetry_table(3000, 3);
        let s = t.schema();
        let (status, errs) = (s.col("status").unwrap(), s.col("error_count").unwrap());
        let mut failures = 0;
        for r in 0..t.num_rows() {
            let st = t.scalar(r, status);
            let e = t.scalar(r, errs).as_int().unwrap();
            if st.as_str() == Some("ok") {
                assert_eq!(e, 0, "ok rows have no errors");
            } else {
                failures += 1;
                assert!(e > 0, "failed rows have errors");
            }
        }
        let rate = failures as f64 / 3000.0;
        assert!((0.03..0.12).contains(&rate), "failure rate {rate}");
    }

    #[test]
    fn templates_have_time_biased_shapes() {
        let t = telemetry_table(4000, 4);
        let templates = telemetry_templates(t.schema());
        assert_eq!(templates.len(), 8);
        let mut rng = StdRng::seed_from_u64(5);
        // hours queries are much more selective than months queries
        let hours: f64 = (0..20)
            .map(|_| t.selectivity(&templates[0].instantiate(&mut rng).predicate))
            .sum::<f64>()
            / 20.0;
        let months: f64 = (0..20)
            .map(|_| t.selectivity(&templates[2].instantiate(&mut rng).predicate))
            .sum::<f64>()
            / 20.0;
        assert!(hours < months, "hours {hours} !< months {months}");
        assert!(months > 0.1, "months queries touch a lot of data");
    }

    #[test]
    fn bundle_defaults_to_time_sort() {
        let b = telemetry_bundle(500, 6);
        assert_eq!(b.default_sort_col, 0);
        assert_eq!(b.name, "Telemetry");
    }
}
