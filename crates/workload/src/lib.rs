//! # oreo-workload
//!
//! Synthetic datasets and drifting query workloads reproducing the paper's
//! three evaluation settings (§VI-A2):
//!
//! * [`tpch`] — denormalized lineitem (28 columns) + 13 lineitem-touching
//!   template analogues;
//! * [`tpcds`] — denormalized store_sales (24 columns) + 17 template
//!   analogues;
//! * [`telemetry`] — an ingestion-job log shaped after the description of
//!   VMware SuperCollider's production table (time-range + collector
//!   filters).
//!
//! Workload *drift* is produced by [`generator::generate_stream`]: a state
//! machine that samples one template for a random stretch, then jumps to
//! another — 30 000 queries over 20 segments by default, with segment
//! boundaries recorded for the offline baselines.
//!
//! Beyond the paper's random drift, [`scenarios`] holds the *workload zoo*:
//! flash crowds, diurnal cycles, sliding-window rotation, correlated
//! multi-column predicates, and an adaptive MTS adversary that interrogates
//! a [`scenarios::LayoutOracle`] to punish every layout switch.
//!
//! Everything is deterministic given a seed. The substitution rationale
//! (real dbgen/dsdgen/production data → these generators) is documented in
//! DESIGN.md §2.

pub mod bundle;
pub mod generator;
pub mod mutation;
pub mod scenarios;
pub mod telemetry;
pub mod tpcds;
pub mod tpch;

pub use bundle::DatasetBundle;
pub use generator::{
    generate_stream, uniform_i64, zipf_index, QueryStream, Segment, StreamConfig, Template,
};
pub use mutation::{mutation_stream, MutationBatch, MutationConfig, MutationStream};
pub use scenarios::{
    adversary_probes, LayoutOracle, RotorOracle, Scenario, ScenarioConfig, ADVERSARY_PROBE_FAMILIES,
};
pub use telemetry::telemetry_bundle;
pub use tpcds::tpcds_bundle;
pub use tpch::tpch_bundle;

/// All three bundles at the given scale (used by the Fig. 3 and Table II
/// harnesses, which sweep datasets).
pub fn all_bundles(rows: usize, seed: u64) -> Vec<DatasetBundle> {
    vec![
        tpch_bundle(rows, seed),
        tpcds_bundle(rows, seed ^ 0x00D5),
        telemetry_bundle(rows, seed ^ 0x7E1E),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bundles_distinct() {
        let bs = all_bundles(200, 1);
        assert_eq!(bs.len(), 3);
        let names: Vec<&str> = bs.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["TPC-H", "TPC-DS", "Telemetry"]);
        for b in &bs {
            assert_eq!(b.table.num_rows(), 200);
            assert!(!b.templates.is_empty());
        }
    }
}
