//! Template-based drifting workload generation (§VI-A2).
//!
//! "The workload generator behaves like a state machine and samples queries
//! from one query template for an arbitrary amount of time before switching
//! to another random query template." Streams default to 30 000 queries in
//! 20 template segments; every segment boundary is recorded so the
//! Offline-Optimal and Fig. 4 harnesses know where drift happened.

use oreo_query::{Predicate, Query, TemplateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A parameterized query shape. Instantiating draws fresh literals, so
/// queries within a segment are similar but not identical.
#[derive(Clone)]
pub struct Template {
    /// Stable template identifier, carried on generated queries.
    pub id: TemplateId,
    /// Template name (used in reports).
    pub name: &'static str,
    make: Arc<dyn Fn(&mut StdRng) -> Predicate + Send + Sync>,
}

impl Template {
    /// A template that generates queries via `make`.
    pub fn new(
        id: TemplateId,
        name: &'static str,
        make: impl Fn(&mut StdRng) -> Predicate + Send + Sync + 'static,
    ) -> Self {
        Self {
            id,
            name,
            make: Arc::new(make),
        }
    }

    /// Draw one query from this template.
    pub fn instantiate(&self, rng: &mut StdRng) -> Query {
        Query::new((self.make)(rng)).with_template(self.id)
    }
}

impl std::fmt::Debug for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Template({}: {})", self.id, self.name)
    }
}

/// One contiguous run of a single template within the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Index of the segment's first query.
    pub start: usize,
    /// Number of queries in the segment.
    pub len: usize,
    /// Template driving the segment.
    pub template: TemplateId,
}

/// Workload-stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Total queries (paper: 30 000).
    pub total_queries: usize,
    /// Template segments (paper: 20).
    pub segments: usize,
    /// RNG seed.
    pub seed: u64,
    /// `Some(frac)` (the default, 1.0): each segment *anchors* one concrete
    /// instantiation of its template and queries jitter their range
    /// predicates by ±`frac` of the range width around it. This matches the
    /// paper's "30 000 queries generated from 20 query templates": each
    /// segment is one concrete query shape, so a per-template-optimal layout
    /// exists and a single static layout cannot cover all 20 shapes.
    /// `None`: re-draw template parameters independently per query.
    pub anchor_jitter: Option<f64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            total_queries: 30_000,
            segments: 20,
            seed: 0,
            anchor_jitter: Some(1.0),
        }
    }
}

/// A generated stream plus its drift annotations.
#[derive(Clone, Debug)]
pub struct QueryStream {
    /// The generated queries, in stream order.
    pub queries: Vec<Query>,
    /// The drift segments the stream was generated from.
    pub segments: Vec<Segment>,
}

impl QueryStream {
    /// Sequence numbers at which the template changes (Fig. 4's gray lines).
    pub fn switch_points(&self) -> Vec<usize> {
        self.segments.iter().skip(1).map(|s| s.start).collect()
    }
}

/// Generate a drifting stream from `templates` (state-machine style).
///
/// Consecutive segments always use *different* templates (a "switch" that
/// re-draws the same template would not be a drift). Segment lengths are
/// arbitrary: random cut points over the stream, each segment at least one
/// query.
pub fn generate_stream(templates: &[Template], config: StreamConfig) -> QueryStream {
    assert!(!templates.is_empty(), "need at least one template");
    assert!(config.total_queries >= config.segments);
    assert!(config.segments >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Random segment lengths: distinct cut points in (0, total).
    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < config.segments - 1 {
        let c = rng.random_range(1..config.total_queries);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    cuts.push(config.total_queries);

    // Template per segment: uniformly random, no immediate repeats.
    let mut segment_templates: Vec<TemplateId> = Vec::with_capacity(config.segments);
    for i in 0..config.segments {
        loop {
            let t = templates[rng.random_range(0..templates.len())].id;
            if i == 0 || segment_templates[i - 1] != t || templates.len() == 1 {
                segment_templates.push(t);
                break;
            }
        }
    }

    let by_id = |id: TemplateId| {
        templates
            .iter()
            .find(|t| t.id == id)
            .expect("segment template exists")
    };

    let mut queries = Vec::with_capacity(config.total_queries);
    let mut segments = Vec::with_capacity(config.segments);
    let mut start = 0usize;
    for (i, &end) in cuts.iter().enumerate() {
        let template = by_id(segment_templates[i]);
        segments.push(Segment {
            start,
            len: end - start,
            template: template.id,
        });
        match config.anchor_jitter {
            Some(frac) => {
                // one concrete query shape per segment, jittered per query
                let anchor = template.instantiate(&mut rng);
                for seq in start..end {
                    let predicate = jitter_predicate(&anchor.predicate, frac, &mut rng);
                    queries.push(
                        Query::new(predicate)
                            .with_template(template.id)
                            .with_seq(seq as u64),
                    );
                }
            }
            None => {
                for seq in start..end {
                    queries.push(template.instantiate(&mut rng).with_seq(seq as u64));
                }
            }
        }
        start = end;
    }

    QueryStream { queries, segments }
}

/// Shift every range (`BETWEEN`) predicate by a uniform offset of up to
/// ±`frac` of the range's width, keeping the width; point and set predicates
/// stay fixed. This is the per-query parameter jitter within a segment.
pub fn jitter_predicate(predicate: &Predicate, frac: f64, rng: &mut StdRng) -> Predicate {
    use oreo_query::{Atom, Scalar};
    let atoms = predicate
        .atoms()
        .iter()
        .map(|a| match a {
            Atom::Between { col, low, high } => match (low, high) {
                (Scalar::Int(lo), Scalar::Int(hi)) => {
                    let width = (hi - lo).max(1);
                    let max_shift = ((width as f64) * frac).round() as i64;
                    let shift = if max_shift > 0 {
                        rng.random_range(-max_shift..=max_shift)
                    } else {
                        0
                    };
                    Atom::Between {
                        col: *col,
                        low: Scalar::Int(lo + shift),
                        high: Scalar::Int(hi + shift),
                    }
                }
                (Scalar::Float(lo), Scalar::Float(hi)) => {
                    let width = hi - lo;
                    let shift = (rng.random::<f64>() * 2.0 - 1.0) * width * frac;
                    Atom::Between {
                        col: *col,
                        low: Scalar::Float(lo + shift),
                        high: Scalar::Float(hi + shift),
                    }
                }
                _ => a.clone(),
            },
            other => other.clone(),
        })
        .collect();
    Predicate::new(atoms)
}

// ------------------------------------------------------- value helpers --

/// Uniform i64 in `[lo, hi]`.
pub fn uniform_i64(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    rng.random_range(lo..=hi)
}

/// Zipf-ish index in `[0, n)`: favors small indices with exponent ~1.
/// Good enough for skewed categorical picks (popular collectors, brands…).
pub fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    debug_assert!(n > 0);
    // inverse-CDF of a discretized 1/x density
    let u: f64 = rng.random();
    let idx = ((n as f64 + 1.0).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{Atom, CompareOp, Scalar};

    fn dummy_templates(n: u32) -> Vec<Template> {
        (0..n)
            .map(|i| {
                Template::new(i, "dummy", move |rng| {
                    Predicate::new(vec![Atom::Compare {
                        col: 0,
                        op: CompareOp::Lt,
                        value: Scalar::Int(rng.random_range(0..100) + i as i64 * 1000),
                    }])
                })
            })
            .collect()
    }

    #[test]
    fn stream_has_requested_shape() {
        let s = generate_stream(
            &dummy_templates(5),
            StreamConfig {
                total_queries: 1000,
                segments: 10,
                seed: 3,
                anchor_jitter: None,
            },
        );
        assert_eq!(s.queries.len(), 1000);
        assert_eq!(s.segments.len(), 10);
        assert_eq!(s.switch_points().len(), 9);
        // segments tile the stream
        let total: usize = s.segments.iter().map(|g| g.len).sum();
        assert_eq!(total, 1000);
        for (i, seg) in s.segments.iter().enumerate() {
            assert!(seg.len >= 1);
            if i > 0 {
                assert_eq!(seg.start, s.segments[i - 1].start + s.segments[i - 1].len);
                assert_ne!(seg.template, s.segments[i - 1].template, "no-op switch");
            }
        }
    }

    #[test]
    fn queries_carry_template_and_seq() {
        let s = generate_stream(
            &dummy_templates(3),
            StreamConfig {
                total_queries: 100,
                segments: 4,
                seed: 1,
                anchor_jitter: None,
            },
        );
        for (i, q) in s.queries.iter().enumerate() {
            assert_eq!(q.seq, i as u64);
            let seg = s
                .segments
                .iter()
                .find(|g| g.start <= i && i < g.start + g.len)
                .unwrap();
            assert_eq!(q.template, Some(seg.template));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = StreamConfig {
            total_queries: 200,
            segments: 5,
            seed: 9,
            anchor_jitter: None,
        };
        let a = generate_stream(&dummy_templates(4), cfg);
        let b = generate_stream(&dummy_templates(4), cfg);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.segments, b.segments);
    }

    #[test]
    fn single_template_allows_repeats() {
        let s = generate_stream(
            &dummy_templates(1),
            StreamConfig {
                total_queries: 50,
                segments: 3,
                seed: 2,
                anchor_jitter: None,
            },
        );
        assert_eq!(s.segments.len(), 3);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 2, "{counts:?}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::SeedableRng;

        proptest! {
            /// Stream generation is a pure function of (templates, config):
            /// two runs with the same seed agree query-for-query, whatever
            /// the seed and shape.
            #[test]
            fn generate_stream_is_deterministic_for_any_seed(
                seed in any::<u64>(),
                total in 10usize..400,
                segments in 1usize..8,
                jitter_on in any::<bool>(),
            ) {
                let cfg = StreamConfig {
                    total_queries: total.max(segments),
                    segments,
                    seed,
                    anchor_jitter: if jitter_on { Some(1.0) } else { None },
                };
                let a = generate_stream(&dummy_templates(4), cfg);
                let b = generate_stream(&dummy_templates(4), cfg);
                prop_assert_eq!(&a.queries, &b.queries);
                prop_assert_eq!(&a.segments, &b.segments);
            }

            /// Integer range jitter shifts both bounds by the same offset:
            /// the width is preserved exactly and the range can never come
            /// out empty or inverted, for any anchor, width, or fraction.
            #[test]
            fn jitter_preserves_int_ranges(
                lo in -1_000_000i64..1_000_000,
                width in 0i64..100_000,
                frac_millis in 0u32..4_000,
                seed in any::<u64>(),
            ) {
                let frac = frac_millis as f64 / 1000.0;
                let pred = Predicate::new(vec![Atom::Between {
                    col: 1,
                    low: Scalar::Int(lo),
                    high: Scalar::Int(lo + width),
                }]);
                let mut rng = StdRng::seed_from_u64(seed);
                let out = jitter_predicate(&pred, frac, &mut rng);
                match &out.atoms()[0] {
                    Atom::Between {
                        low: Scalar::Int(l),
                        high: Scalar::Int(h),
                        ..
                    } => {
                        prop_assert!(l <= h, "inverted: [{l}, {h}]");
                        prop_assert_eq!(h - l, width, "width changed");
                    }
                    other => prop_assert!(false, "atom shape changed: {other:?}"),
                }
            }

            /// Float range jitter shifts both bounds by one offset: order is
            /// preserved (addition is monotonic) and the width survives up
            /// to rounding.
            #[test]
            fn jitter_preserves_float_ranges(
                lo_mill in -1_000_000i64..1_000_000,
                width_mill in 0i64..100_000,
                frac_millis in 0u32..4_000,
                seed in any::<u64>(),
            ) {
                let (lo, width) = (lo_mill as f64 / 1e3, width_mill as f64 / 1e3);
                let frac = frac_millis as f64 / 1000.0;
                let pred = Predicate::new(vec![Atom::Between {
                    col: 0,
                    low: Scalar::Float(lo),
                    high: Scalar::Float(lo + width),
                }]);
                let mut rng = StdRng::seed_from_u64(seed);
                let out = jitter_predicate(&pred, frac, &mut rng);
                match &out.atoms()[0] {
                    Atom::Between {
                        low: Scalar::Float(l),
                        high: Scalar::Float(h),
                        ..
                    } => {
                        prop_assert!(l <= h, "inverted: [{l}, {h}]");
                        let tolerance = 1e-9 * (1.0 + width.abs() + lo.abs());
                        prop_assert!(
                            ((h - l) - width).abs() <= tolerance,
                            "width drifted: {} vs {width}",
                            h - l
                        );
                    }
                    other => prop_assert!(false, "atom shape changed: {other:?}"),
                }
            }

            /// Non-range atoms pass through jitter untouched.
            #[test]
            fn jitter_leaves_point_predicates_alone(
                value in -1_000_000i64..1_000_000,
                frac_millis in 0u32..4_000,
                seed in any::<u64>(),
            ) {
                let pred = Predicate::new(vec![Atom::Compare {
                    col: 2,
                    op: CompareOp::Eq,
                    value: Scalar::Int(value),
                }]);
                let mut rng = StdRng::seed_from_u64(seed);
                let out = jitter_predicate(&pred, frac_millis as f64 / 1000.0, &mut rng);
                prop_assert_eq!(out.atoms(), pred.atoms());
            }
        }
    }
}
