//! The scenario zoo: production workload shapes plus an explicit MTS
//! adversary (Theorem IV.2's worst case, Borodin–El-Yaniv style).
//!
//! The paper evaluates on TPC-H/TPC-DS/telemetry *drift* — random template
//! switches. A production system also meets structured drift, and a
//! worst-case guarantee is only a regression test once something generates
//! the worst case. Every member of the zoo runs over the telemetry schema
//! ([`crate::telemetry`]) so results are comparable across scenarios:
//!
//! * [`Scenario::FlashCrowd`] — stable dashboards interrupted by sudden
//!   hot-key concentration: each crowd event re-skews the collector
//!   popularity ranking (a fresh permutation fed through
//!   [`zipf_index`]) and hammers one collector over a recent time window;
//! * [`Scenario::Diurnal`] — a repeating day/night cycle: interactive
//!   per-datacenter dashboards by day, month-deep per-team batch reports by
//!   night, the *same* two shapes every cycle;
//! * [`Scenario::RotatingPredicates`] — sliding-window dashboards: a
//!   [`jitter_predicate`]-based window that slowly advances within a phase,
//!   with the windowed column rotating across phases
//!   (`arrival_time` → `duration_ms` → `bytes_ingested`);
//! * [`Scenario::CorrelatedColumns`] — conjunctions of two wide
//!   single-column ranges whose combination is selective: any layout
//!   clustered on one column alone prunes almost nothing;
//! * [`Scenario::Adversarial`] — an *adaptive* adversary that probes a
//!   [`LayoutOracle`] (the live layout's cost surface) and emits, every
//!   step, the probe the current physical layout serves worst — so every
//!   layout switch is punished.
//!
//! Generation is byte-deterministic given [`ScenarioConfig::seed`] (for the
//! adversary: given the seed *and* a deterministic oracle; the OREO oracle
//! in `oreo-sim` is itself seeded, so end-to-end runs reproduce exactly).

use crate::generator::{jitter_predicate, zipf_index, QueryStream, Segment, Template};
use crate::telemetry::{
    collector_name, team_name, DATACENTERS, DAY, HOUR, NUM_COLLECTORS, NUM_TEAMS, TIME_MAX,
};
use oreo_query::{Predicate, Query, QueryBuilder, Schema, TemplateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Number of probe families the MTS adversary chooses among (one per
/// pruning-orthogonal column shape; see [`adversary_probes`]).
pub const ADVERSARY_PROBE_FAMILIES: usize = 6;

/// What the adversary may observe about the system under attack: the cost
/// the *current physical layout* would pay for a candidate query.
///
/// The trait lives in `oreo-workload` (which depends on nothing above
/// storage) and is implemented by `oreo-sim`'s `OreoOracle` over a live
/// OREO instance; [`RotorOracle`] is a deterministic oblivious stand-in.
pub trait LayoutOracle {
    /// Cost of serving `query` on the current physical layout (fraction of
    /// the table read). Probing must not advance the stream.
    fn probe_cost(&mut self, query: &Query) -> f64;

    /// Actually serve `query`: the system observes it and may react
    /// (admission, switch decisions, reorganization).
    fn serve(&mut self, query: &Query);
}

/// Deterministic oblivious stand-in for [`LayoutOracle`]: pretends the
/// layout serves every probe family cheaply except one and rotates the
/// expensive family every `period` served queries. Used by
/// [`Scenario::generate`] when no live system is attached (workload-crate
/// tests, determinism proptests); real runs attach `oreo-sim`'s
/// layout-aware oracle via [`Scenario::generate_with_oracle`].
#[derive(Clone, Copy, Debug)]
pub struct RotorOracle {
    families: usize,
    period: usize,
    served: usize,
}

impl RotorOracle {
    /// A rotor over `families` probe families advancing every `period`
    /// served queries.
    pub fn new(families: usize, period: usize) -> Self {
        assert!(families > 0 && period > 0);
        Self {
            families,
            period,
            served: 0,
        }
    }
}

impl LayoutOracle for RotorOracle {
    fn probe_cost(&mut self, query: &Query) -> f64 {
        let family = query.template.unwrap_or(0) as usize % self.families;
        let worst = (self.served / self.period) % self.families;
        if family == worst {
            1.0
        } else {
            0.1
        }
    }

    fn serve(&mut self, _query: &Query) {
        self.served += 1;
    }
}

/// Zoo stream parameters. Phase lengths are derived from
/// [`ScenarioConfig::total_queries`] so segments stay long enough to
/// amortize α at the paper's ratio (§VI-A3: ~1 500 queries per segment at
/// α = 80; see the `policy_ordering` investigation in ROADMAP.md).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Total queries in the generated stream.
    pub total_queries: usize,
    /// RNG seed; equal seeds reproduce the stream byte-for-byte.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            total_queries: 12_000,
            seed: 7,
        }
    }
}

impl ScenarioConfig {
    /// Number of workload phases: even (the cyclic scenarios pair phases),
    /// at least 4, at most 12, targeting ~1 500 queries per phase.
    pub fn phases(&self) -> usize {
        ((self.total_queries / 1_500).clamp(4, 12) / 2) * 2
    }

    /// Half-open query range of phase `p` of `phases` (tiles the stream).
    fn phase_bounds(&self, p: usize, phases: usize) -> (usize, usize) {
        (
            p * self.total_queries / phases,
            (p + 1) * self.total_queries / phases,
        )
    }
}

/// A member of the workload zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Sudden hot-key concentration over a re-skewed collector ranking.
    FlashCrowd,
    /// Repeating day/night cycle of two stable query shapes.
    Diurnal,
    /// Slowly sliding windows whose column rotates across phases.
    RotatingPredicates,
    /// Wide two-column conjunctions that defeat single-column pruning.
    CorrelatedColumns,
    /// Adaptive MTS adversary: always the probe the layout serves worst.
    Adversarial,
}

impl Scenario {
    /// Every zoo member, in registry order.
    pub const ALL: [Scenario; 5] = [
        Scenario::FlashCrowd,
        Scenario::Diurnal,
        Scenario::RotatingPredicates,
        Scenario::CorrelatedColumns,
        Scenario::Adversarial,
    ];

    /// Stable CLI name (`serve_throughput --scenario <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::Diurnal => "diurnal",
            Scenario::RotatingPredicates => "rotating",
            Scenario::CorrelatedColumns => "correlated",
            Scenario::Adversarial => "adversarial",
        }
    }

    /// Inverse of [`Scenario::name`].
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// One-line description (reports, `--help`).
    pub fn description(self) -> &'static str {
        match self {
            Scenario::FlashCrowd => {
                "stable day-range dashboards interrupted by hot-collector crowds \
                 (zipf re-skew per event)"
            }
            Scenario::Diurnal => {
                "day/night cycle: dashboards tracking the advancing present by \
                 runtime class vs payload-class batch sweeps"
            }
            Scenario::RotatingPredicates => {
                "sliding-window dashboards: each refresh advances the window \
                 and rotates arrival_time -> duration_ms -> bytes_ingested"
            }
            Scenario::CorrelatedColumns => {
                "wide two-column range conjunctions, selective only jointly \
                 (single-column pruning defeated)"
            }
            Scenario::Adversarial => {
                "adaptive MTS adversary: emits the probe the current physical \
                 layout serves worst, punishing every switch"
            }
        }
    }

    /// The part of the paper the scenario stresses (ARCHITECTURE.md map).
    pub fn paper_section(self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "§VI-A2 drift + §IV-B eps-admission under sudden skew",
            Scenario::Diurnal => "§IV-C predictor (gamma-biased returns to seen states)",
            Scenario::RotatingPredicates => "§III-B reorg-vs-track tradeoff under continuous drift",
            Scenario::CorrelatedColumns => "§IV-A multi-column candidate generation",
            Scenario::Adversarial => "Theorem IV.2 worst case (2H(n) competitive bound)",
        }
    }

    /// Whether the scenario is the adaptive adversary (excluded from the
    /// "OREO beats Static" ordering assertions — an MTS adversary punishes
    /// *every* online method; the claim there is the 2·H(n) bound).
    pub fn is_adversarial(self) -> bool {
        matches!(self, Scenario::Adversarial)
    }

    /// Generate the scenario's stream over the telemetry schema. The
    /// adversary runs against a deterministic [`RotorOracle`] stand-in;
    /// attach a live system with [`Scenario::generate_with_oracle`].
    pub fn generate(self, schema: &Arc<Schema>, cfg: ScenarioConfig) -> QueryStream {
        match self {
            Scenario::FlashCrowd => generate_flash_crowd(schema, cfg),
            Scenario::Diurnal => generate_diurnal(schema, cfg),
            Scenario::RotatingPredicates => generate_rotating(schema, cfg),
            Scenario::CorrelatedColumns => generate_correlated(schema, cfg),
            Scenario::Adversarial => {
                let period = (cfg.total_queries / 20).max(50);
                let mut rotor = RotorOracle::new(ADVERSARY_PROBE_FAMILIES, period);
                generate_adversarial(schema, cfg, &mut rotor)
            }
        }
    }

    /// As [`Scenario::generate`], but the adversary interrogates `oracle`
    /// (for the other scenarios, which are oblivious, the oracle is
    /// ignored). `oreo-sim::zoo` wires a live OREO instance in here.
    pub fn generate_with_oracle(
        self,
        schema: &Arc<Schema>,
        cfg: ScenarioConfig,
        oracle: &mut dyn LayoutOracle,
    ) -> QueryStream {
        match self {
            Scenario::Adversarial => generate_adversarial(schema, cfg, oracle),
            _ => self.generate(schema, cfg),
        }
    }
}

// ------------------------------------------------------------ assembly --

/// Accumulates queries and compresses consecutive same-template runs into
/// [`Segment`]s (the drift annotations every harness expects).
struct Assembler {
    queries: Vec<Query>,
    segments: Vec<Segment>,
}

impl Assembler {
    fn new(capacity: usize) -> Self {
        Self {
            queries: Vec::with_capacity(capacity),
            segments: Vec::new(),
        }
    }

    fn push(&mut self, predicate: Predicate, template: TemplateId) {
        let seq = self.queries.len();
        self.queries.push(
            Query::new(predicate)
                .with_template(template)
                .with_seq(seq as u64),
        );
        match self.segments.last_mut() {
            Some(s) if s.template == template => s.len += 1,
            _ => self.segments.push(Segment {
                start: seq,
                len: 1,
                template,
            }),
        }
    }

    fn finish(self) -> QueryStream {
        QueryStream {
            queries: self.queries,
            segments: self.segments,
        }
    }
}

// ----------------------------------------------------------- scenarios --

fn generate_flash_crowd(schema: &Arc<Schema>, cfg: ScenarioConfig) -> QueryStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1A5);
    let phases = cfg.phases();
    let mut asm = Assembler::new(cfg.total_queries);
    for p in 0..phases {
        let (start, end) = cfg.phase_bounds(p, phases);
        if p % 2 == 0 {
            // baseline: one multi-day dashboard window, jittered per query
            let span = rng.random_range(2..=7) * DAY;
            let at = rng.random_range(0..TIME_MAX - span);
            let anchor = QueryBuilder::new(schema)
                .between("arrival_time", at, at + span)
                .build_predicate();
            for _ in start..end {
                asm.push(jitter_predicate(&anchor, 0.5, &mut rng), p as TemplateId);
            }
        } else {
            // crowd: the popularity ranking re-skews (fresh permutation),
            // then zipf concentrates on its head — a *different* collector
            // goes hot each event, and the crowd pulls that collector's
            // *entire* history (payload-size drill-downs, no time filter):
            // the default time-sorted layout prunes none of it, so serving
            // the crowd well genuinely requires re-partitioning.
            let mut ranking: Vec<usize> = (0..NUM_COLLECTORS).collect();
            for i in (1..ranking.len()).rev() {
                let j = rng.random_range(0..=i);
                ranking.swap(i, j);
            }
            let hot = ranking[zipf_index(&mut rng, NUM_COLLECTORS)];
            let (_, blo, bhi) = NUMERIC_COLUMNS[2];
            let (_, dlo, dhi) = NUMERIC_COLUMNS[1];
            let bw = (bhi - blo) / 2;
            let dw = (dhi - dlo) / 2;
            let ba = rng.random_range(blo..bhi - bw);
            let da = rng.random_range(dlo..dhi - dw);
            let anchor = QueryBuilder::new(schema)
                .eq("collector", collector_name(hot).as_str())
                .between("bytes_ingested", ba, ba + bw)
                .between("duration_ms", da, da + dw)
                .build_predicate();
            for _ in start..end {
                asm.push(jitter_predicate(&anchor, 0.3, &mut rng), p as TemplateId);
            }
        }
    }
    asm.finish()
}

fn generate_diurnal(schema: &Arc<Schema>, cfg: ScenarioConfig) -> QueryStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1CE);
    let phases = cfg.phases();
    // Two recurring shape *families* (the §IV-C recurrence the predictor
    // should exploit), but each cycle pins fresh anchors — day dashboards
    // track the advancing present and drill into that day's hot runtime
    // class; night batch jobs sweep a payload-size class. The growing set
    // of distinct narrow anchors is what a single fully informed static
    // layout cannot cover with a fixed partition budget: it must abandon
    // some cycles' bands, while the online system re-specializes.
    let (_, dlo, dhi) = NUMERIC_COLUMNS[1];
    let (_, blo, bhi) = NUMERIC_COLUMNS[2];
    let tw = TIME_MAX / 4; // the day dashboards' "recent" horizon
    let day_dur = (dhi - dlo) / 10; // narrow runtime class of the day
    let night_dur = (dhi - dlo) * 2 / 5; // broad night runtime sweep
    let night_bytes = (bhi - blo) / 10; // narrow payload class
    let cycles = (phases / 2).max(1) as i64;
    let mut asm = Assembler::new(cfg.total_queries);
    for p in 0..phases {
        let (start, end) = cfg.phase_bounds(p, phases);
        let cycle = (p / 2) as i64;
        let anchor = if p % 2 == 0 {
            // day: the window slides toward "now" as cycles pass
            let at = if cycles > 1 {
                (TIME_MAX - tw) * cycle / (cycles - 1)
            } else {
                0
            };
            let da = rng.random_range(dlo..dhi - day_dur);
            QueryBuilder::new(schema)
                .between("arrival_time", at, at + tw)
                .between("duration_ms", da, da + day_dur)
                .build_predicate()
        } else {
            // night: payload-class sweep with a broad runtime filter
            let ba = rng.random_range(blo..bhi - night_bytes);
            let da = rng.random_range(dlo..dhi - night_dur);
            QueryBuilder::new(schema)
                .between("bytes_ingested", ba, ba + night_bytes)
                .between("duration_ms", da, da + night_dur)
                .build_predicate()
        };
        let template = (p % 2) as TemplateId;
        for _ in start..end {
            asm.push(jitter_predicate(&anchor, 0.2, &mut rng), template);
        }
    }
    asm.finish()
}

/// `(column, domain_lo, domain_hi)` cycle for the rotating/correlated
/// scenarios — the three numeric telemetry columns.
const NUMERIC_COLUMNS: [(&str, i64, i64); 3] = [
    ("arrival_time", 0, TIME_MAX),
    ("duration_ms", 50, 600_000),
    ("bytes_ingested", 1_000, 10_000_000_000),
];

fn generate_rotating(schema: &Arc<Schema>, cfg: ScenarioConfig) -> QueryStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5071);
    let phases = cfg.phases();
    let mut asm = Assembler::new(cfg.total_queries);
    for p in 0..phases {
        let (start, end) = cfg.phase_bounds(p, phases);
        let (col, lo, hi) = NUMERIC_COLUMNS[p % NUMERIC_COLUMNS.len()];
        // A ~6%-of-domain dashboard window. The slide happens *between*
        // refreshes (each phase advances to a fresh position on the next
        // column); within a phase the window only jitters — a greedy
        // Qd-tree trained on the window isolates exactly that band, so a
        // mid-phase slide would walk the queries off the trained partitions
        // into the huge residual ones and no layout could track it.
        let width = (hi - lo) / 16;
        let at = rng.random_range(lo..hi - width);
        let window = QueryBuilder::new(schema)
            .between(col, at, at + width)
            .build_predicate();
        for _ in start..end {
            asm.push(jitter_predicate(&window, 0.1, &mut rng), p as TemplateId);
        }
    }
    asm.finish()
}

fn generate_correlated(schema: &Arc<Schema>, cfg: ScenarioConfig) -> QueryStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC07A);
    let phases = cfg.phases();
    let mut asm = Assembler::new(cfg.total_queries);
    for p in 0..phases {
        let (start, end) = cfg.phase_bounds(p, phases);
        // two distinct numeric columns per phase, rotating the pair
        let (ca, la, ha) = NUMERIC_COLUMNS[p % 3];
        let (cb, lb, hb) = NUMERIC_COLUMNS[(p + 1) % 3];
        // each marginal covers ~30% of its domain — wide enough that a
        // layout sorted on either column alone prunes almost nothing —
        // while the conjunction keeps ~9% of rows.
        let wa = (ha - la) * 3 / 10;
        let wb = (hb - lb) * 3 / 10;
        let aa = rng.random_range(la..ha - wa);
        let ab = rng.random_range(lb..hb - wb);
        let anchor = QueryBuilder::new(schema)
            .between(ca, aa, aa + wa)
            .between(cb, ab, ab + wb)
            .build_predicate();
        for _ in start..end {
            asm.push(jitter_predicate(&anchor, 0.15, &mut rng), p as TemplateId);
        }
    }
    asm.finish()
}

// ----------------------------------------------------------- adversary --

/// The adversary's probe set: [`ADVERSARY_PROBE_FAMILIES`] anchored query
/// families, each clustering-orthogonal to the others (a layout that serves
/// one well serves the others badly), with template ids `0..FAMILIES`.
/// Anchors are drawn once from `seed`; range probes jitter ±25% of their
/// width per instantiation so each family stays a coherent shape.
///
/// Exposed so `oreo-sim` can also build the *offline* state space (one
/// probe-optimal layout per family) the 2·H(n) bound is checked against.
pub fn adversary_probes(schema: &Arc<Schema>, seed: u64) -> Vec<Template> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xADD5);
    let mut out = Vec::with_capacity(ADVERSARY_PROBE_FAMILIES);
    let mut anchored = |id: TemplateId, name: &'static str, anchor: Predicate| {
        out.push(Template::new(id, name, move |rng: &mut StdRng| {
            jitter_predicate(&anchor, 0.25, rng)
        }));
    };

    let at = rng.random_range(0..TIME_MAX - 2 * HOUR);
    anchored(
        0,
        "adv-time",
        QueryBuilder::new(schema)
            .between("arrival_time", at, at + 2 * HOUR)
            .build_predicate(),
    );

    let hot_collector = collector_name(zipf_index(&mut rng, NUM_COLLECTORS));
    anchored(
        1,
        "adv-collector",
        QueryBuilder::new(schema)
            .eq("collector", hot_collector.as_str())
            .build_predicate(),
    );

    let hot_team = team_name(zipf_index(&mut rng, NUM_TEAMS));
    anchored(
        2,
        "adv-team",
        QueryBuilder::new(schema)
            .eq("team", hot_team.as_str())
            .build_predicate(),
    );

    let (_, dlo, dhi) = NUMERIC_COLUMNS[1];
    let dw = (dhi - dlo) / 20;
    let da = rng.random_range(dlo..dhi - dw);
    anchored(
        3,
        "adv-duration",
        QueryBuilder::new(schema)
            .between("duration_ms", da, da + dw)
            .build_predicate(),
    );

    let (_, blo, bhi) = NUMERIC_COLUMNS[2];
    let bw = (bhi - blo) / 20;
    let ba = rng.random_range(blo..bhi - bw);
    anchored(
        4,
        "adv-bytes",
        QueryBuilder::new(schema)
            .between("bytes_ingested", ba, ba + bw)
            .build_predicate(),
    );

    let dc = DATACENTERS[rng.random_range(0..DATACENTERS.len())];
    anchored(
        5,
        "adv-dc",
        QueryBuilder::new(schema)
            .eq("datacenter", dc)
            .build_predicate(),
    );

    out
}

fn generate_adversarial(
    schema: &Arc<Schema>,
    cfg: ScenarioConfig,
    oracle: &mut dyn LayoutOracle,
) -> QueryStream {
    let probes = adversary_probes(schema, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xADF0);
    let mut asm = Assembler::new(cfg.total_queries);
    for _ in 0..cfg.total_queries {
        // Instantiate every family first (fixed RNG consumption: the stream
        // bytes depend only on seed + oracle answers), then ask the oracle
        // which candidate the current layout serves worst and emit it.
        let candidates: Vec<Query> = probes.iter().map(|t| t.instantiate(&mut rng)).collect();
        let mut best = 0usize;
        let mut best_cost = f64::NEG_INFINITY;
        for (i, q) in candidates.iter().enumerate() {
            let c = oracle.probe_cost(q);
            if c > best_cost {
                best = i;
                best_cost = c;
            }
        }
        let template = probes[best].id;
        let query = candidates.into_iter().nth(best).expect("probe exists");
        asm.push(query.predicate, template);
        oracle.serve(asm.queries.last().expect("just pushed"));
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::telemetry_schema;
    use oreo_query::Atom;

    fn schema() -> Arc<Schema> {
        Arc::new(telemetry_schema())
    }

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            total_queries: 600,
            seed: 3,
        }
    }

    #[test]
    fn registry_roundtrips() {
        assert_eq!(Scenario::ALL.len(), 5);
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
            assert!(!s.paper_section().is_empty());
        }
        assert_eq!(Scenario::from_name("nope"), None);
        assert!(Scenario::Adversarial.is_adversarial());
        assert_eq!(
            Scenario::ALL.iter().filter(|s| s.is_adversarial()).count(),
            1
        );
    }

    #[test]
    fn streams_have_requested_shape() {
        let schema = schema();
        for s in Scenario::ALL {
            let stream = s.generate(&schema, small());
            assert_eq!(stream.queries.len(), 600, "{}", s.name());
            let covered: usize = stream.segments.iter().map(|g| g.len).sum();
            assert_eq!(covered, 600, "{}: segments must tile", s.name());
            let mut at = 0usize;
            for seg in &stream.segments {
                assert_eq!(seg.start, at, "{}: contiguous segments", s.name());
                at += seg.len;
            }
            for (i, q) in stream.queries.iter().enumerate() {
                assert_eq!(q.seq, i as u64);
                assert!(q.template.is_some(), "{}: query has template", s.name());
            }
            assert!(
                stream.segments.len() >= 2,
                "{}: a zoo scenario must drift",
                s.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let schema = schema();
        for s in Scenario::ALL {
            let a = s.generate(&schema, small());
            let b = s.generate(&schema, small());
            assert_eq!(a.queries, b.queries, "{}", s.name());
            assert_eq!(a.segments, b.segments, "{}", s.name());
            let other = s.generate(&schema, ScenarioConfig { seed: 4, ..small() });
            assert_ne!(a.queries, other.queries, "{}: seed must matter", s.name());
        }
    }

    #[test]
    fn flash_crowd_alternates_dashboards_and_crowds() {
        let stream = Scenario::FlashCrowd.generate(&schema(), small());
        let has_eq = |q: &Query| {
            q.predicate
                .atoms()
                .iter()
                .any(|a| matches!(a, Atom::Compare { .. }))
        };
        let crowd = stream.queries.iter().filter(|q| has_eq(q)).count();
        let baseline = stream.queries.len() - crowd;
        assert!(crowd > 0, "no crowd phases");
        assert!(baseline > 0, "no baseline phases");
    }

    #[test]
    fn diurnal_repeats_two_shapes() {
        let stream = Scenario::Diurnal.generate(&schema(), small());
        let templates: std::collections::BTreeSet<_> =
            stream.segments.iter().map(|s| s.template).collect();
        assert_eq!(templates.len(), 2, "day and night only");
        assert!(stream.segments.len() >= 4, "multiple cycles");
    }

    #[test]
    fn rotating_rotates_columns() {
        let stream = Scenario::RotatingPredicates.generate(&schema(), small());
        let cols: std::collections::BTreeSet<_> = stream
            .queries
            .iter()
            .flat_map(|q| q.predicate.columns())
            .collect();
        assert!(
            cols.len() >= 3,
            "windows must rotate across columns: {cols:?}"
        );
    }

    #[test]
    fn correlated_queries_touch_two_columns() {
        let stream = Scenario::CorrelatedColumns.generate(&schema(), small());
        for q in &stream.queries {
            assert_eq!(q.predicate.atoms().len(), 2);
            assert!(q
                .predicate
                .atoms()
                .iter()
                .all(|a| matches!(a, Atom::Between { .. })));
        }
    }

    #[test]
    fn adversary_follows_the_oracle() {
        let schema = schema();
        // Rotor says family (served/period)%6 is worst; the adversary must
        // emit exactly that family at every step.
        let cfg = ScenarioConfig {
            total_queries: 400,
            seed: 9,
        };
        let mut rotor = RotorOracle::new(ADVERSARY_PROBE_FAMILIES, 100);
        let stream = Scenario::Adversarial.generate_with_oracle(&schema, cfg, &mut rotor);
        for (i, q) in stream.queries.iter().enumerate() {
            let expected = ((i / 100) % ADVERSARY_PROBE_FAMILIES) as TemplateId;
            assert_eq!(q.template, Some(expected), "step {i}");
        }
        assert_eq!(stream.segments.len(), 4);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Generation walks real query-building code per case, so run
            // fewer, larger cases than the default 256.
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Every zoo scenario is byte-deterministic given a seed: two
            /// generations with the same `ScenarioConfig` agree on every
            /// query and segment, for arbitrary seeds and stream lengths
            /// (the adversarial member runs against the deterministic
            /// rotor oracle here; the live-OREO variant is covered by
            /// `oreo-sim`'s reproducibility test).
            #[test]
            fn zoo_generation_is_byte_deterministic(
                seed in any::<u64>(),
                total in 60usize..400,
            ) {
                let schema = schema();
                let cfg = ScenarioConfig {
                    total_queries: total,
                    seed,
                };
                for s in Scenario::ALL {
                    let a = s.generate(&schema, cfg);
                    let b = s.generate(&schema, cfg);
                    prop_assert_eq!(&a.queries, &b.queries, "{}", s.name());
                    prop_assert_eq!(&a.segments, &b.segments, "{}", s.name());
                }
            }

            /// Zoo queries never carry empty or inverted ranges, whatever
            /// the seed — the generators compose `jitter_predicate` with
            /// width-preserving anchors, so this holds for every member.
            #[test]
            fn zoo_queries_have_sane_ranges(
                seed in any::<u64>(),
            ) {
                let schema = schema();
                let cfg = ScenarioConfig {
                    total_queries: 300,
                    seed,
                };
                for s in Scenario::ALL {
                    let stream = s.generate(&schema, cfg);
                    for q in &stream.queries {
                        for atom in q.predicate.atoms() {
                            if let Atom::Between { low, high, .. } = atom {
                                prop_assert!(
                                    low <= high,
                                    "{}: inverted range {atom:?}",
                                    s.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn probe_families_are_distinct_shapes() {
        let schema = schema();
        let probes = adversary_probes(&schema, 5);
        assert_eq!(probes.len(), ADVERSARY_PROBE_FAMILIES);
        let mut rng = StdRng::seed_from_u64(1);
        let cols: Vec<Vec<usize>> = probes
            .iter()
            .map(|t| t.instantiate(&mut rng).predicate.columns())
            .collect();
        for (i, a) in cols.iter().enumerate() {
            for b in cols.iter().skip(i + 1) {
                assert_ne!(a, b, "families must be clustering-orthogonal");
            }
        }
    }
}
