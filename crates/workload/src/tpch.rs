//! TPC-H-shaped dataset and workload (§VI-A2).
//!
//! The paper denormalizes all TPC-H tables against `lineitem` (SF 100, one
//! 40M-row primary-key slice) and uses the 13 lineitem-touching query
//! templates. We reproduce the *shape*: a denormalized lineitem-like table
//! whose columns, value domains, and inter-column correlations (order →
//! ship → receipt dates) mirror dbgen closely enough that each template's
//! predicates have realistic selectivities, at a configurable row count.
//!
//! Dates are integer days since 1992-01-01 (TPC-H's date domain runs through
//! 1998-12-31 ≈ day 2555).

use crate::bundle::DatasetBundle;
use crate::generator::Template;
use oreo_query::{ColumnType, QueryBuilder, Schema};
use oreo_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Day number of 1992-01-01.
pub const DATE_MIN: i64 = 0;
/// Day number of 1998-12-31.
pub const DATE_MAX: i64 = 2555;

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const SHIP_INSTRUCT: [&str; 4] = [
    "COLLECT COD",
    "DELIVER IN PERSON",
    "NONE",
    "TAKE BACK RETURN",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const CONTAINERS: [&str; 8] = [
    "JUMBO PKG",
    "LG BOX",
    "LG CASE",
    "MED BAG",
    "MED BOX",
    "SM BOX",
    "SM PKG",
    "WRAP CASE",
];
const TYPES: [&str; 12] = [
    "ECONOMY ANODIZED",
    "ECONOMY BURNISHED",
    "ECONOMY PLATED",
    "LARGE BRUSHED",
    "LARGE POLISHED",
    "MEDIUM ANODIZED",
    "PROMO ANODIZED",
    "PROMO BURNISHED",
    "PROMO PLATED",
    "SMALL BRUSHED",
    "STANDARD PLATED",
    "STANDARD POLISHED",
];

/// The denormalized schema (lineitem ⋈ orders ⋈ customer ⋈ supplier ⋈ part).
pub fn tpch_schema() -> Schema {
    use ColumnType::*;
    Schema::from_pairs([
        ("l_orderkey", Int),
        ("l_partkey", Int),
        ("l_suppkey", Int),
        ("l_linenumber", Int),
        ("l_quantity", Int),
        ("l_extendedprice", Float),
        ("l_discount", Float),
        ("l_tax", Float),
        ("l_returnflag", Str),
        ("l_linestatus", Str),
        ("l_shipdate", Timestamp),
        ("l_commitdate", Timestamp),
        ("l_receiptdate", Timestamp),
        ("l_shipinstruct", Str),
        ("l_shipmode", Str),
        ("o_orderdate", Timestamp),
        ("o_orderpriority", Str),
        ("o_orderstatus", Str),
        ("o_totalprice", Float),
        ("c_mktsegment", Str),
        ("c_region", Str),
        ("c_nationkey", Int),
        ("s_region", Str),
        ("s_nationkey", Int),
        ("p_brand", Str),
        ("p_container", Str),
        ("p_type", Str),
        ("p_size", Int),
    ])
}

/// Generate the denormalized table.
pub fn tpch_table(rows: usize, seed: u64) -> Table {
    let schema = Arc::new(tpch_schema());
    let mut b = TableBuilder::new(Arc::clone(&schema));
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..rows {
        let orderkey = i as i64 / 4; // ~4 lines per order, arrival-ordered
        let orderdate = rng.random_range(DATE_MIN..=DATE_MAX - 151);
        let shipdate = orderdate + rng.random_range(1..=121);
        let commitdate = orderdate + rng.random_range(30..=90);
        let receiptdate = shipdate + rng.random_range(1..=30);
        let quantity = rng.random_range(1..=50i64);
        let price = quantity as f64 * rng.random_range(900.0..=10_000.0) / 10.0;
        // dbgen semantics: only receipts before ~mid-1995 (day 1278) can be
        // returned; later ones are "N"
        let returnflag = if receiptdate <= 1278 {
            ["A", "R"][rng.random_range(0..2)]
        } else {
            "N"
        };
        let linestatus = if shipdate > 1721 { "O" } else { "F" };
        let brand = format!(
            "Brand#{}{}",
            rng.random_range(1..=5),
            rng.random_range(1..=5)
        );

        b.push_int(0, orderkey);
        b.push_int(1, rng.random_range(0..200_000));
        b.push_int(2, rng.random_range(0..10_000));
        b.push_int(3, (i % 4) as i64 + 1);
        b.push_int(4, quantity);
        b.push_float(5, price);
        b.push_float(6, f64::from(rng.random_range(0..=10u32)) / 100.0);
        b.push_float(7, f64::from(rng.random_range(0..=8u32)) / 100.0);
        b.push_str(8, returnflag);
        b.push_str(9, linestatus);
        b.push_int(10, shipdate);
        b.push_int(11, commitdate);
        b.push_int(12, receiptdate);
        b.push_str(13, SHIP_INSTRUCT[rng.random_range(0..SHIP_INSTRUCT.len())]);
        b.push_str(14, SHIP_MODES[rng.random_range(0..SHIP_MODES.len())]);
        b.push_int(15, orderdate);
        b.push_str(16, PRIORITIES[rng.random_range(0..PRIORITIES.len())]);
        b.push_str(17, ["F", "O", "P"][rng.random_range(0..3)]);
        b.push_float(18, price * rng.random_range(1.0..6.0));
        b.push_str(19, SEGMENTS[rng.random_range(0..SEGMENTS.len())]);
        b.push_str(20, REGIONS[rng.random_range(0..REGIONS.len())]);
        b.push_int(21, rng.random_range(0..25));
        b.push_str(22, REGIONS[rng.random_range(0..REGIONS.len())]);
        b.push_int(23, rng.random_range(0..25));
        b.push_str(24, &brand);
        b.push_str(25, CONTAINERS[rng.random_range(0..CONTAINERS.len())]);
        b.push_str(26, TYPES[rng.random_range(0..TYPES.len())]);
        b.push_int(27, rng.random_range(1..=50));
        b.finish_row();
    }
    b.finish()
}

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

/// The 13 lineitem-touching templates (analogues of q1, q3, q4, q5, q6, q7,
/// q8, q10, q12, q14, q17, q19, q21; q9/q18 are excluded as in the paper).
pub fn tpch_templates(schema: &Arc<Schema>) -> Vec<Template> {
    let mut out = Vec::new();
    let s = |schema: &Arc<Schema>| Arc::clone(schema);

    // q1: pricing summary — shipdate <= cutoff near the end of the domain
    let sc = s(schema);
    out.push(Template::new(0, "q1", move |rng| {
        let delta = rng.random_range(60..=120);
        QueryBuilder::new(&sc)
            .le("l_shipdate", DATE_MAX - delta)
            .build_predicate()
    }));

    // q3: shipping priority — segment + orderdate < D + shipdate > D
    let sc = s(schema);
    out.push(Template::new(1, "q3", move |rng| {
        let d = rng.random_range(1100..=1200); // around 1995-03
        QueryBuilder::new(&sc)
            .eq("c_mktsegment", pick(rng, &SEGMENTS))
            .lt("o_orderdate", d)
            .gt("l_shipdate", d)
            .build_predicate()
    }));

    // q4: order priority checking — orderdate in a quarter
    let sc = s(schema);
    out.push(Template::new(2, "q4", move |rng| {
        let d = rng.random_range(DATE_MIN..=DATE_MAX - 240);
        QueryBuilder::new(&sc)
            .between("o_orderdate", d, d + 90)
            .build_predicate()
    }));

    // q5: local supplier volume — region + orderdate within one year
    let sc = s(schema);
    out.push(Template::new(3, "q5", move |rng| {
        let y = rng.random_range(0..=5) * 365;
        QueryBuilder::new(&sc)
            .eq("c_region", pick(rng, &REGIONS))
            .between("o_orderdate", y, y + 364)
            .build_predicate()
    }));

    // q6: forecasting revenue — shipdate year + discount band + quantity
    let sc = s(schema);
    out.push(Template::new(4, "q6", move |rng| {
        let y = rng.random_range(0..=5) * 365;
        let d = f64::from(rng.random_range(2..=9u32)) / 100.0;
        QueryBuilder::new(&sc)
            .between("l_shipdate", y, y + 364)
            .between("l_discount", d - 0.011, d + 0.011)
            .lt("l_quantity", rng.random_range(24..=25i64))
            .build_predicate()
    }));

    // q7: volume shipping — nation pair + shipdate 1995..1996
    let sc = s(schema);
    out.push(Template::new(5, "q7", move |rng| {
        QueryBuilder::new(&sc)
            .eq("s_nationkey", rng.random_range(0..25i64))
            .eq("c_nationkey", rng.random_range(0..25i64))
            .between("l_shipdate", 1096, 1825)
            .build_predicate()
    }));

    // q8: market share — part type + region + orderdate 1995..1996
    let sc = s(schema);
    out.push(Template::new(6, "q8", move |rng| {
        QueryBuilder::new(&sc)
            .eq("p_type", pick(rng, &TYPES))
            .eq("c_region", pick(rng, &REGIONS))
            .between("o_orderdate", 1096, 1825)
            .build_predicate()
    }));

    // q10: returned items — orderdate quarter + returnflag = R
    let sc = s(schema);
    out.push(Template::new(7, "q10", move |rng| {
        let d = rng.random_range(DATE_MIN..=1200);
        QueryBuilder::new(&sc)
            .between("o_orderdate", d, d + 90)
            .eq("l_returnflag", "R")
            .build_predicate()
    }));

    // q12: shipping modes — two modes + receiptdate within a year
    let sc = s(schema);
    out.push(Template::new(8, "q12", move |rng| {
        let y = rng.random_range(0..=5) * 365;
        let m1 = pick(rng, &SHIP_MODES);
        let m2 = pick(rng, &SHIP_MODES);
        QueryBuilder::new(&sc)
            .in_set("l_shipmode", [m1, m2])
            .between("l_receiptdate", y, y + 364)
            .build_predicate()
    }));

    // q14: promotion effect — shipdate within one month. dbgen draws the
    // month from 1993-01..1997-10, well inside the data mass (the first and
    // last months of the shipdate domain are thinly populated).
    let sc = s(schema);
    out.push(Template::new(9, "q14", move |rng| {
        let d = rng.random_range(365..=2130);
        QueryBuilder::new(&sc)
            .between("l_shipdate", d, d + 29)
            .build_predicate()
    }));

    // q17: small-quantity-order revenue — brand + container
    let sc = s(schema);
    out.push(Template::new(10, "q17", move |rng| {
        let brand = format!(
            "Brand#{}{}",
            rng.random_range(1..=5),
            rng.random_range(1..=5)
        );
        QueryBuilder::new(&sc)
            .eq("p_brand", brand.as_str())
            .eq("p_container", pick(rng, &CONTAINERS))
            .build_predicate()
    }));

    // q19: discounted revenue — brand + container set + quantity band
    let sc = s(schema);
    out.push(Template::new(11, "q19", move |rng| {
        let brand = format!(
            "Brand#{}{}",
            rng.random_range(1..=5),
            rng.random_range(1..=5)
        );
        let q = rng.random_range(1..=30i64);
        QueryBuilder::new(&sc)
            .eq("p_brand", brand.as_str())
            .in_set("p_container", ["SM BOX", "SM PKG", "MED BAG", "MED BOX"])
            .between("l_quantity", q, q + 10)
            .build_predicate()
    }));

    // q21: suppliers who kept orders waiting — nation + receiptdate year
    let sc = s(schema);
    out.push(Template::new(12, "q21", move |rng| {
        let y = rng.random_range(0..=5) * 365;
        QueryBuilder::new(&sc)
            .eq("s_nationkey", rng.random_range(0..25i64))
            .between("l_receiptdate", y, y + 364)
            .build_predicate()
    }));

    out
}

/// Build the full TPC-H bundle.
pub fn tpch_bundle(rows: usize, seed: u64) -> DatasetBundle {
    let table = Arc::new(tpch_table(rows, seed));
    let templates = tpch_templates(table.schema());
    DatasetBundle {
        name: "TPC-H",
        table,
        templates,
        default_sort_col: 0, // l_orderkey: the primary-key / arrival order
    }
}

/// Convenience: instantiate one query from each template (tests, examples).
pub fn one_of_each(templates: &[Template], seed: u64) -> Vec<oreo_query::Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    templates.iter().map(|t| t.instantiate(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = tpch_table(2000, 1);
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(t.num_columns(), 28);
    }

    #[test]
    fn date_correlations_hold() {
        let t = tpch_table(500, 2);
        let s = t.schema();
        let (od, sd, cd, rd) = (
            s.col("o_orderdate").unwrap(),
            s.col("l_shipdate").unwrap(),
            s.col("l_commitdate").unwrap(),
            s.col("l_receiptdate").unwrap(),
        );
        for r in 0..t.num_rows() {
            let order = t.scalar(r, od).as_int().unwrap();
            let ship = t.scalar(r, sd).as_int().unwrap();
            let commit = t.scalar(r, cd).as_int().unwrap();
            let receipt = t.scalar(r, rd).as_int().unwrap();
            assert!(order < ship, "order {order} !< ship {ship}");
            assert!(commit > order);
            assert!(receipt > ship);
            assert!((DATE_MIN..=DATE_MAX + 151).contains(&receipt));
        }
    }

    #[test]
    fn thirteen_templates_with_sane_selectivity() {
        let t = tpch_table(4000, 3);
        let templates = tpch_templates(t.schema());
        assert_eq!(templates.len(), 13);
        let mut rng = StdRng::seed_from_u64(4);
        for tpl in &templates {
            let q = tpl.instantiate(&mut rng);
            let sel = t.selectivity(&q.predicate);
            // q1 is a near-full scan by design (shipdate <= end - Δ),
            // matching real TPC-H; everything else reads a minority.
            let cap = if tpl.name == "q1" { 1.0 } else { 0.9 };
            assert!(
                (0.0..=cap).contains(&sel),
                "{}: selectivity {sel} out of range",
                tpl.name
            );
            assert_eq!(q.template, Some(tpl.id));
        }
    }

    #[test]
    fn q6_is_selective() {
        let t = tpch_table(5000, 5);
        let templates = tpch_templates(t.schema());
        let mut rng = StdRng::seed_from_u64(6);
        // q6: one year (1/7) × discount band (~3/11) × quantity < 24 (~0.47)
        let q = templates[4].instantiate(&mut rng);
        let sel = t.selectivity(&q.predicate);
        assert!(sel < 0.1, "q6 selectivity {sel}");
    }

    #[test]
    fn bundle_streams() {
        let b = tpch_bundle(1000, 7);
        let s = b.stream(crate::generator::StreamConfig {
            total_queries: 500,
            segments: 5,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(s.queries.len(), 500);
        assert_eq!(b.name, "TPC-H");
        // every query's template is one of the bundle's
        for q in &s.queries {
            assert!(b.template(q.template.unwrap()).is_some());
        }
    }

    #[test]
    fn deterministic_table() {
        let a = tpch_table(300, 9);
        let b = tpch_table(300, 9);
        for r in [0, 100, 299] {
            for c in 0..a.num_columns() {
                assert_eq!(a.scalar(r, c), b.scalar(r, c));
            }
        }
    }
}
