//! TPC-DS-shaped dataset and workload (§VI-A2).
//!
//! The paper denormalizes all dimensions against `store_sales` (SF 10,
//! ~26M rows) and uses 17 store_sales-touching templates (q3, q7, q13, q19,
//! q27, q28, q34, q36, q46, q48, q53, q68, q79, q88, q89, q96, q98). We
//! reproduce the shape: a store_sales-like fact table joined with date,
//! time, item, store, customer-demographics and household-demographics
//! attributes, plus 17 template analogues whose predicate structures follow
//! the originals.
//!
//! Sold dates are integer days since 1998-01-01 over a five-year domain;
//! `d_year`/`d_moy`/`d_dom` are derived consistently from the day number.

use crate::bundle::DatasetBundle;
use crate::generator::Template;
use oreo_query::{ColumnType, QueryBuilder, Schema};
use oreo_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Five years of sold dates.
pub const DAYS: i64 = 5 * 365;

const STORE_NAMES: [&str; 12] = [
    "able",
    "ation",
    "bar",
    "cally",
    "eing",
    "ese",
    "anti",
    "ought",
    "pri",
    "bration",
    "eseese",
    "callycally",
];
const STATES: [&str; 10] = ["AL", "CA", "GA", "MI", "NY", "OH", "PA", "TN", "TX", "WA"];
const CATEGORIES: [&str; 10] = [
    "Books",
    "Children",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Women",
];
const CLASSES: [&str; 16] = [
    "accent",
    "bedding",
    "blinds/shades",
    "classical",
    "computers",
    "decor",
    "dresses",
    "earings",
    "fiction",
    "fragrances",
    "infants",
    "mens watch",
    "pants",
    "rock",
    "shirts",
    "womens watch",
];
const GENDERS: [&str; 2] = ["F", "M"];
const MARITAL: [&str; 5] = ["D", "M", "S", "U", "W"];
const EDUCATION: [&str; 7] = [
    "2 yr Degree",
    "4 yr Degree",
    "Advanced Degree",
    "College",
    "Primary",
    "Secondary",
    "Unknown",
];
const COUNTRIES: [&str; 12] = [
    "AUSTRALIA",
    "BRAZIL",
    "CANADA",
    "CHINA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "ITALY",
    "JAPAN",
    "MEXICO",
    "UK",
    "US",
];

/// The denormalized store_sales schema.
pub fn tpcds_schema() -> Schema {
    use ColumnType::*;
    Schema::from_pairs([
        ("ss_ticket_number", Int),
        ("ss_sold_date", Timestamp),
        ("d_year", Int),
        ("d_moy", Int),
        ("d_dom", Int),
        ("ss_sold_time", Int),
        ("ss_item_sk", Int),
        ("ss_quantity", Int),
        ("ss_wholesale_cost", Float),
        ("ss_list_price", Float),
        ("ss_sales_price", Float),
        ("ss_net_profit", Float),
        ("ss_store_sk", Int),
        ("s_store_name", Str),
        ("s_state", Str),
        ("i_category", Str),
        ("i_class", Str),
        ("i_brand_id", Int),
        ("i_manufact_id", Int),
        ("cd_gender", Str),
        ("cd_marital_status", Str),
        ("cd_education_status", Str),
        ("hd_dep_count", Int),
        ("c_birth_country", Str),
    ])
}

/// Generate the denormalized table.
pub fn tpcds_table(rows: usize, seed: u64) -> Table {
    let schema = Arc::new(tpcds_schema());
    let mut b = TableBuilder::new(Arc::clone(&schema));
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..rows {
        let sold_date = rng.random_range(0..DAYS);
        let d_year = 1998 + sold_date / 365;
        let day_of_year = sold_date % 365;
        let d_moy = day_of_year / 30 + 1; // 1..=13 clamped below
        let d_moy = d_moy.min(12);
        let d_dom = day_of_year % 28 + 1;
        let wholesale = rng.random_range(1.0..100.0);
        let list = wholesale * rng.random_range(1.0..2.5);
        let sales = list * rng.random_range(0.3..1.0);

        b.push_int(0, i as i64);
        b.push_int(1, sold_date);
        b.push_int(2, d_year);
        b.push_int(3, d_moy);
        b.push_int(4, d_dom);
        b.push_int(5, rng.random_range(0..86_400));
        b.push_int(6, rng.random_range(0..100_000));
        b.push_int(7, rng.random_range(1..=100));
        b.push_float(8, wholesale);
        b.push_float(9, list);
        b.push_float(10, sales);
        b.push_float(11, sales - wholesale);
        b.push_int(12, rng.random_range(0..12));
        b.push_str(13, STORE_NAMES[rng.random_range(0..STORE_NAMES.len())]);
        b.push_str(14, STATES[rng.random_range(0..STATES.len())]);
        b.push_str(15, CATEGORIES[rng.random_range(0..CATEGORIES.len())]);
        b.push_str(16, CLASSES[rng.random_range(0..CLASSES.len())]);
        b.push_int(17, rng.random_range(1_000_000..10_000_000));
        b.push_int(18, rng.random_range(1..=1000));
        b.push_str(19, GENDERS[rng.random_range(0..GENDERS.len())]);
        b.push_str(20, MARITAL[rng.random_range(0..MARITAL.len())]);
        b.push_str(21, EDUCATION[rng.random_range(0..EDUCATION.len())]);
        b.push_int(22, rng.random_range(0..=9));
        b.push_str(23, COUNTRIES[rng.random_range(0..COUNTRIES.len())]);
        b.finish_row();
    }
    b.finish()
}

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

/// The 17 store_sales-touching template analogues.
pub fn tpcds_templates(schema: &Arc<Schema>) -> Vec<Template> {
    let mut out = Vec::new();
    macro_rules! template {
        ($id:expr, $name:expr, |$rng:ident, $q:ident| $body:expr) => {{
            let sc = Arc::clone(schema);
            out.push(Template::new($id, $name, move |$rng| {
                let $q = QueryBuilder::new(&sc);
                $body
            }));
        }};
    }

    // q3: brand sales in a month — manufacturer + November
    template!(0, "q3", |rng, q| q
        .eq("d_moy", 11i64)
        .eq("i_manufact_id", rng.random_range(1..=1000i64))
        .build_predicate());

    // q7: demographic averages — gender/marital/education + year
    template!(1, "q7", |rng, q| q
        .eq("cd_gender", pick(rng, &GENDERS))
        .eq("cd_marital_status", pick(rng, &MARITAL))
        .eq("cd_education_status", pick(rng, &EDUCATION))
        .eq("d_year", rng.random_range(1998..=2002i64))
        .build_predicate());

    // q13: average store sales under demographic + price constraints
    template!(2, "q13", |rng, q| {
        let p = rng.random_range(50.0..150.0);
        q.eq("cd_marital_status", pick(rng, &MARITAL))
            .eq("cd_education_status", pick(rng, &EDUCATION))
            .between("ss_sales_price", p, p + 50.0)
            .build_predicate()
    });

    // q19: brand revenue for a month — manufacturer + month + year
    template!(3, "q19", |rng, q| q
        .eq("i_manufact_id", rng.random_range(1..=1000i64))
        .eq("d_moy", rng.random_range(1..=12i64))
        .eq("d_year", rng.random_range(1998..=2002i64))
        .build_predicate());

    // q27: demographic averages by state
    template!(4, "q27", |rng, q| q
        .eq("cd_gender", pick(rng, &GENDERS))
        .eq("cd_marital_status", pick(rng, &MARITAL))
        .eq("cd_education_status", pick(rng, &EDUCATION))
        .eq("d_year", rng.random_range(1998..=2002i64))
        .eq("s_state", pick(rng, &STATES))
        .build_predicate());

    // q28: list-price buckets — quantity band + list-price band
    template!(5, "q28", |rng, q| {
        let b = rng.random_range(0..=95i64);
        let p = rng.random_range(0.0..150.0);
        q.between("ss_quantity", b, b + 5)
            .between("ss_list_price", p, p + 10.0)
            .build_predicate()
    });

    // q34: dom 1–3 ("after-holiday rush") + dependents + store
    template!(6, "q34", |rng, q| q
        .between("d_dom", 1i64, 3i64)
        .eq("hd_dep_count", rng.random_range(0..=9i64))
        .eq("ss_store_sk", rng.random_range(0..12i64))
        .build_predicate());

    // q36: gross margin by class — year + states
    template!(7, "q36", |rng, q| {
        let s1 = pick(rng, &STATES);
        let s2 = pick(rng, &STATES);
        q.eq("d_year", rng.random_range(1998..=2002i64))
            .in_set("s_state", [s1, s2])
            .build_predicate()
    });

    // q46: customers with dom window + dependents
    template!(8, "q46", |rng, q| {
        let d = rng.random_range(1..=26i64);
        q.between("d_dom", d, d + 2)
            .eq("hd_dep_count", rng.random_range(0..=9i64))
            .build_predicate()
    });

    // q48: quantity under price + demographics
    template!(9, "q48", |rng, q| {
        let p = rng.random_range(50.0..150.0);
        q.between("ss_sales_price", p, p + 50.0)
            .eq("cd_marital_status", pick(rng, &MARITAL))
            .eq("cd_education_status", pick(rng, &EDUCATION))
            .build_predicate()
    });

    // q53: manufacturer revenue by quarter — brand class + month
    template!(10, "q53", |rng, q| q
        .eq("i_class", pick(rng, &CLASSES))
        .eq("d_moy", rng.random_range(1..=12i64))
        .build_predicate());

    // q68: dom 1–2 + store name
    template!(11, "q68", |rng, q| q
        .between("d_dom", 1i64, 2i64)
        .eq("s_store_name", pick(rng, &STORE_NAMES))
        .build_predicate());

    // q79: dom window + dependents + store
    template!(12, "q79", |rng, q| {
        let d = rng.random_range(1..=26i64);
        q.between("d_dom", d, d + 2)
            .eq("hd_dep_count", rng.random_range(0..=9i64))
            .eq("ss_store_sk", rng.random_range(0..12i64))
            .build_predicate()
    });

    // q88: store traffic by half-hour — time band + dependents
    template!(13, "q88", |rng, q| {
        let h = rng.random_range(8..=20i64);
        q.between("ss_sold_time", h * 3600, h * 3600 + 3599)
            .eq("hd_dep_count", rng.random_range(0..=9i64))
            .build_predicate()
    });

    // q89: category revenue — categories + year + month
    template!(14, "q89", |rng, q| {
        let c1 = pick(rng, &CATEGORIES);
        let c2 = pick(rng, &CATEGORIES);
        let c3 = pick(rng, &CATEGORIES);
        q.in_set("i_category", [c1, c2, c3])
            .eq("d_year", rng.random_range(1998..=2002i64))
            .eq("d_moy", rng.random_range(1..=12i64))
            .build_predicate()
    });

    // q96: time band + dependents + store
    template!(15, "q96", |rng, q| {
        let h = rng.random_range(8..=20i64);
        q.between("ss_sold_time", h * 3600, h * 3600 + 1800)
            .eq("hd_dep_count", rng.random_range(0..=9i64))
            .eq("ss_store_sk", rng.random_range(0..12i64))
            .build_predicate()
    });

    // q98: category revenue over a 30-day window
    template!(16, "q98", |rng, q| {
        let d = rng.random_range(0..DAYS - 30);
        q.eq("i_category", pick(rng, &CATEGORIES))
            .between("ss_sold_date", d, d + 30)
            .build_predicate()
    });

    out
}

/// Build the full TPC-DS bundle.
pub fn tpcds_bundle(rows: usize, seed: u64) -> DatasetBundle {
    let table = Arc::new(tpcds_table(rows, seed));
    let templates = tpcds_templates(table.schema());
    DatasetBundle {
        name: "TPC-DS",
        table,
        templates,
        default_sort_col: 0, // ss_ticket_number: arrival order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_derived_dates() {
        let t = tpcds_table(1000, 1);
        assert_eq!(t.num_columns(), 24);
        let s = t.schema();
        let (sd, y, m, dom) = (
            s.col("ss_sold_date").unwrap(),
            s.col("d_year").unwrap(),
            s.col("d_moy").unwrap(),
            s.col("d_dom").unwrap(),
        );
        for r in 0..t.num_rows() {
            let date = t.scalar(r, sd).as_int().unwrap();
            let year = t.scalar(r, y).as_int().unwrap();
            assert_eq!(year, 1998 + date / 365, "year consistent with date");
            let moy = t.scalar(r, m).as_int().unwrap();
            assert!((1..=12).contains(&moy));
            let d = t.scalar(r, dom).as_int().unwrap();
            assert!((1..=28).contains(&d));
        }
    }

    #[test]
    fn seventeen_templates_instantiable() {
        let t = tpcds_table(3000, 2);
        let templates = tpcds_templates(t.schema());
        assert_eq!(templates.len(), 17);
        let mut rng = StdRng::seed_from_u64(3);
        for tpl in &templates {
            let q = tpl.instantiate(&mut rng);
            let sel = t.selectivity(&q.predicate);
            assert!(
                (0.0..=0.6).contains(&sel),
                "{}: selectivity {sel}",
                tpl.name
            );
        }
    }

    #[test]
    fn price_correlations() {
        let t = tpcds_table(500, 4);
        let s = t.schema();
        let (w, l, sp) = (
            s.col("ss_wholesale_cost").unwrap(),
            s.col("ss_list_price").unwrap(),
            s.col("ss_sales_price").unwrap(),
        );
        for r in 0..t.num_rows() {
            let wholesale = t.scalar(r, w).as_float().unwrap();
            let list = t.scalar(r, l).as_float().unwrap();
            let sales = t.scalar(r, sp).as_float().unwrap();
            assert!(list >= wholesale);
            assert!(sales <= list);
        }
    }

    #[test]
    fn bundle_wiring() {
        let b = tpcds_bundle(500, 5);
        assert_eq!(b.name, "TPC-DS");
        assert_eq!(b.templates.len(), 17);
        assert_eq!(b.default_sort_col, 0);
    }
}
