//! A fixed-capacity, page-granular buffer pool over the disk tier's
//! partition files.
//!
//! Tiered serving reads column payloads from `gen-N/part-*.oreo` files in
//! fixed-size **pages** — the block-transfer unit of the external-memory
//! cost model. The pool caches pages keyed by `(generation, file, page)`
//! with CLOCK (second-chance) eviction, so a warm working set is served
//! from memory while cold reads hit the disk, and both are *counted*:
//! hit/miss/eviction totals plus cold (disk) and cached (pool) byte
//! volumes feed the cold-vs-warm α̂ split in the serving reports.
//!
//! Integration with generation pinning: every read takes the
//! [`Generation`] pin itself, so a page can only be fetched while its
//! backing directory is alive, and page keys carry the generation number,
//! so pages of a superseded generation can never satisfy a read against
//! its successor. [`BufferPool::invalidate_generation`] drops a retired
//! generation's pages eagerly (the engine calls it at publish time) so a
//! garbage-collected generation does not squat in the pool. Within one
//! multi-page fetch the touched frames are **pinned** against eviction and
//! unpinned when the range is assembled.

use crate::error::{Result, StorageError};
use crate::tiered::Generation;
use bytes::Bytes;
use oreo_obs::{EventKind, EventSink, NullSink};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default page size: 64 KiB, a common buffer-manager block size.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;

/// Default pool capacity: 64 MiB.
pub const DEFAULT_CAPACITY_BYTES: u64 = 64 * 1024 * 1024;

/// Sizing knobs for a [`BufferPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferPoolConfig {
    /// Total budget for resident pages, in bytes. The pool holds at most
    /// `max(1, capacity_bytes / page_bytes)` pages.
    pub capacity_bytes: u64,
    /// Page size in bytes (the unit of I/O and eviction).
    pub page_bytes: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: DEFAULT_CAPACITY_BYTES,
            page_bytes: DEFAULT_PAGE_BYTES,
        }
    }
}

impl BufferPoolConfig {
    /// A default-page-size pool with the given capacity in mebibytes.
    pub fn with_capacity_mb(mb: u64) -> Self {
        Self {
            capacity_bytes: mb * 1024 * 1024,
            ..Self::default()
        }
    }

    fn max_pages(&self) -> usize {
        ((self.capacity_bytes / self.page_bytes.max(1) as u64) as usize).max(1)
    }
}

/// Identity of one cached page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PageKey {
    /// Table (tenant) the page's generation belongs to — one shared pool
    /// can serve N tenants whose generation numbers collide.
    table: u32,
    /// On-disk generation number the page belongs to.
    generation: u64,
    /// Partition-file index within the generation.
    file: u32,
    /// Page number within the file (`offset / page_bytes`).
    page: u32,
}

impl PageKey {
    fn group(&self) -> (u32, u64) {
        (self.table, self.generation)
    }
}

#[derive(Debug)]
struct Frame {
    key: PageKey,
    data: Bytes,
    /// CLOCK reference bit: set on every hit, cleared by the sweep hand.
    referenced: bool,
    /// Readers currently assembling a range from this frame; pinned frames
    /// are never evicted.
    pins: u32,
}

#[derive(Debug, Default)]
struct PoolInner {
    map: HashMap<PageKey, usize>,
    frames: Vec<Option<Frame>>,
    free: Vec<usize>,
    hand: usize,
    /// Resident slots per `(table, generation)`, so invalidating a retired
    /// generation drops exactly its pages instead of scanning the whole
    /// capacity.
    groups: HashMap<(u32, u64), HashSet<usize>>,
}

impl PoolInner {
    /// Insert `key → slot` into both the page map and the group index.
    fn link(&mut self, key: PageKey, slot: usize) {
        self.map.insert(key, slot);
        self.groups.entry(key.group()).or_default().insert(slot);
    }

    /// Remove `key` (resident in `slot`) from both indexes.
    fn unlink(&mut self, key: &PageKey, slot: usize) {
        self.map.remove(key);
        if let Some(slots) = self.groups.get_mut(&key.group()) {
            slots.remove(&slot);
            if slots.is_empty() {
                self.groups.remove(&key.group());
            }
        }
    }
}

/// Counters snapshot of a [`BufferPool`] (monotone over the pool's life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Bytes read from disk (page-granular, the cold volume).
    pub cold_bytes: u64,
    /// Bytes served from resident pages (the cached volume).
    pub cached_bytes: u64,
    /// Pages invalidated because their generation was superseded.
    pub invalidated: u64,
    /// Invalidation *calls* ([`BufferPool::invalidate_generation`]
    /// invocations, whether or not any page was resident).
    pub invalidations: u64,
    /// Pages resident when the snapshot was taken.
    pub pages_resident: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Configured page size in bytes.
    pub page_bytes: u64,
}

impl PoolStats {
    /// Hits over total page requests (0.0 before any request).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Byte accounting of one ranged read through the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Page bytes fetched from disk for this read.
    pub cold_bytes: u64,
    /// Page bytes served from the pool for this read.
    pub cached_bytes: u64,
}

/// A fixed-capacity page cache over generation partition files with CLOCK
/// eviction. See the [module docs](self) for the design.
pub struct BufferPool {
    config: BufferPoolConfig,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    cold_bytes: AtomicU64,
    cached_bytes: AtomicU64,
    invalidated: AtomicU64,
    invalidations: AtomicU64,
    /// Eviction/invalidation event sink ([`NullSink`] unless the owner
    /// wired a journal in via [`BufferPool::with_event_sink`]).
    sink: Arc<dyn EventSink>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// An empty pool with the given sizing.
    pub fn new(config: BufferPoolConfig) -> Self {
        assert!(config.page_bytes > 0, "page size must be positive");
        Self {
            config,
            inner: Mutex::new(PoolInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cold_bytes: AtomicU64::new(0),
            cached_bytes: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            sink: Arc::new(NullSink),
        }
    }

    /// Route eviction and invalidation events into `sink` (builder form,
    /// applied before the pool is shared).
    pub fn with_event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// The pool's sizing configuration.
    pub fn config(&self) -> BufferPoolConfig {
        self.config
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        let pages_resident = {
            let inner = self.inner.lock().expect("buffer pool poisoned");
            inner.map.len() as u64
        };
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cold_bytes: self.cold_bytes.load(Ordering::Relaxed),
            cached_bytes: self.cached_bytes.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            pages_resident,
            capacity_bytes: self.config.capacity_bytes,
            page_bytes: self.config.page_bytes as u64,
        }
    }

    /// Read `offset..offset + len` of `path` (partition file `file` of the
    /// pinned `generation`) through the pool, returning the assembled bytes
    /// plus this read's cold/cached byte split.
    ///
    /// The generation pin in the signature is the safety contract: the
    /// backing file cannot be garbage-collected while the caller holds it,
    /// and the pages cached here are keyed under `generation.number()` so a
    /// later generation can never be served stale bytes.
    pub fn read_range(
        &self,
        generation: &Generation,
        file: u32,
        path: &Path,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<u8>, ReadStats)> {
        let mut out = vec![0u8; len as usize];
        let mut stats = ReadStats::default();
        if len == 0 {
            return Ok((out, stats));
        }
        let page_bytes = self.config.page_bytes as u64;
        let first = offset / page_bytes;
        let last = (offset + len - 1) / page_bytes;
        let mut reader: Option<fs::File> = None;
        let mut pinned: Vec<PageKey> = Vec::with_capacity((last - first + 1) as usize);
        let result = (|| -> Result<()> {
            for page in first..=last {
                let key = PageKey {
                    table: generation.table(),
                    generation: generation.number(),
                    file,
                    page: u32::try_from(page).map_err(|_| {
                        StorageError::Corrupt(format!("page index {page} exceeds u32"))
                    })?,
                };
                // A retired generation's pages were invalidated at publish
                // time; admitting new ones here would let them squat in
                // the pool until process exit (nothing invalidates the
                // generation a second time). In-flight readers of retired
                // generations read through without caching.
                let cacheable = !generation.is_retired();
                let (data, cold, inserted) = self.fetch_page(key, path, &mut reader, cacheable)?;
                if inserted {
                    pinned.push(key);
                }
                if cold {
                    stats.cold_bytes += data.len() as u64;
                } else {
                    stats.cached_bytes += data.len() as u64;
                }
                // Copy the overlap of this page into the output range.
                let page_start = page * page_bytes;
                let copy_from = offset.max(page_start);
                let copy_to = (offset + len).min(page_start + data.len() as u64);
                if copy_to <= copy_from {
                    return Err(StorageError::Corrupt(format!(
                        "page {page} of {} too short for range {offset}+{len}",
                        path.display()
                    )));
                }
                let src = &data[(copy_from - page_start) as usize..(copy_to - page_start) as usize];
                out[(copy_from - offset) as usize..(copy_to - offset) as usize]
                    .copy_from_slice(src);
            }
            Ok(())
        })();
        // Unpin everything we touched, whether or not assembly succeeded,
        // then settle back under capacity (a single read larger than the
        // whole pool over-commits transiently; at rest the bound holds).
        {
            let mut inner = self.inner.lock().expect("buffer pool poisoned");
            for key in &pinned {
                if let Some(&slot) = inner.map.get(key) {
                    if let Some(frame) = inner.frames[slot].as_mut() {
                        frame.pins = frame.pins.saturating_sub(1);
                    }
                }
            }
            self.enforce_capacity(&mut inner);
        }
        result?;
        self.cold_bytes
            .fetch_add(stats.cold_bytes, Ordering::Relaxed);
        self.cached_bytes
            .fetch_add(stats.cached_bytes, Ordering::Relaxed);
        Ok((out, stats))
    }

    /// Fetch one page, through the cache or from disk. The returned flags
    /// are `(data, cold, pinned)`: `cold` is `true` when the page came
    /// from disk (a miss); `pinned` is `true` when the page sits in a
    /// frame the caller must unpin (`cacheable: false` misses read
    /// through without touching the cache).
    fn fetch_page(
        &self,
        key: PageKey,
        path: &Path,
        reader: &mut Option<fs::File>,
        cacheable: bool,
    ) -> Result<(Bytes, bool, bool)> {
        // Fast path: cache hit.
        {
            let mut inner = self.inner.lock().expect("buffer pool poisoned");
            if let Some(&slot) = inner.map.get(&key) {
                let frame = inner.frames[slot].as_mut().expect("mapped frame");
                frame.referenced = true;
                frame.pins += 1;
                let data = frame.data.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((data, false, true));
            }
        }
        // Miss: read the page from disk without holding the pool lock.
        let file = match reader {
            Some(f) => f,
            None => {
                *reader = Some(fs::File::open(path)?);
                reader.as_mut().expect("just set")
            }
        };
        let page_bytes = self.config.page_bytes;
        file.seek(SeekFrom::Start(key.page as u64 * page_bytes as u64))?;
        let mut data = vec![0u8; page_bytes];
        let mut filled = 0;
        while filled < page_bytes {
            let n = file.read(&mut data[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        data.truncate(filled);
        let data = Bytes::from(data);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if !cacheable {
            return Ok((data, true, false));
        }

        // Insert (another thread may have raced us; keep whichever landed).
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        if let Some(&slot) = inner.map.get(&key) {
            let frame = inner.frames[slot].as_mut().expect("mapped frame");
            frame.referenced = true;
            frame.pins += 1;
            return Ok((frame.data.clone(), true, true));
        }
        let slot = self.allocate_slot(&mut inner);
        inner.link(key, slot);
        inner.frames[slot] = Some(Frame {
            key,
            data: data.clone(),
            referenced: true,
            pins: 1,
        });
        Ok((data, true, true))
    }

    /// Find a slot for a new frame: reuse a free slot, evict with CLOCK, or
    /// (when every frame is pinned) grow past capacity rather than fail.
    fn allocate_slot(&self, inner: &mut PoolInner) -> usize {
        if let Some(slot) = inner.free.pop() {
            return slot;
        }
        if inner.frames.len() < self.config.max_pages() {
            inner.frames.push(None);
            return inner.frames.len() - 1;
        }
        // CLOCK sweep: clear reference bits for one revolution; evict the
        // first unreferenced, unpinned frame. Two revolutions guarantee a
        // victim unless everything is pinned.
        let n = inner.frames.len();
        for _ in 0..2 * n {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            match inner.frames[slot].as_mut() {
                Some(frame) if frame.pins > 0 => continue,
                Some(frame) if frame.referenced => frame.referenced = false,
                Some(frame) => {
                    let key = frame.key;
                    inner.unlink(&key, slot);
                    inner.frames[slot] = None;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if self.sink.enabled() {
                        self.sink.emit(EventKind::PoolEvicted {
                            generation: key.generation,
                            file: key.file,
                            page: key.page,
                        });
                    }
                    return slot;
                }
                None => return slot,
            }
        }
        // Everything pinned (capacity smaller than one in-flight read):
        // over-commit rather than deadlock.
        inner.frames.push(None);
        inner.frames.len() - 1
    }

    /// Evict unpinned frames until the resident count is back within the
    /// configured page budget (CLOCK order). Frames pinned by concurrent
    /// reads are skipped; they are re-checked by whichever read unpins
    /// them last.
    fn enforce_capacity(&self, inner: &mut PoolInner) {
        let max = self.config.max_pages();
        let n = inner.frames.len();
        if n == 0 {
            return;
        }
        let mut sweeps = 0;
        while inner.map.len() > max && sweeps < 2 * n {
            sweeps += 1;
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            match inner.frames[slot].as_mut() {
                Some(frame) if frame.pins > 0 => continue,
                Some(frame) if frame.referenced => frame.referenced = false,
                Some(frame) => {
                    let key = frame.key;
                    inner.unlink(&key, slot);
                    inner.frames[slot] = None;
                    inner.free.push(slot);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if self.sink.enabled() {
                        self.sink.emit(EventKind::PoolEvicted {
                            generation: key.generation,
                            file: key.file,
                            page: key.page,
                        });
                    }
                }
                None => continue,
            }
        }
    }

    /// Drop every cached page of `table`'s `generation` (called when the
    /// generation is superseded, so retired layouts stop occupying pool
    /// capacity and a GC'd directory leaves nothing behind). Pages pinned
    /// by in-flight reads stay alive through their readers' `Bytes`
    /// handles; the frames themselves are removed.
    ///
    /// Cost is proportional to the pages actually dropped (the pool keeps a
    /// per-`(table, generation)` slot index), not to the pool's capacity —
    /// a multi-tenant engine invalidates on every per-tenant publish, so an
    /// O(capacity) scan here would tax every tenant for each one's churn.
    pub fn invalidate_generation(&self, table: u32, generation: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let Some(slots) = inner.groups.remove(&(table, generation)) else {
            return;
        };
        let mut pages = 0u64;
        for slot in slots {
            if let Some(frame) = inner.frames[slot].take() {
                inner.map.remove(&frame.key);
                inner.free.push(slot);
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                pages += 1;
            }
        }
        if pages > 0 && self.sink.enabled() {
            self.sink
                .emit(EventKind::PoolInvalidated { generation, pages });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::TableSnapshot;
    use crate::table::{Table, TableBuilder};
    use crate::tiered::TieredStore;
    use oreo_query::{Atom, ColumnType, Predicate, Scalar, Schema};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oreo-bufpool-{tag}-{}-{}",
            std::process::id(),
            rand::random::<u32>()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("tag", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::from(["a", "b", "c", "d"][(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    fn snap(t: &Table, k: usize) -> TableSnapshot {
        let n = t.num_rows() as u32;
        let per = n.div_ceil(k as u32).max(1);
        let assignment: Vec<u32> = (0..n).map(|r| (r / per).min(k as u32 - 1)).collect();
        TableSnapshot::build(t, &assignment, k, 0, "range")
    }

    fn between(lo: i64, hi: i64) -> Predicate {
        Predicate::new(vec![Atom::Between {
            col: 0,
            low: Scalar::Int(lo),
            high: Scalar::Int(hi),
        }])
    }

    #[test]
    fn hits_and_misses_are_counted_and_rereads_hit() {
        let t = table(2_000);
        let root = tmproot("counters");
        let mut s = snap(&t, 4);
        let (store, _) = TieredStore::create(&root, &mut s).unwrap();
        let pool = BufferPool::new(BufferPoolConfig {
            capacity_bytes: 1 << 20,
            page_bytes: 256,
        });
        let pred = between(0, 499);
        let cold = s.scan_pooled(&pred, &pool).unwrap();
        assert!(cold.io_cold_bytes > 0, "first scan reads from disk");
        assert_eq!(cold.io_cached_bytes, 0);
        let warm = s.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(warm.matches, cold.matches);
        assert_eq!(warm.io_cold_bytes, 0, "second scan is fully cached");
        assert!(warm.io_cached_bytes > 0);
        let stats = pool.stats();
        assert!(stats.hits > 0 && stats.misses > 0);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
        assert_eq!(stats.evictions, 0, "capacity fits the working set");
        // matches agree with the in-memory scan
        assert_eq!(cold.matches, s.scan(&pred).matches);
        drop(store);
        drop(s);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tiny_capacity_evicts_with_clock_and_stays_correct() {
        let t = table(4_000);
        let root = tmproot("evict");
        let mut s = snap(&t, 4);
        let (store, _) = TieredStore::create(&root, &mut s).unwrap();
        // 2 pages of 128 bytes: far smaller than any column payload, so
        // every multi-page read over-commits, evicts, and re-reads.
        let pool = BufferPool::new(BufferPoolConfig {
            capacity_bytes: 256,
            page_bytes: 128,
        });
        for lo in [0i64, 1_000, 2_000, 0, 1_000] {
            let pred = between(lo, lo + 900);
            let scan = s.scan_pooled(&pred, &pool).unwrap();
            assert_eq!(scan.matches, s.scan(&pred).matches, "lo={lo}");
        }
        let stats = pool.stats();
        assert!(stats.evictions > 0, "tiny pool must evict");
        assert!(
            stats.pages_resident * stats.page_bytes <= stats.capacity_bytes,
            "pool settled back under capacity: {} pages of {}",
            stats.pages_resident,
            stats.page_bytes
        );
        drop(store);
        drop(s);
        fs::remove_dir_all(&root).unwrap();
    }

    /// The satellite's GC-safety test: pages of a superseded generation are
    /// never served to its successor (keys carry the generation number) and
    /// are dropped from the pool when the generation is invalidated, so a
    /// garbage-collected directory leaves nothing behind.
    #[test]
    fn superseded_generation_pages_never_serve_after_gc() {
        let t = table(3_000);
        let root = tmproot("gc");
        let mut s1 = snap(&t, 2);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        let pool = BufferPool::new(BufferPoolConfig {
            capacity_bytes: 1 << 20,
            page_bytes: 512,
        });
        let pred = between(100, 2_500);
        let expected = s1.scan(&pred).matches;
        let g1 = s1.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(g1.matches, expected);
        assert!(pool.stats().pages_resident > 0);

        // Publish generation 2 with a different partitioning, invalidate
        // gen 1's pages (what the engine does at publish), then GC gen 1.
        let mut s2 = snap(&t, 3);
        let receipt = store.publish(&mut s2).unwrap();
        pool.invalidate_generation(0, receipt.generation - 1);
        assert_eq!(pool.stats().pages_resident, 0, "gen-1 pages dropped");
        assert!(pool.stats().invalidated > 0);
        assert_eq!(pool.stats().invalidations, 1);
        // An in-flight reader of the retired generation reads through
        // without re-admitting its pages — nothing invalidates gen 1 a
        // second time, so re-admission would squat until process exit.
        let retired = s1.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(retired.matches, expected);
        assert!(retired.io_cold_bytes > 0);
        assert_eq!(
            pool.stats().pages_resident,
            0,
            "retired generation must not re-enter the pool"
        );
        drop(s1); // last pin: gen-000001 is garbage-collected
        assert!(!root.join("gen-000001").exists());

        // Scans against gen 2 must miss (cold) and return gen 2's truth —
        // nothing cached under gen 1 can satisfy them.
        let g2 = s2.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(g2.matches, expected);
        assert!(g2.io_cold_bytes > 0, "gen 2 pages were not pre-cached");
        drop(store);
        drop(s2);
        fs::remove_dir_all(&root).unwrap();
    }

    /// Two tenants share one pool; their generation numbers collide (both
    /// serve gen 1) yet their pages never mix, and invalidating one
    /// tenant's generation drops exactly that tenant's pages.
    #[test]
    fn shared_pool_keys_pages_per_table_and_invalidates_per_tenant() {
        let t = table(2_000);
        let root_a = tmproot("tenant-a");
        let root_b = tmproot("tenant-b");
        let mut sa = snap(&t, 2);
        let mut sb = snap(&t, 2);
        let (store_a, _) = TieredStore::create_for_table(&root_a, 0, &mut sa).unwrap();
        let (store_b, _) = TieredStore::create_for_table(&root_b, 1, &mut sb).unwrap();
        let pool = BufferPool::new(BufferPoolConfig {
            capacity_bytes: 1 << 20,
            page_bytes: 256,
        });
        let pred = between(0, 1_999);
        let expected = sa.scan(&pred).matches;
        sa.scan_pooled(&pred, &pool).unwrap();
        sb.scan_pooled(&pred, &pool).unwrap();
        let resident_both = pool.stats().pages_resident;
        assert!(resident_both > 0);

        // Drop tenant 1's gen 1: tenant 0's identically-numbered pages stay.
        pool.invalidate_generation(1, 1);
        let after = pool.stats();
        assert!(after.pages_resident > 0, "tenant 0's pages survive");
        assert!(after.pages_resident < resident_both);
        assert_eq!(after.invalidations, 1);
        let warm = sa.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(warm.matches, expected);
        assert_eq!(warm.io_cold_bytes, 0, "tenant 0 is still fully cached");
        let cold = sb.scan_pooled(&pred, &pool).unwrap();
        assert_eq!(cold.matches, expected);
        assert!(cold.io_cold_bytes > 0, "tenant 1 was invalidated");
        // an invalidation with nothing resident still counts the call
        pool.invalidate_generation(9, 9);
        assert_eq!(pool.stats().invalidations, 2);
        drop(store_a);
        drop(store_b);
        drop(sa);
        drop(sb);
        fs::remove_dir_all(&root_a).unwrap();
        fs::remove_dir_all(&root_b).unwrap();
    }

    #[test]
    fn memory_only_snapshot_refuses_pooled_scan() {
        let t = table(100);
        let s = snap(&t, 2);
        let pool = BufferPool::new(BufferPoolConfig::default());
        let err = s.scan_pooled(&between(0, 10), &pool).unwrap_err();
        assert!(err.to_string().contains("no on-disk generation"), "{err}");
    }
}
