//! Storage-layer error type.

use crate::encode::DecodeError;
use std::fmt;
use std::io;

/// Errors from the on-disk store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file exists but its contents are invalid (bad magic, checksum
    /// mismatch, truncated or malformed blocks).
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt partition file: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<DecodeError> for StorageError {
    fn from(e: DecodeError) -> Self {
        StorageError::Corrupt(e.0)
    }
}

/// Storage result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
