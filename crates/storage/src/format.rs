//! On-disk partition file format.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "OREOPART" (8B) | version u16 LE | ncols u16 LE        |
//! | nrows u64 LE                                                 |
//! | column 0: tag u8 | payload_len u64 LE | payload bytes        |
//! | column 1: ...                                                |
//! | fnv1a-64 checksum of everything above (u64 LE)               |
//! +--------------------------------------------------------------+
//! ```
//!
//! Column payloads use the compressed encodings from [`crate::encode`]:
//! int/timestamp → delta-zigzag varints; float → raw LE; string → dictionary
//! (string list) + RLE-or-bitpacked codes.

use crate::column::{Column, DictColumn};
use crate::encode::*;
use crate::error::{Result, StorageError};
use crate::table::Table;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use oreo_query::Schema;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"OREOPART";
const VERSION: u16 = 1;

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;

/// Serialize a table (one partition's rows) into the on-disk byte format.
pub fn encode_partition(table: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(table.memory_bytes() / 2 + 64);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(table.num_columns() as u16);
    buf.put_u64_le(table.num_rows() as u64);
    for column in table.columns() {
        let mut payload = BytesMut::new();
        let tag = match column {
            Column::Int(values) => {
                encode_i64_block(&mut payload, values);
                TAG_INT
            }
            Column::Float(values) => {
                encode_f64_block(&mut payload, values);
                TAG_FLOAT
            }
            Column::Str(dict) => {
                encode_str_list(&mut payload, dict.dict());
                encode_u32_block(&mut payload, dict.codes());
                TAG_STR
            }
        };
        buf.put_u8(tag);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Parse bytes produced by [`encode_partition`] back into a table.
/// The schema is supplied externally (it is store-level, not per-file).
pub fn decode_partition(schema: &Arc<Schema>, bytes: &[u8]) -> Result<Table> {
    if bytes.len() < MAGIC.len() + 2 + 2 + 8 + 8 {
        return Err(StorageError::Corrupt("file shorter than header".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(StorageError::Corrupt("checksum mismatch".into()));
    }

    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != schema.len() {
        return Err(StorageError::Corrupt(format!(
            "file has {ncols} columns, schema expects {}",
            schema.len()
        )));
    }
    let nrows = buf.get_u64_le() as usize;

    let mut columns = Vec::with_capacity(ncols);
    for col in 0..ncols {
        if buf.remaining() < 9 {
            return Err(StorageError::Corrupt(format!(
                "truncated header for column {col}"
            )));
        }
        let tag = buf.get_u8();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(StorageError::Corrupt(format!(
                "truncated payload for column {col}"
            )));
        }
        let mut payload = &buf[..len];
        let column = match tag {
            TAG_INT => Column::Int(decode_i64_block(&mut payload)?),
            TAG_FLOAT => Column::Float(decode_f64_block(&mut payload)?),
            TAG_STR => {
                let dict = decode_str_list(&mut payload)?;
                let codes = decode_u32_block(&mut payload)?;
                if codes.iter().any(|&c| c as usize >= dict.len()) {
                    return Err(StorageError::Corrupt(format!(
                        "dictionary code out of range in column {col}"
                    )));
                }
                Column::Str(DictColumn::from_parts(dict, codes))
            }
            other => return Err(StorageError::Corrupt(format!("unknown column tag {other}"))),
        };
        if column.len() != nrows {
            return Err(StorageError::Corrupt(format!(
                "column {col} has {} rows, header says {nrows}",
                column.len()
            )));
        }
        buf.advance(len);
        columns.push(column);
    }
    Ok(Table::new(Arc::clone(schema), columns))
}

/// Write a partition file (buffered, durably synced) and return the number
/// of bytes written. Reorganization in real systems persists its output;
/// the fsync is part of the physical reorganization cost Table I measures.
pub fn write_partition(path: &Path, table: &Table) -> Result<u64> {
    let bytes = encode_partition(table);
    let file = fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&bytes)?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| StorageError::Io(e.into_error()))?
        .sync_all()?;
    Ok(bytes.len() as u64)
}

/// Read a partition file written by [`write_partition`].
pub fn read_partition(path: &Path, schema: &Arc<Schema>) -> Result<Table> {
    let mut file = fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    decode_partition(schema, &bytes)
}

/// Column-projected read: decode only `cols` (any order, deduplicated by
/// the caller), skipping other payloads via their length prefixes — the
/// column pruning every columnar engine performs. Returns the partition's
/// row count plus `(column id, decoded column)` pairs.
pub fn read_partition_projected(
    path: &Path,
    schema: &Arc<Schema>,
    cols: &[usize],
) -> Result<(usize, Vec<(usize, Column)>)> {
    let mut file = fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    decode_partition_projected(schema, &bytes, cols)
}

/// In-memory variant of [`read_partition_projected`].
pub fn decode_partition_projected(
    schema: &Arc<Schema>,
    bytes: &[u8],
    cols: &[usize],
) -> Result<(usize, Vec<(usize, Column)>)> {
    if bytes.len() < MAGIC.len() + 2 + 2 + 8 + 8 {
        return Err(StorageError::Corrupt("file shorter than header".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(StorageError::Corrupt("checksum mismatch".into()));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != schema.len() {
        return Err(StorageError::Corrupt(format!(
            "file has {ncols} columns, schema expects {}",
            schema.len()
        )));
    }
    let nrows = buf.get_u64_le() as usize;

    let mut out = Vec::with_capacity(cols.len());
    for col in 0..ncols {
        if buf.remaining() < 9 {
            return Err(StorageError::Corrupt(format!(
                "truncated header for column {col}"
            )));
        }
        let tag = buf.get_u8();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(StorageError::Corrupt(format!(
                "truncated payload for column {col}"
            )));
        }
        if cols.contains(&col) {
            let mut payload = &buf[..len];
            let column = match tag {
                TAG_INT => Column::Int(decode_i64_block(&mut payload)?),
                TAG_FLOAT => Column::Float(decode_f64_block(&mut payload)?),
                TAG_STR => {
                    let dict = decode_str_list(&mut payload)?;
                    let codes = decode_u32_block(&mut payload)?;
                    if codes.iter().any(|&c| c as usize >= dict.len()) {
                        return Err(StorageError::Corrupt(format!(
                            "dictionary code out of range in column {col}"
                        )));
                    }
                    Column::Str(DictColumn::from_parts(dict, codes))
                }
                other => return Err(StorageError::Corrupt(format!("unknown column tag {other}"))),
            };
            if column.len() != nrows {
                return Err(StorageError::Corrupt(format!(
                    "column {col} has {} rows, header says {nrows}",
                    column.len()
                )));
            }
            out.push((col, column));
        }
        buf.advance(len);
    }
    Ok((nrows, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use oreo_query::{ColumnType, Scalar};

    fn sample_table() -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("qty", ColumnType::Int),
            ("price", ColumnType::Float),
            ("region", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..500i64 {
            b.push_row(&[
                Scalar::Int(1_000_000 + i),
                Scalar::Int(i % 50),
                Scalar::Float((i as f64).sin()),
                Scalar::from(["eu", "na", "apac", "latam"][(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        let back = decode_partition(t.schema(), &bytes).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for row in [0usize, 99, 499] {
            for col in 0..t.num_columns() {
                assert_eq!(back.scalar(row, col), t.scalar(row, col), "({row},{col})");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("oreo-fmt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p0.oreo");
        let written = write_partition(&path, &t).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        let back = read_partition(&path, t.schema()).unwrap();
        assert_eq!(back.num_rows(), 500);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let t = sample_table();
        let mut bytes = encode_partition(&t).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = decode_partition(t.schema(), &bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        for cut in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_partition(t.schema(), &bytes[..cut]).unwrap_err();
            assert!(matches!(err, StorageError::Corrupt(_)));
        }
    }

    #[test]
    fn bad_magic_detected() {
        let t = sample_table();
        let mut bytes = encode_partition(&t).to_vec();
        bytes[0] = b'X';
        // fix up the checksum so only the magic is wrong
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_partition(t.schema(), &bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn schema_mismatch_detected() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        let other = Arc::new(Schema::from_pairs([("only", ColumnType::Int)]));
        let err = decode_partition(&other, &bytes).unwrap_err();
        assert!(err.to_string().contains("columns"), "{err}");
    }

    #[test]
    fn empty_table_round_trips() {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let t = TableBuilder::new(Arc::clone(&s)).finish();
        let bytes = encode_partition(&t);
        let back = decode_partition(&s, &bytes).unwrap();
        assert_eq!(back.num_rows(), 0);
    }

    #[test]
    fn compression_beats_raw_on_clustered_data() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        // raw size: 500 rows × (8 + 8 + 8 + ~4) ≈ 14 kB
        assert!(
            bytes.len() < t.memory_bytes(),
            "encoded {} >= raw {}",
            bytes.len(),
            t.memory_bytes()
        );
    }
}
