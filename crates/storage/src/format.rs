//! On-disk partition file format.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "OREOPART" (8B) | version u16 LE | ncols u16 LE        |
//! | nrows u64 LE                                                 |
//! | column 0: tag u8 | payload_len u64 LE | payload bytes        |
//! | column 1: ...                                                |
//! | footer:  ncols u16 LE | nrows u64 LE                         |
//! |   per column: tag u8 | offset u64 | len u64 | fnv1a u64      |
//! |   pruning metadata (see [`crate::partition::encode_metadata`])|
//! | footer fnv1a u64 | footer offset u64 | "OREOFTR2" (8B)       |
//! +--------------------------------------------------------------+
//! ```
//!
//! Column payloads use the compressed encodings from [`crate::encode`]:
//! int/timestamp → delta-zigzag varints; float → raw LE; string → dictionary
//! (string list) + RLE-or-bitpacked codes.
//!
//! Version 2 (above) ends in a self-describing **footer**: per-column
//! payload extents with their own checksums — the *page index* pooled scans
//! use to fetch only the byte ranges a predicate touches — plus the
//! partition's pruning metadata, so [`crate::DiskStore::open`] can reopen a
//! store from a few footer bytes per file instead of decoding every
//! partition. Version 1 files (no footer, one whole-file checksum) are
//! still readable; [`read_partition_footer`] reports them as `None` and
//! callers fall back to a full decode.

use crate::column::{Column, DictColumn};
use crate::encode::*;
use crate::error::{Result, StorageError};
use crate::partition::{build_metadata, decode_metadata, encode_metadata, PartitionMetadata};
use crate::table::Table;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use oreo_query::Schema;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"OREOPART";
const VERSION_V1: u16 = 1;
const VERSION: u16 = 2;
const FOOTER_MAGIC: &[u8; 8] = b"OREOFTR2";
/// Fixed-size header: magic + version + ncols + nrows.
const HEADER_LEN: usize = 8 + 2 + 2 + 8;
/// Fixed-size tail: footer checksum + footer offset + footer magic.
const TAIL_LEN: usize = 8 + 8 + 8;
/// Per-column in-stream prefix: tag byte + payload length.
const COL_PREFIX: u64 = 1 + 8;

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;

/// Count of partition-payload decodes (full or projected) performed by this
/// process. Diagnostic only: restart-path tests assert that opening a
/// footer-indexed store performs **zero** decodes — the fix for the
/// decode-everything-on-open behavior flagged in the ROADMAP.
static DECODES: AtomicU64 = AtomicU64::new(0);

/// Total partition-payload decodes ([`decode_partition`] +
/// [`decode_partition_projected`]) since process start.
pub fn partition_decodes() -> u64 {
    DECODES.load(Ordering::Relaxed)
}

/// Location of one column's encoded payload inside a partition file: the
/// page-index entry a pooled scan uses to fetch only the byte ranges (and
/// hence pages) its predicate touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnExtent {
    /// Column encoding tag.
    pub tag: u8,
    /// Absolute byte offset of the payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

impl ColumnExtent {
    /// Decode this column from its payload bytes (as fetched from
    /// `offset..offset + len` of the file), verifying length, checksum, and
    /// the expected row count. `col` only labels errors.
    pub fn decode(&self, payload: &[u8], nrows: usize, col: usize) -> Result<Column> {
        self.decode_inner(payload, nrows, col, true)
    }

    /// [`ColumnExtent::decode`] without the checksum pass, for payloads
    /// whose bytes already crossed the disk→memory trust boundary under a
    /// checksum — e.g. a pooled read served entirely from cached pages.
    /// Length and row-count validation still run.
    pub fn decode_trusted(&self, payload: &[u8], nrows: usize, col: usize) -> Result<Column> {
        self.decode_inner(payload, nrows, col, false)
    }

    fn decode_inner(
        &self,
        payload: &[u8],
        nrows: usize,
        col: usize,
        verify: bool,
    ) -> Result<Column> {
        if payload.len() as u64 != self.len {
            return Err(StorageError::Corrupt(format!(
                "column {col}: fetched {} payload bytes, extent says {}",
                payload.len(),
                self.len
            )));
        }
        if verify && fnv1a(payload) != self.checksum {
            return Err(StorageError::Corrupt(format!(
                "column {col}: payload checksum mismatch"
            )));
        }
        let mut buf = payload;
        let column = decode_column_payload(self.tag, &mut buf, col)?;
        if column.len() != nrows {
            return Err(StorageError::Corrupt(format!(
                "column {col} has {} rows, expected {nrows}",
                column.len()
            )));
        }
        Ok(column)
    }
}

/// The self-describing tail of a version-2 partition file: row count,
/// per-column payload extents (the page index), and the pruning metadata
/// built at write time — everything a store needs to reopen without
/// touching column data.
#[derive(Clone, Debug)]
pub struct PartitionFooter {
    /// Rows in the partition.
    pub nrows: u64,
    /// Per-column payload extents, indexed by column id.
    pub columns: Vec<ColumnExtent>,
    /// The partition's pruning metadata (ranges + distinct sets).
    pub meta: PartitionMetadata,
}

/// Serialize a table (one partition's rows) with explicit pruning metadata
/// (the footer copy), returning the encoded bytes and the footer that was
/// embedded — the writer's page index, so callers need not re-read it.
pub fn encode_partition_with_meta(
    table: &Table,
    meta: &PartitionMetadata,
) -> (Bytes, PartitionFooter) {
    let mut buf = BytesMut::with_capacity(table.memory_bytes() / 2 + 256);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(table.num_columns() as u16);
    buf.put_u64_le(table.num_rows() as u64);
    let mut extents = Vec::with_capacity(table.num_columns());
    for column in table.columns() {
        let mut payload = BytesMut::new();
        let tag = match column {
            Column::Int(values) => {
                encode_i64_block(&mut payload, values);
                TAG_INT
            }
            Column::Float(values) => {
                encode_f64_block(&mut payload, values);
                TAG_FLOAT
            }
            Column::Str(dict) => {
                encode_str_list(&mut payload, dict.dict());
                encode_u32_block(&mut payload, dict.codes());
                TAG_STR
            }
        };
        buf.put_u8(tag);
        buf.put_u64_le(payload.len() as u64);
        extents.push(ColumnExtent {
            tag,
            offset: buf.len() as u64,
            len: payload.len() as u64,
            checksum: fnv1a(&payload),
        });
        buf.put_slice(&payload);
    }
    let footer_off = buf.len() as u64;
    let mut footer = BytesMut::new();
    footer.put_u16_le(table.num_columns() as u16);
    footer.put_u64_le(table.num_rows() as u64);
    for e in &extents {
        footer.put_u8(e.tag);
        footer.put_u64_le(e.offset);
        footer.put_u64_le(e.len);
        footer.put_u64_le(e.checksum);
    }
    encode_metadata(&mut footer, meta);
    let footer_sum = fnv1a(&footer);
    buf.put_slice(&footer);
    buf.put_u64_le(footer_sum);
    buf.put_u64_le(footer_off);
    buf.put_slice(FOOTER_MAGIC);
    (
        buf.freeze(),
        PartitionFooter {
            nrows: table.num_rows() as u64,
            columns: extents,
            meta: meta.clone(),
        },
    )
}

/// Serialize a table (one partition's rows) into the on-disk byte format,
/// building the footer's pruning metadata from the rows themselves.
pub fn encode_partition(table: &Table) -> Bytes {
    let meta = build_metadata(table, &vec![0; table.num_rows()], 1)
        .pop()
        .expect("k=1 metadata");
    encode_partition_with_meta(table, &meta).0
}

/// Serialize in the legacy version-1 layout (no footer, one whole-file
/// checksum). Kept only so compatibility tests can fabricate files written
/// before the page index existed; new files are always version 2.
pub fn encode_partition_v1(table: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(table.memory_bytes() / 2 + 64);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_V1);
    buf.put_u16_le(table.num_columns() as u16);
    buf.put_u64_le(table.num_rows() as u64);
    for column in table.columns() {
        let mut payload = BytesMut::new();
        let tag = match column {
            Column::Int(values) => {
                encode_i64_block(&mut payload, values);
                TAG_INT
            }
            Column::Float(values) => {
                encode_f64_block(&mut payload, values);
                TAG_FLOAT
            }
            Column::Str(dict) => {
                encode_str_list(&mut payload, dict.dict());
                encode_u32_block(&mut payload, dict.codes());
                TAG_STR
            }
        };
        buf.put_u8(tag);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Whether `bytes` carries a version-2 footer (trailing footer magic).
fn has_footer(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN + TAIL_LEN && &bytes[bytes.len() - 8..] == FOOTER_MAGIC
}

/// Decode the shared per-column payload encoding. Advances `buf` past the
/// payload it consumes; `col` only labels errors.
fn decode_column_payload(tag: u8, buf: &mut &[u8], col: usize) -> Result<Column> {
    match tag {
        TAG_INT => Ok(Column::Int(decode_i64_block(buf)?)),
        TAG_FLOAT => Ok(Column::Float(decode_f64_block(buf)?)),
        TAG_STR => {
            let dict = decode_str_list(buf)?;
            let codes = decode_u32_block(buf)?;
            if codes.iter().any(|&c| c as usize >= dict.len()) {
                return Err(StorageError::Corrupt(format!(
                    "dictionary code out of range in column {col}"
                )));
            }
            Ok(Column::Str(DictColumn::from_parts(dict, codes)))
        }
        other => Err(StorageError::Corrupt(format!("unknown column tag {other}"))),
    }
}

/// Parse and checksum-verify a footer body (`bytes[footer_off..tail]`).
/// `footer_off` bounds the payload extents: every extent must lie between
/// the header and the footer.
fn parse_footer_body(body: &[u8], footer_off: u64) -> Result<PartitionFooter> {
    let mut buf = body;
    if buf.remaining() < 2 + 8 {
        return Err(StorageError::Corrupt("footer shorter than counts".into()));
    }
    let ncols = buf.get_u16_le() as usize;
    let nrows = buf.get_u64_le();
    let mut columns = Vec::with_capacity(ncols);
    for col in 0..ncols {
        if buf.remaining() < 1 + 8 + 8 + 8 {
            return Err(StorageError::Corrupt(format!(
                "footer truncated at column {col}"
            )));
        }
        let extent = ColumnExtent {
            tag: buf.get_u8(),
            offset: buf.get_u64_le(),
            len: buf.get_u64_le(),
            checksum: buf.get_u64_le(),
        };
        let end = extent
            .offset
            .checked_add(extent.len)
            .ok_or_else(|| StorageError::Corrupt("extent overflows".into()))?;
        if extent.offset < HEADER_LEN as u64 + COL_PREFIX || end > footer_off {
            return Err(StorageError::Corrupt(format!(
                "column {col} extent {}..{end} outside data region",
                extent.offset
            )));
        }
        columns.push(extent);
    }
    let meta = decode_metadata(&mut buf)?;
    if buf.has_remaining() {
        return Err(StorageError::Corrupt("trailing bytes after footer".into()));
    }
    if meta.columns.len() != ncols {
        return Err(StorageError::Corrupt(format!(
            "footer metadata covers {} columns, directory has {ncols}",
            meta.columns.len()
        )));
    }
    Ok(PartitionFooter {
        nrows,
        columns,
        meta,
    })
}

/// Locate, checksum-verify, and parse the footer of an in-memory v2 file.
fn parse_footer(bytes: &[u8]) -> Result<(PartitionFooter, u64)> {
    debug_assert!(has_footer(bytes));
    let tail = &bytes[bytes.len() - TAIL_LEN..];
    let stored_sum = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
    let footer_off = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
    if footer_off < HEADER_LEN as u64 || footer_off > (bytes.len() - TAIL_LEN) as u64 {
        return Err(StorageError::Corrupt(format!(
            "footer offset {footer_off} out of range"
        )));
    }
    let body = &bytes[footer_off as usize..bytes.len() - TAIL_LEN];
    if fnv1a(body) != stored_sum {
        return Err(StorageError::Corrupt("footer checksum mismatch".into()));
    }
    Ok((parse_footer_body(body, footer_off)?, footer_off))
}

/// Validate a v2 file's header and in-stream column prefixes against its
/// parsed footer: header fields must agree with the footer's, extents must
/// tile the data region exactly, and every in-stream `tag | len` prefix
/// must match its extent — so any byte of the file is covered by a
/// checksum or a cross-check and single-byte corruption never passes.
fn check_v2_layout(
    schema: &Arc<Schema>,
    bytes: &[u8],
    footer: &PartitionFooter,
    footer_off: u64,
) -> Result<()> {
    let mut buf = &bytes[..HEADER_LEN];
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let ncols = buf.get_u16_le() as usize;
    let nrows = buf.get_u64_le();
    if ncols != schema.len() {
        return Err(StorageError::Corrupt(format!(
            "file has {ncols} columns, schema expects {}",
            schema.len()
        )));
    }
    if ncols != footer.columns.len() || nrows != footer.nrows {
        return Err(StorageError::Corrupt("header disagrees with footer".into()));
    }
    let mut cursor = HEADER_LEN as u64;
    for (col, extent) in footer.columns.iter().enumerate() {
        if extent.offset != cursor + COL_PREFIX {
            return Err(StorageError::Corrupt(format!(
                "column {col} payload at {}, expected {}",
                extent.offset,
                cursor + COL_PREFIX
            )));
        }
        let prefix = &bytes[cursor as usize..extent.offset as usize];
        let tag = prefix[0];
        let len = u64::from_le_bytes(prefix[1..9].try_into().expect("8 bytes"));
        if tag != extent.tag || len != extent.len {
            return Err(StorageError::Corrupt(format!(
                "column {col} in-stream prefix disagrees with footer"
            )));
        }
        cursor = extent.offset + extent.len;
    }
    if cursor != footer_off {
        return Err(StorageError::Corrupt(
            "data region does not end at footer".into(),
        ));
    }
    Ok(())
}

/// Parse bytes produced by [`encode_partition`] (or the legacy v1 layout)
/// back into a table. The schema is supplied externally (it is store-level,
/// not per-file).
pub fn decode_partition(schema: &Arc<Schema>, bytes: &[u8]) -> Result<Table> {
    DECODES.fetch_add(1, Ordering::Relaxed);
    if has_footer(bytes) {
        let (footer, footer_off) = parse_footer(bytes)?;
        check_v2_layout(schema, bytes, &footer, footer_off)?;
        let nrows = footer.nrows as usize;
        let mut columns = Vec::with_capacity(footer.columns.len());
        for (col, extent) in footer.columns.iter().enumerate() {
            let payload = &bytes[extent.offset as usize..(extent.offset + extent.len) as usize];
            columns.push(extent.decode(payload, nrows, col)?);
        }
        Ok(Table::new(Arc::clone(schema), columns))
    } else {
        decode_partition_v1(schema, bytes)
    }
}

/// Legacy whole-file-checksum decode path for version-1 files.
fn decode_partition_v1(schema: &Arc<Schema>, bytes: &[u8]) -> Result<Table> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(StorageError::Corrupt("file shorter than header".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(StorageError::Corrupt("checksum mismatch".into()));
    }

    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION_V1 {
        return Err(StorageError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != schema.len() {
        return Err(StorageError::Corrupt(format!(
            "file has {ncols} columns, schema expects {}",
            schema.len()
        )));
    }
    let nrows = buf.get_u64_le() as usize;

    let mut columns = Vec::with_capacity(ncols);
    for col in 0..ncols {
        if buf.remaining() < 9 {
            return Err(StorageError::Corrupt(format!(
                "truncated header for column {col}"
            )));
        }
        let tag = buf.get_u8();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(StorageError::Corrupt(format!(
                "truncated payload for column {col}"
            )));
        }
        let mut payload = &buf[..len];
        let column = decode_column_payload(tag, &mut payload, col)?;
        if column.len() != nrows {
            return Err(StorageError::Corrupt(format!(
                "column {col} has {} rows, header says {nrows}",
                column.len()
            )));
        }
        buf.advance(len);
        columns.push(column);
    }
    Ok(Table::new(Arc::clone(schema), columns))
}

/// Write a partition file (buffered, durably synced) with explicit footer
/// metadata, returning the bytes written and the embedded footer.
pub fn write_partition_with_meta(
    path: &Path,
    table: &Table,
    meta: &PartitionMetadata,
) -> Result<(u64, PartitionFooter)> {
    let (bytes, footer) = encode_partition_with_meta(table, meta);
    let file = fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&bytes)?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| StorageError::Io(e.into_error()))?
        .sync_all()?;
    Ok((bytes.len() as u64, footer))
}

/// Write a partition file (buffered, durably synced) and return the number
/// of bytes written. Reorganization in real systems persists its output;
/// the fsync is part of the physical reorganization cost Table I measures.
pub fn write_partition(path: &Path, table: &Table) -> Result<u64> {
    let meta = build_metadata(table, &vec![0; table.num_rows()], 1)
        .pop()
        .expect("k=1 metadata");
    write_partition_with_meta(path, table, &meta).map(|(bytes, _)| bytes)
}

/// Read a partition file written by [`write_partition`].
pub fn read_partition(path: &Path, schema: &Arc<Schema>) -> Result<Table> {
    let mut file = fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    decode_partition(schema, &bytes)
}

/// Read only the footer of a partition file: two small reads (tail + footer
/// body), no column decode. Returns `Ok(None)` for legacy version-1 files,
/// which carry no footer — callers fall back to a full decode.
pub fn read_partition_footer(path: &Path) -> Result<Option<PartitionFooter>> {
    let mut file = fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < (HEADER_LEN + TAIL_LEN) as u64 {
        return Ok(None);
    }
    let mut tail = [0u8; TAIL_LEN];
    file.seek(SeekFrom::End(-(TAIL_LEN as i64)))?;
    file.read_exact(&mut tail)?;
    if &tail[16..24] != FOOTER_MAGIC {
        return Ok(None);
    }
    let stored_sum = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
    let footer_off = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
    if footer_off < HEADER_LEN as u64 || footer_off > file_len - TAIL_LEN as u64 {
        return Err(StorageError::Corrupt(format!(
            "footer offset {footer_off} out of range"
        )));
    }
    let mut body = vec![0u8; (file_len - TAIL_LEN as u64 - footer_off) as usize];
    file.seek(SeekFrom::Start(footer_off))?;
    file.read_exact(&mut body)?;
    if fnv1a(&body) != stored_sum {
        return Err(StorageError::Corrupt("footer checksum mismatch".into()));
    }
    Ok(Some(parse_footer_body(&body, footer_off)?))
}

/// Column-projected read: decode only `cols` (any order, deduplicated by
/// the caller), skipping other payloads via the footer's page index (v2) or
/// their length prefixes (legacy v1). Returns the partition's row count
/// plus `(column id, decoded column)` pairs.
pub fn read_partition_projected(
    path: &Path,
    schema: &Arc<Schema>,
    cols: &[usize],
) -> Result<(usize, Vec<(usize, Column)>)> {
    let mut file = fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    decode_partition_projected(schema, &bytes, cols)
}

/// In-memory variant of [`read_partition_projected`].
pub fn decode_partition_projected(
    schema: &Arc<Schema>,
    bytes: &[u8],
    cols: &[usize],
) -> Result<(usize, Vec<(usize, Column)>)> {
    DECODES.fetch_add(1, Ordering::Relaxed);
    if has_footer(bytes) {
        let (footer, footer_off) = parse_footer(bytes)?;
        check_v2_layout(schema, bytes, &footer, footer_off)?;
        let nrows = footer.nrows as usize;
        let mut out = Vec::with_capacity(cols.len());
        for (col, extent) in footer.columns.iter().enumerate() {
            if cols.contains(&col) {
                let payload = &bytes[extent.offset as usize..(extent.offset + extent.len) as usize];
                out.push((col, extent.decode(payload, nrows, col)?));
            }
        }
        return Ok((nrows, out));
    }
    decode_partition_projected_v1(schema, bytes, cols)
}

fn decode_partition_projected_v1(
    schema: &Arc<Schema>,
    bytes: &[u8],
    cols: &[usize],
) -> Result<(usize, Vec<(usize, Column)>)> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(StorageError::Corrupt("file shorter than header".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(StorageError::Corrupt("checksum mismatch".into()));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION_V1 {
        return Err(StorageError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != schema.len() {
        return Err(StorageError::Corrupt(format!(
            "file has {ncols} columns, schema expects {}",
            schema.len()
        )));
    }
    let nrows = buf.get_u64_le() as usize;

    let mut out = Vec::with_capacity(cols.len());
    for col in 0..ncols {
        if buf.remaining() < 9 {
            return Err(StorageError::Corrupt(format!(
                "truncated header for column {col}"
            )));
        }
        let tag = buf.get_u8();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(StorageError::Corrupt(format!(
                "truncated payload for column {col}"
            )));
        }
        if cols.contains(&col) {
            let mut payload = &buf[..len];
            let column = decode_column_payload(tag, &mut payload, col)?;
            if column.len() != nrows {
                return Err(StorageError::Corrupt(format!(
                    "column {col} has {} rows, header says {nrows}",
                    column.len()
                )));
            }
            out.push((col, column));
        }
        buf.advance(len);
    }
    Ok((nrows, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use oreo_query::{ColumnType, Scalar};

    fn sample_table() -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("qty", ColumnType::Int),
            ("price", ColumnType::Float),
            ("region", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..500i64 {
            b.push_row(&[
                Scalar::Int(1_000_000 + i),
                Scalar::Int(i % 50),
                Scalar::Float((i as f64).sin()),
                Scalar::from(["eu", "na", "apac", "latam"][(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        let back = decode_partition(t.schema(), &bytes).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for row in [0usize, 99, 499] {
            for col in 0..t.num_columns() {
                assert_eq!(back.scalar(row, col), t.scalar(row, col), "({row},{col})");
            }
        }
    }

    #[test]
    fn legacy_v1_round_trip() {
        let t = sample_table();
        let bytes = encode_partition_v1(&t);
        let back = decode_partition(t.schema(), &bytes).unwrap();
        assert_eq!(back.num_rows(), 500);
        for col in 0..t.num_columns() {
            assert_eq!(back.scalar(123, col), t.scalar(123, col));
        }
        // projected reads work on v1 files too
        let (nrows, cols) = decode_partition_projected(t.schema(), &bytes, &[1, 3]).unwrap();
        assert_eq!(nrows, 500);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn footer_carries_extents_and_metadata() {
        let t = sample_table();
        let (bytes, footer) = encode_partition_with_meta(
            &t,
            &build_metadata(&t, &vec![0; t.num_rows()], 1).pop().unwrap(),
        );
        assert_eq!(footer.nrows, 500);
        assert_eq!(footer.columns.len(), 4);
        // extents point at real payloads: decoding each one yields the column
        for (col, extent) in footer.columns.iter().enumerate() {
            let payload = &bytes[extent.offset as usize..(extent.offset + extent.len) as usize];
            let column = extent.decode(payload, 500, col).unwrap();
            assert_eq!(column.len(), 500);
        }
        // the footer's metadata prunes like freshly built metadata
        assert_eq!(footer.meta.rows, 500.0);
        assert_eq!(
            footer.meta,
            build_metadata(&t, &vec![0; t.num_rows()], 1).pop().unwrap()
        );
    }

    #[test]
    fn read_footer_is_header_only_and_v1_has_none() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("oreo-footer-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let v2 = dir.join("v2.oreo");
        write_partition(&v2, &t).unwrap();
        let before = partition_decodes();
        let footer = read_partition_footer(&v2).unwrap().expect("v2 footer");
        assert_eq!(partition_decodes(), before, "footer read must not decode");
        assert_eq!(footer.nrows, 500);
        let v1 = dir.join("v1.oreo");
        fs::write(&v1, encode_partition_v1(&t)).unwrap();
        assert!(read_partition_footer(&v1).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_round_trip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("oreo-fmt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p0.oreo");
        let written = write_partition(&path, &t).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        let back = read_partition(&path, t.schema()).unwrap();
        assert_eq!(back.num_rows(), 500);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let t = sample_table();
        let mut bytes = encode_partition(&t).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = decode_partition(t.schema(), &bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        for cut in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_partition(t.schema(), &bytes[..cut]).unwrap_err();
            assert!(matches!(err, StorageError::Corrupt(_)));
        }
    }

    #[test]
    fn bad_magic_detected() {
        let t = sample_table();
        let mut bytes = encode_partition(&t).to_vec();
        bytes[0] = b'X';
        let err = decode_partition(t.schema(), &bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn schema_mismatch_detected() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        let other = Arc::new(Schema::from_pairs([("only", ColumnType::Int)]));
        let err = decode_partition(&other, &bytes).unwrap_err();
        assert!(err.to_string().contains("columns"), "{err}");
    }

    #[test]
    fn empty_table_round_trips() {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let t = TableBuilder::new(Arc::clone(&s)).finish();
        let bytes = encode_partition(&t);
        let back = decode_partition(&s, &bytes).unwrap();
        assert_eq!(back.num_rows(), 0);
    }

    #[test]
    fn compression_beats_raw_on_clustered_data() {
        let t = sample_table();
        let bytes = encode_partition(&t);
        // raw size: 500 rows × (8 + 8 + 8 + ~4) ≈ 14 kB
        assert!(
            bytes.len() < t.memory_bytes(),
            "encoded {} >= raw {}",
            bytes.len(),
            t.memory_bytes()
        );
    }
}
