//! The disk tier of the serving path: snapshot *generations* persisted as
//! directories, published by atomic rename, pinned by readers, and
//! garbage-collected after the last unpin.
//!
//! A [`TieredStore`] owns a root directory holding one subdirectory per
//! snapshot generation:
//!
//! ```text
//! root/
//!   gen-000001/              ← complete generation (commit = the rename)
//!     MANIFEST               ← layout id/name, partition count, row count
//!     part-00000.oreo        ← encoded partition (same format as DiskStore)
//!     part-00000.rows        ← the partition's global row ids
//!     ...
//!   gen-000002.tmp/          ← in-flight aside rewrite (torn if we crash)
//! ```
//!
//! The reorganizer writes the next generation *aside* into `gen-N.tmp/`,
//! fsyncs every file and the directory, then commits with a single atomic
//! `rename(gen-N.tmp, gen-N)` followed by an fsync of the root. Only after
//! the rename does the serving snapshot pointer swap (the engine's
//! `SnapshotCell::publish`), so a crash at any point leaves either the old
//! generation serving (the `.tmp` is garbage) or the new one fully
//! committed — never a half-visible layout.
//!
//! Every [`TableSnapshot`] persisted through the store holds an
//! [`Arc<Generation>`] pin on its directory. When a generation is
//! superseded it is *retired*; its directory is deleted when the last pin
//! drops (readers still scanning the old layout keep it alive).
//! [`TieredStore::open`] recovers the newest complete generation after a
//! restart and cleans up torn `.tmp` directories and stale older
//! generations.

use crate::diskstore::open_partition_file;
use crate::encode::{decode_u32_block, encode_u32_block, fnv1a};
use crate::error::{Result, StorageError};
use crate::format::{
    read_partition, read_partition_footer, write_partition_with_meta, ColumnExtent,
};
use crate::snapshot::{SnapshotPartition, TableSnapshot};
use bytes::{Buf, BufMut, BytesMut};
use oreo_query::Schema;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const MANIFEST: &str = "MANIFEST";
const MANIFEST_MAGIC: &str = "oreo-tiered v1";
const ROWS_MAGIC: &[u8; 8] = b"OREOROWS";

/// One on-disk snapshot generation: a committed `gen-N/` directory.
///
/// Held by `Arc` from every [`TableSnapshot`] it backs; once the store
/// retires it (a newer generation committed) the directory is removed when
/// the last `Arc` drops. A generation that was never retired — the current
/// one — survives process exit, which is what makes the store durable.
#[derive(Debug)]
pub struct Generation {
    number: u64,
    table: u32,
    dir: PathBuf,
    bytes: u64,
    retired: AtomicBool,
}

impl Generation {
    /// The generation number `N` of the `gen-N/` directory (1-based).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The table (tenant) this generation belongs to. Single-table stores
    /// use table 0; a multi-tenant engine gives each tenant's store its own
    /// id so shared caches (the buffer pool) can key pages by
    /// `(table, generation, page)` without cross-tenant collisions.
    pub fn table(&self) -> u32 {
        self.table
    }

    /// The committed directory this generation lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes written for this generation (partition files, row-id
    /// sidecars, and manifest).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether this generation has been superseded by a newer commit.
    /// Retired generations still serve their pinned readers, but caches
    /// (the buffer pool) must not admit new pages for them — the pool was
    /// already invalidated at publish time, and re-admitted pages would
    /// squat in it until process exit.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

impl Drop for Generation {
    fn drop(&mut self) {
        if self.retired.load(Ordering::Acquire) {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// What one generation publish cost — the *empirical* reorganization write
/// bill: bytes and wall-clock of persisting the aside rewrite (encode +
/// write + fsync + atomic rename).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The committed generation number.
    pub generation: u64,
    /// Bytes written (partition files + row-id sidecars + manifest).
    pub bytes_written: u64,
    /// Files written.
    pub files: usize,
    /// Wall-clock of the whole persist (write + fsync + rename + root
    /// fsync).
    pub wall: Duration,
}

/// What [`TieredStore::open`] found and cleaned up during recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The complete generation recovered and now serving.
    pub generation: u64,
    /// Torn directories removed: in-flight `gen-N.tmp/` rewrites that never
    /// committed, plus committed directories whose contents fail to decode.
    pub torn_removed: Vec<PathBuf>,
    /// Older complete generations removed (superseded before the restart
    /// but still on disk because the process died holding pins).
    pub stale_removed: Vec<PathBuf>,
    /// Ingest fold watermark of the recovered generation: every WAL record
    /// with sequence ≤ this is already folded into the base and must be
    /// skipped at replay. 0 when the generation never folded deltas (or
    /// predates the write path).
    pub folded: u64,
    /// The row-id high-water mark at the recovered generation's fold
    /// point: replayed appends continue allocating global ids from here.
    /// Defaults to the generation's row count for pre-write-path manifests
    /// (identity ids).
    pub next_row: u64,
    /// Entries under the root that are neither committed generations nor
    /// torn rewrites (e.g. a sibling tenant subdirectory, a WAL, or a file
    /// from a future format). Recovery skips them — with a warning — rather
    /// than treating the root as corrupt; they are never deleted.
    pub skipped: Vec<PathBuf>,
}

/// The disk tier backing the serving path: every published
/// [`TableSnapshot`] is persisted as a `gen-N/` directory, committed by
/// atomic rename, pinned by readers, and garbage-collected after the last
/// unpin.
///
/// # Example
///
/// ```
/// use oreo_storage::{TableBuilder, TableSnapshot, TieredStore};
/// use oreo_query::{ColumnType, Scalar, Schema};
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
/// let mut b = TableBuilder::new(Arc::clone(&schema));
/// for i in 0..100i64 {
///     b.push_row(&[Scalar::Int(i)]);
/// }
/// let table = b.finish();
///
/// let root = std::env::temp_dir().join(format!("tiered-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&root);
///
/// // Generation 1: the initial layout, persisted at engine start.
/// let mut snap = TableSnapshot::build(&table, &vec![0; 100], 1, 0, "init");
/// let (store, receipt) = TieredStore::create(&root, &mut snap).unwrap();
/// assert_eq!(receipt.generation, 1);
/// assert!(snap.generation().is_some());
///
/// // Generation 2: an aside rewrite, committed by atomic rename.
/// let assignment: Vec<u32> = (0..100).map(|i| (i / 50) as u32).collect();
/// let mut next = TableSnapshot::build(&table, &assignment, 2, 1, "halves");
/// let receipt = store.publish(&mut next).unwrap();
/// assert_eq!(receipt.generation, 2);
/// assert!(receipt.bytes_written > 0);
///
/// // Gen 1 was retired; dropping its last pin removes the directory.
/// drop(snap);
/// assert!(!root.join("gen-000001").exists());
///
/// // The store reopens at the newest complete generation after a restart.
/// drop(store);
/// let (reopened, recovered, report) = TieredStore::open(&root, &schema).unwrap();
/// assert_eq!(report.generation, 2);
/// assert_eq!(recovered.num_partitions(), 2);
/// assert_eq!(reopened.current().number(), 2);
/// # drop(next); drop(recovered); drop(reopened);
/// # let _ = std::fs::remove_dir_all(&root);
/// ```
#[derive(Debug)]
pub struct TieredStore {
    root: PathBuf,
    schema: Arc<Schema>,
    table: u32,
    current: Mutex<Arc<Generation>>,
}

impl TieredStore {
    /// Initialize a store at `root`, persisting `snapshot` as the next
    /// generation.
    ///
    /// On a fresh root that is generation 1. On a root left behind by a
    /// previous process the store *restarts* the sequence instead of
    /// colliding with it: torn `gen-N.tmp/` rewrites are removed, the new
    /// snapshot is committed as `max committed generation + 1`, and the
    /// now-superseded older generations are cleaned up — so an engine can
    /// be restarted on the same root indefinitely. (To *read* the last
    /// committed generation instead of superseding it, use
    /// [`TieredStore::open`] first.)
    ///
    /// The snapshot is mutated in place: its per-partition byte accounting
    /// switches to encoded file sizes and it pins the new generation (see
    /// [`TableSnapshot::generation`]).
    pub fn create(root: &Path, snapshot: &mut TableSnapshot) -> Result<(Self, PublishReceipt)> {
        Self::create_for_table(root, 0, snapshot)
    }

    /// [`TieredStore::create`] with an explicit table (tenant) id stamped
    /// into every generation this store commits, so a shared buffer pool
    /// can key its pages by `(table, generation, page)`.
    pub fn create_for_table(
        root: &Path,
        table: u32,
        snapshot: &mut TableSnapshot,
    ) -> Result<(Self, PublishReceipt)> {
        assert!(
            snapshot.num_partitions() > 0,
            "snapshot must have at least one partition"
        );
        fs::create_dir_all(root)?;
        let mut stale = Vec::new();
        let mut next = 1;
        for (kind, number, path) in list_root(root) {
            match kind {
                EntryKind::Torn => fs::remove_dir_all(&path)?,
                EntryKind::Committed => {
                    next = next.max(number + 1);
                    stale.push(path);
                }
                EntryKind::Unknown => {}
            }
        }
        let schema = Arc::clone(snapshot.partitions()[0].data.schema());
        let next_row = snapshot.total_rows();
        let (generation, receipt) = persist_generation(root, table, snapshot, next, 0, next_row)?;
        // The previous process's generations are superseded by the commit
        // above; nothing in this process pins them.
        for path in stale {
            fs::remove_dir_all(&path)?;
        }
        let store = Self {
            root: root.to_owned(),
            schema,
            table,
            current: Mutex::new(generation),
        };
        Ok((store, receipt))
    }

    /// Persist `snapshot` aside as the next generation and commit it by
    /// atomic rename, then retire the previous generation (its directory is
    /// deleted once the last reader unpins it).
    ///
    /// This is the write half of the paper's four-step rewrite, measured:
    /// the returned [`PublishReceipt`] carries the bytes and wall-clock of
    /// the persist, which the serving layer reports as the empirical α
    /// alongside the measured switch delay Δ. Call the serving-plane
    /// pointer swap (`SnapshotCell::publish`) only after this returns — the
    /// rename is the durability point.
    pub fn publish(&self, snapshot: &mut TableSnapshot) -> Result<PublishReceipt> {
        let next_row = snapshot.total_rows();
        self.publish_with_fold(snapshot, 0, next_row)
    }

    /// [`TieredStore::publish`] for a generation that carries ingest-fold
    /// state: `folded` is the WAL watermark (every record with sequence ≤
    /// it is folded into this base), `next_row` the row-id high-water mark
    /// at the fold point. Both land in the manifest so
    /// [`TieredStore::open`] can resume the ingest sequence exactly.
    pub fn publish_with_fold(
        &self,
        snapshot: &mut TableSnapshot,
        folded: u64,
        next_row: u64,
    ) -> Result<PublishReceipt> {
        let mut current = self.current.lock().expect("tiered store poisoned");
        let number = current.number() + 1;
        let (generation, receipt) =
            match persist_generation(&self.root, self.table, snapshot, number, folded, next_row) {
                Ok(committed) => committed,
                Err(e) => {
                    // A publish that dies after writing some partition files
                    // leaves a `gen-N.tmp/` behind; only `open`/`create` used
                    // to clean those, so a long-running engine retrying
                    // publishes would leak disk. Sweep every stale `.tmp`
                    // (best-effort) before surfacing the error.
                    sweep_tmp_entries(&self.root);
                    return Err(e);
                }
            };
        let old = std::mem::replace(&mut *current, generation);
        old.retire();
        Ok(receipt)
    }

    /// Pin the current (newest committed) generation.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.lock().expect("tiered store poisoned"))
    }

    /// The root directory holding the generation subdirectories.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The schema of the stored table.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The table (tenant) id stamped into this store's generations.
    pub fn table(&self) -> u32 {
        self.table
    }

    /// Generation directories currently on disk (committed `gen-N/` only),
    /// ascending. Superseded generations linger here only while readers
    /// still pin them.
    pub fn generations_on_disk(&self) -> Vec<u64> {
        let mut gens: Vec<u64> = list_root(&self.root)
            .into_iter()
            .filter_map(|(kind, number, _)| match kind {
                EntryKind::Committed => Some(number),
                EntryKind::Torn | EntryKind::Unknown => None,
            })
            .collect();
        gens.sort_unstable();
        gens
    }

    /// Reopen a store after a restart: recover the newest *complete*
    /// generation (commit point = the rename, so every `gen-N/` should
    /// decode; one that does not is treated as torn), remove torn
    /// `gen-N.tmp/` rewrites and stale older generations, and rebuild the
    /// serving snapshot from the recovered files.
    ///
    /// Fails with [`StorageError::Corrupt`] if no complete generation
    /// exists under `root`.
    ///
    /// Entries that are neither `gen-N/` nor `gen-N.tmp/` — a sibling
    /// tenant's subdirectory, a WAL, a file from a future format — are
    /// *skipped with a warning*, never deleted and never treated as
    /// corruption; they land in [`RecoveryReport::skipped`].
    pub fn open(
        root: &Path,
        schema: &Arc<Schema>,
    ) -> Result<(Self, TableSnapshot, RecoveryReport)> {
        Self::open_for_table(root, 0, schema)
    }

    /// [`TieredStore::open`] with an explicit table (tenant) id stamped
    /// into the recovered (and every future) generation.
    pub fn open_for_table(
        root: &Path,
        table: u32,
        schema: &Arc<Schema>,
    ) -> Result<(Self, TableSnapshot, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let mut committed: Vec<(u64, PathBuf)> = Vec::new();
        for (kind, number, path) in list_root(root) {
            match kind {
                EntryKind::Torn => {
                    fs::remove_dir_all(&path)?;
                    report.torn_removed.push(path);
                }
                EntryKind::Committed => committed.push((number, path)),
                EntryKind::Unknown => {
                    eprintln!(
                        "oreo-storage: skipping unknown entry {} during recovery",
                        path.display()
                    );
                    report.skipped.push(path);
                }
            }
        }
        committed.sort_unstable_by_key(|&(n, _)| std::cmp::Reverse(n));

        let mut recovered: Option<(u64, TableSnapshot, u64, u64)> = None;
        for (number, path) in committed {
            if recovered.is_some() {
                // Older than the recovered generation: superseded, clean up.
                fs::remove_dir_all(&path)?;
                report.stale_removed.push(path);
                continue;
            }
            match load_generation(&path, schema) {
                Ok((snapshot, folded, next_row)) => {
                    recovered = Some((number, snapshot, folded, next_row))
                }
                Err(_) => {
                    // A committed directory that fails to decode (e.g. a
                    // half-deleted GC victim): treat as torn and fall back.
                    fs::remove_dir_all(&path)?;
                    report.torn_removed.push(path);
                }
            }
        }
        let (number, mut snapshot, folded, next_row) =
            recovered.ok_or_else(|| StorageError::Corrupt("no complete generation".into()))?;
        report.generation = number;
        report.folded = folded;
        report.next_row = next_row;

        let dir = gen_dir(root, number);
        let bytes = dir_bytes(&dir)?;
        let generation = Arc::new(Generation {
            number,
            table,
            dir,
            bytes,
            retired: AtomicBool::new(false),
        });
        let files: Vec<(u64, Option<Arc<[ColumnExtent]>>)> = snapshot
            .partitions()
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let file_bytes = fs::metadata(generation.dir.join(part_file(i)))
                    .map(|m| m.len())
                    .unwrap_or(0);
                (file_bytes, part.extents.clone())
            })
            .collect();
        snapshot.attach_generation(Arc::clone(&generation), files);
        let store = Self {
            root: root.to_owned(),
            schema: Arc::clone(schema),
            table,
            current: Mutex::new(generation),
        };
        Ok((store, snapshot, report))
    }
}

enum EntryKind {
    Committed,
    Torn,
    /// A directory that is not ours (a tenant subdir, a future format) or a
    /// `gen-*`-named entry that does not parse. Recovery skips these with a
    /// warning instead of treating the root as corrupt; plain files that
    /// don't claim the `gen-` prefix (a WAL, a lock file) stay silently
    /// ignored — they belong to other subsystems sharing the root.
    Unknown,
}

/// Classify the entries of a store root into committed `gen-N` directories,
/// torn `gen-N.tmp` leftovers, and unknown entries.
fn list_root(root: &Path) -> Vec<(EntryKind, u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(root) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let is_dir = path.is_dir();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            out.push((EntryKind::Unknown, 0, path));
            continue;
        };
        if let Some(num) = name.strip_prefix("gen-") {
            if let Some(num) = num.strip_suffix(".tmp") {
                if is_dir && num.parse::<u64>().is_ok() {
                    out.push((EntryKind::Torn, 0, path));
                } else {
                    out.push((EntryKind::Unknown, 0, path));
                }
            } else if is_dir {
                if let Ok(n) = num.parse::<u64>() {
                    out.push((EntryKind::Committed, n, path));
                } else {
                    out.push((EntryKind::Unknown, 0, path));
                }
            } else {
                out.push((EntryKind::Unknown, 0, path));
            }
        } else if is_dir {
            out.push((EntryKind::Unknown, 0, path));
        }
    }
    out
}

fn gen_dir(root: &Path, number: u64) -> PathBuf {
    root.join(format!("gen-{number:06}"))
}

/// Best-effort removal of every stale `gen-*.tmp` entry under `root`
/// (directories *or* stray files): leftovers of publishes that failed
/// partway. `open`/`create` clean these on restart; `publish` calls this
/// on failure so a long-running engine never accumulates them.
fn sweep_tmp_entries(root: &Path) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let is_tmp = name
            .strip_prefix("gen-")
            .and_then(|n| n.strip_suffix(".tmp"))
            .is_some_and(|n| n.parse::<u64>().is_ok());
        if !is_tmp {
            continue;
        }
        if path.is_dir() {
            let _ = fs::remove_dir_all(&path);
        } else {
            let _ = fs::remove_file(&path);
        }
    }
}

pub(crate) fn part_file(index: usize) -> String {
    format!("part-{index:05}.oreo")
}

fn rows_file(index: usize) -> String {
    format!("part-{index:05}.rows")
}

/// Write `snapshot` under `root` as generation `number`: everything goes to
/// `gen-N.tmp/` first (each file written + fsynced, then the directory
/// fsynced), and the commit is one atomic rename to `gen-N/` followed by an
/// fsync of `root`.
fn persist_generation(
    root: &Path,
    table: u32,
    snapshot: &mut TableSnapshot,
    number: u64,
    folded: u64,
    next_row: u64,
) -> Result<(Arc<Generation>, PublishReceipt)> {
    let started = Instant::now();
    let tmp = root.join(format!("gen-{number:06}.tmp"));
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    let mut bytes_written = 0u64;
    let mut files = 0usize;
    let mut file_info: Vec<(u64, Option<Arc<[ColumnExtent]>>)> =
        Vec::with_capacity(snapshot.num_partitions());
    for (i, part) in snapshot.partitions().iter().enumerate() {
        // The snapshot's pruning metadata goes into the file footer, so a
        // restart recovers it (and the page index) without decoding data.
        let (part_bytes, footer) =
            write_partition_with_meta(&tmp.join(part_file(i)), &part.data, &part.meta)?;
        bytes_written += part_bytes;
        file_info.push((part_bytes, Some(Arc::from(footer.columns))));
        bytes_written += write_rows(&tmp.join(rows_file(i)), &part.rows)?;
        files += 2;
    }
    bytes_written += write_manifest(&tmp.join(MANIFEST), snapshot, number, folded, next_row)?;
    files += 1;
    sync_dir(&tmp)?;

    let dir = gen_dir(root, number);
    // A committed directory can already sit at this number if an earlier
    // publish renamed successfully but failed afterwards (e.g. on the root
    // fsync) — the store never advanced, so the directory is an orphan no
    // live Generation points to. Renaming onto a non-empty directory fails
    // (ENOTEMPTY), which would wedge every later publish; clear it first.
    if dir.exists() {
        fs::remove_dir_all(&dir)?;
    }
    fs::rename(&tmp, &dir)?;
    sync_dir(root)?;

    let generation = Arc::new(Generation {
        number,
        table,
        dir,
        bytes: bytes_written,
        retired: AtomicBool::new(false),
    });
    snapshot.attach_generation(Arc::clone(&generation), file_info);
    let receipt = PublishReceipt {
        generation: number,
        bytes_written,
        files,
        wall: started.elapsed(),
    };
    Ok((generation, receipt))
}

/// Rebuild the serving snapshot from a committed generation directory,
/// returning `(snapshot, folded watermark, next row id)`.
fn load_generation(dir: &Path, schema: &Arc<Schema>) -> Result<(TableSnapshot, u64, u64)> {
    let (layout, name, k, total_rows, folded, next_row) = read_manifest(&dir.join(MANIFEST))?;
    let mut partitions = Vec::with_capacity(k);
    for i in 0..k {
        let path = dir.join(part_file(i));
        // Footer-indexed files recover pruning metadata and the page index
        // from the footer (one decode for the data); legacy v1 files fall
        // back to rebuilding metadata from the decoded rows.
        let (data, meta, extents) = match read_partition_footer(&path)? {
            Some(footer) => {
                let data = read_partition(&path, schema)?;
                let extents: Arc<[ColumnExtent]> = Arc::from(footer.columns);
                (data, footer.meta, Some(extents))
            }
            None => {
                let (data, meta, _bytes) = open_partition_file(&path, schema)?;
                (data, meta, None)
            }
        };
        let data = Arc::new(data);
        let rows = read_rows(&dir.join(rows_file(i)))?;
        if rows.len() != data.num_rows() {
            return Err(StorageError::Corrupt(format!(
                "partition {i}: {} row ids for {} rows",
                rows.len(),
                data.num_rows()
            )));
        }
        partitions.push(SnapshotPartition {
            rows: rows.into(),
            data,
            meta,
            bytes: 0, // stamped by attach_generation
            extents,
        });
    }
    let snapshot = TableSnapshot::from_parts(layout, name, partitions);
    if snapshot.total_rows() != total_rows {
        return Err(StorageError::Corrupt(format!(
            "generation holds {} rows, manifest says {total_rows}",
            snapshot.total_rows()
        )));
    }
    // Pre-write-path manifests carry no next_row: their ids are identity.
    let next_row = next_row.unwrap_or(total_rows);
    Ok((snapshot, folded, next_row))
}

/// Write the global row ids of one partition:
/// `"OREOROWS" | count u64 LE | u32 block | fnv1a-64 checksum`.
fn write_rows(path: &Path, rows: &[u32]) -> Result<u64> {
    let mut buf = BytesMut::new();
    buf.put_slice(ROWS_MAGIC);
    buf.put_u64_le(rows.len() as u64);
    encode_u32_block(&mut buf, rows);
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    let mut file = fs::File::create(path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    Ok(buf.len() as u64)
}

/// Read a sidecar written by [`write_rows`].
fn read_rows(path: &Path) -> Result<Vec<u32>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < ROWS_MAGIC.len() + 8 + 8 {
        return Err(StorageError::Corrupt("rows sidecar too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(StorageError::Corrupt("rows sidecar checksum".into()));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != ROWS_MAGIC {
        return Err(StorageError::Corrupt("rows sidecar magic".into()));
    }
    let count = buf.get_u64_le() as usize;
    let rows = decode_u32_block(&mut buf)?;
    if rows.len() != count {
        return Err(StorageError::Corrupt(format!(
            "rows sidecar decoded {} ids, header says {count}",
            rows.len()
        )));
    }
    Ok(rows)
}

fn write_manifest(
    path: &Path,
    snapshot: &TableSnapshot,
    number: u64,
    folded: u64,
    next_row: u64,
) -> Result<u64> {
    let name = snapshot.name().replace(['\n', '\r'], " ");
    let text = format!(
        "{MANIFEST_MAGIC}\ngeneration={number}\nlayout={}\nname={name}\npartitions={}\nrows={}\nfolded={folded}\nnext_row={next_row}\n",
        snapshot.layout(),
        snapshot.num_partitions(),
        snapshot.total_rows(),
    );
    let mut file = fs::File::create(path)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    Ok(text.len() as u64)
}

/// Parse a manifest into `(layout, name, partitions, rows, folded,
/// next_row)`. The fold keys are optional (unknown keys were always
/// ignored, so old and new manifests interoperate both ways): `folded`
/// defaults to 0, a missing `next_row` stays `None` for the caller to
/// default to the row count.
#[allow(clippy::type_complexity)]
fn read_manifest(path: &Path) -> Result<(u64, String, usize, u64, u64, Option<u64>)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(StorageError::Corrupt("bad manifest magic".into()));
    }
    let mut layout = None;
    let mut name = None;
    let mut partitions = None;
    let mut rows = None;
    let mut folded = 0;
    let mut next_row = None;
    for line in lines {
        match line.split_once('=') {
            Some(("layout", v)) => layout = v.parse().ok(),
            Some(("name", v)) => name = Some(v.to_string()),
            Some(("partitions", v)) => partitions = v.parse().ok(),
            Some(("rows", v)) => rows = v.parse().ok(),
            Some(("folded", v)) => folded = v.parse().unwrap_or(0),
            Some(("next_row", v)) => next_row = v.parse().ok(),
            _ => {}
        }
    }
    match (layout, name, partitions, rows) {
        (Some(l), Some(n), Some(k), Some(r)) => Ok((l, n, k, r, folded, next_row)),
        _ => Err(StorageError::Corrupt("incomplete manifest".into())),
    }
}

pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    // Durability of the directory entries themselves (file creation and the
    // commit rename). Some platforms cannot fsync a directory at all —
    // that incapacity is tolerated (the data files are synced
    // individually) — but a *real* I/O failure must surface: reporting a
    // commit that never reached disk would break the "rename is the
    // durability point" contract.
    const EINVAL: i32 = 22; // what fsync(2) reports for unsyncable files
    let file = match fs::File::open(dir) {
        Ok(f) => f,
        // Windows cannot open a directory without backup semantics (std
        // reports PermissionDenied) — platform incapacity, not a failed
        // sync; the data files were synced individually.
        Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    match file.sync_all() {
        Ok(()) => Ok(()),
        Err(e)
            if e.kind() == std::io::ErrorKind::Unsupported || e.raw_os_error() == Some(EINVAL) =>
        {
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

fn dir_bytes(dir: &Path) -> Result<u64> {
    let mut total = 0;
    for entry in fs::read_dir(dir)?.flatten() {
        total += entry.metadata()?.len();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableBuilder};
    use oreo_query::{Atom, ColumnType, Predicate, Scalar};

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oreo-tiered-{tag}-{}-{}",
            std::process::id(),
            rand::random::<u32>()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("tag", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::from(["a", "b", "c", "d"][(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    fn between(lo: i64, hi: i64) -> Predicate {
        Predicate::new(vec![Atom::Between {
            col: 0,
            low: Scalar::Int(lo),
            high: Scalar::Int(hi),
        }])
    }

    fn snap(t: &Table, k: usize, layout: u64) -> TableSnapshot {
        let n = t.num_rows() as u32;
        let per = n.div_ceil(k as u32).max(1);
        let assignment: Vec<u32> = (0..n).map(|r| (r / per).min(k as u32 - 1)).collect();
        TableSnapshot::build(t, &assignment, k, layout, format!("range{k}"))
    }

    #[test]
    fn create_commits_generation_one_with_disk_byte_accounting() {
        let t = table(400);
        let root = tmproot("create");
        let mut s = snap(&t, 4, 0);
        let mem_bytes = s.total_bytes();
        let (store, receipt) = TieredStore::create(&root, &mut s).unwrap();
        assert_eq!(receipt.generation, 1);
        assert_eq!(receipt.files, 9, "4 parts + 4 sidecars + manifest");
        assert!(root.join("gen-000001").join(MANIFEST).exists());
        assert_eq!(store.generations_on_disk(), vec![1]);
        // byte accounting switched from memory to encoded-file sizes
        assert_ne!(s.total_bytes(), mem_bytes);
        assert!(s.total_bytes() > 0 && s.total_bytes() < receipt.bytes_written);
        let scan = s.scan(&between(0, 99));
        assert!(scan.bytes_scanned > 0);
        drop(store);
        drop(s);
        // the current generation was never retired: it must survive
        assert!(root.join("gen-000001").exists(), "durable current gen");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn publish_retires_old_generation_after_last_unpin() {
        let t = table(300);
        let root = tmproot("gc");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        let pinned = s1.clone(); // a reader still scanning gen 1

        let mut s2 = snap(&t, 3, 1);
        let receipt = store.publish(&mut s2).unwrap();
        assert_eq!(receipt.generation, 2);
        assert_eq!(store.current().number(), 2);

        // gen 1 is retired but still pinned by two snapshots
        drop(s1);
        assert!(root.join("gen-000001").exists(), "still pinned");
        drop(pinned);
        assert!(!root.join("gen-000001").exists(), "GC after last unpin");
        assert_eq!(store.generations_on_disk(), vec![2]);
        drop(store);
        drop(s2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_recovers_latest_complete_generation() {
        let t = table(500);
        let schema = Arc::clone(t.schema());
        let root = tmproot("reopen");
        let mut s1 = snap(&t, 4, 7);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        drop(store);
        drop(s1); // process "exits" — gen 1 never retired

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 1);
        assert!(report.torn_removed.is_empty());
        assert!(report.stale_removed.is_empty());
        assert_eq!(recovered.layout(), 7);
        assert_eq!(recovered.name(), "range4");
        assert_eq!(recovered.num_partitions(), 4);
        assert_eq!(recovered.total_rows(), 500);
        // global row ids survived the round trip
        assert_eq!(recovered.row_cover(), (0..500u32).collect::<Vec<_>>());
        // scans on the recovered snapshot match a direct filter
        let pred = between(120, 130);
        let expected: Vec<u32> = (0..500u32)
            .filter(|&r| t.row_matches(r as usize, &pred))
            .collect();
        let scan = recovered.scan(&pred);
        assert_eq!(scan.matches, expected);
        assert!(scan.partitions_read < 4, "recovered metadata still prunes");
        assert!(scan.bytes_scanned > 0);
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    /// The satellite's crash test: die between fsync and rename (a fully
    /// written `gen-2.tmp/` that never committed), reopen, and the old
    /// generation serves while the torn directory is cleaned up.
    #[test]
    fn torn_publish_is_cleaned_up_and_old_generation_serves() {
        let t = table(400);
        let schema = Arc::clone(t.schema());
        let root = tmproot("torn");
        let mut s1 = snap(&t, 2, 3);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        drop(store);
        drop(s1);

        // Simulate the kill: replay persist_generation up to (not including)
        // the rename by copying gen 1's files into gen-000002.tmp.
        let torn = root.join("gen-000002.tmp");
        fs::create_dir_all(&torn).unwrap();
        for entry in fs::read_dir(root.join("gen-000001")).unwrap().flatten() {
            fs::copy(entry.path(), torn.join(entry.file_name())).unwrap();
        }
        assert!(torn.exists());

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 1, "old generation serves");
        assert_eq!(report.torn_removed, vec![torn.clone()]);
        assert!(!torn.exists(), "torn rewrite cleaned up");
        assert_eq!(recovered.row_cover(), (0..400u32).collect::<Vec<_>>());
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    /// A committed directory whose contents are corrupt is treated as torn:
    /// recovery falls back to the next older complete generation.
    #[test]
    fn corrupt_committed_generation_falls_back() {
        let t = table(300);
        let schema = Arc::clone(t.schema());
        let root = tmproot("corrupt");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        drop(store);

        // Fabricate a "newer" generation with a corrupt partition file.
        let bad = root.join("gen-000002");
        fs::create_dir_all(&bad).unwrap();
        for entry in fs::read_dir(root.join("gen-000001")).unwrap().flatten() {
            fs::copy(entry.path(), bad.join(entry.file_name())).unwrap();
        }
        let victim = bad.join(part_file(0));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, bytes).unwrap();

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.torn_removed, vec![bad.clone()]);
        assert!(!bad.exists());
        assert_eq!(recovered.total_rows(), 300);
        drop(s1);
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_removes_stale_older_generations() {
        let t = table(200);
        let schema = Arc::clone(t.schema());
        let root = tmproot("stale");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        let mut s2 = snap(&t, 4, 1);
        store.publish(&mut s2).unwrap();
        // Simulate dying while a reader still pinned gen 1: leak the pin so
        // the retired directory is never deleted.
        std::mem::forget(s1);
        drop(store);
        drop(s2);
        assert!(root.join("gen-000001").exists());

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.stale_removed, vec![root.join("gen-000001")]);
        assert!(!root.join("gen-000001").exists());
        assert_eq!(recovered.num_partitions(), 4);
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    /// `create` on a root left behind by a previous process must not
    /// collide with its generations: the sequence continues past the
    /// survivor and the superseded directories are cleaned up.
    #[test]
    fn create_on_existing_root_continues_the_sequence() {
        let t = table(200);
        let root = tmproot("recreate");
        let mut s1 = snap(&t, 2, 0);
        let (store, r1) = TieredStore::create(&root, &mut s1).unwrap();
        assert_eq!(r1.generation, 1);
        drop(store);
        drop(s1); // process "exits"; gen-000001 survives

        // also leave a torn rewrite behind
        fs::create_dir_all(root.join("gen-000002.tmp")).unwrap();

        let mut s2 = snap(&t, 4, 1);
        let (store, r2) = TieredStore::create(&root, &mut s2).unwrap();
        assert_eq!(r2.generation, 2, "sequence continues past the survivor");
        assert!(!root.join("gen-000001").exists(), "superseded gen removed");
        assert!(!root.join("gen-000002.tmp").exists(), "torn dir removed");
        assert_eq!(store.generations_on_disk(), vec![2]);
        drop(store);
        drop(s2);
        fs::remove_dir_all(&root).unwrap();
    }

    /// The tmp-sweep satellite: a publish that fails partway must not
    /// leave `gen-*.tmp` leftovers behind — neither its own nor older
    /// strays — and the store must keep serving and accept a retry.
    #[test]
    fn failed_publish_sweeps_stale_tmp_entries() {
        let t = table(300);
        let root = tmproot("sweep");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();

        // a stray tmp dir from some earlier crashed publish
        fs::create_dir_all(root.join("gen-000099.tmp")).unwrap();
        fs::write(root.join("gen-000099.tmp").join("part-00000.oreo"), b"x").unwrap();
        // wedge the next publish: its tmp path exists as a *file*, so the
        // pre-write cleanup (remove_dir_all) fails partway into persist
        fs::write(root.join("gen-000002.tmp"), b"wedge").unwrap();

        let mut s2 = snap(&t, 3, 1);
        assert!(store.publish(&mut s2).is_err(), "wedged publish must fail");
        let leftovers: Vec<String> = fs::read_dir(&root)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp entries leaked: {leftovers:?}");
        assert_eq!(store.current().number(), 1, "old generation still serves");

        // with the wedge swept, the retry commits
        let mut s3 = snap(&t, 3, 1);
        let receipt = store.publish(&mut s3).unwrap();
        assert_eq!(receipt.generation, 2);
        drop(store);
        drop(s1);
        drop(s2);
        drop(s3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_on_empty_root_is_an_error() {
        let root = tmproot("empty");
        fs::create_dir_all(&root).unwrap();
        let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let err = TieredStore::open(&root, &schema).unwrap_err();
        assert!(err.to_string().contains("no complete generation"));
        fs::remove_dir_all(&root).unwrap();
    }

    /// Fold metadata (WAL watermark + row-id high-water mark) rides the
    /// manifest and survives recovery; manifests without the keys default
    /// to "never folded, identity ids".
    #[test]
    fn fold_watermarks_round_trip_through_the_manifest() {
        let t = table(200);
        let schema = Arc::clone(t.schema());
        let root = tmproot("fold");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        let mut s2 = snap(&t, 4, 1);
        let receipt = store.publish_with_fold(&mut s2, 17, 260).unwrap();
        assert_eq!(receipt.generation, 2);
        drop(store);
        drop(s1);
        drop(s2);

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.folded, 17);
        assert_eq!(report.next_row, 260);
        drop(store);
        drop(recovered);

        // strip the fold keys → defaults (0, rows)
        let manifest = root.join("gen-000002").join(MANIFEST);
        let stripped: String = fs::read_to_string(&manifest)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("folded=") && !l.starts_with("next_row="))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&manifest, stripped).unwrap();
        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.folded, 0);
        assert_eq!(report.next_row, 200, "defaults to the row count");
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    /// The multi-tenant bugfix: a data dir holding entries the store does
    /// not own — a future tenant subdirectory, a stray `gen-` file, a lock
    /// dir — must be skipped with a warning, never deleted and never
    /// treated as corruption.
    #[test]
    fn open_skips_unknown_entries_in_a_mixed_layout_dir() {
        let t = table(200);
        let schema = Arc::clone(t.schema());
        let root = tmproot("mixed");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create(&root, &mut s1).unwrap();
        drop(store);
        drop(s1);

        // a sibling tenant's subtree, as a future multi-tenant layout lays it out
        let tenant = root.join("tenant-b");
        fs::create_dir_all(tenant.join("gen-000005")).unwrap();
        fs::write(tenant.join("wal.log"), b"tenant b's wal").unwrap();
        // a directory from some future format, and a gen-named stray file
        fs::create_dir_all(root.join("locks")).unwrap();
        fs::write(root.join("gen-000003"), b"not a directory").unwrap();
        // a plain file that never claimed the gen- prefix stays silent
        fs::write(root.join("wal.log"), b"our wal").unwrap();

        let (store, recovered, report) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(report.generation, 1, "the real generation still serves");
        assert!(report.torn_removed.is_empty());
        assert!(report.stale_removed.is_empty());
        let mut skipped = report.skipped.clone();
        skipped.sort();
        assert_eq!(
            skipped,
            vec![
                root.join("gen-000003"),
                root.join("locks"),
                root.join("tenant-b"),
            ],
            "unknown entries are reported, wal.log is not"
        );
        // nothing unknown was deleted
        assert!(tenant.join("gen-000005").exists());
        assert!(tenant.join("wal.log").exists());
        assert!(root.join("locks").exists());
        assert!(root.join("gen-000003").exists());
        assert_eq!(recovered.total_rows(), 200);

        // create() on the same mixed root also leaves foreign entries alone
        drop(store);
        drop(recovered);
        let mut s2 = snap(&t, 4, 1);
        let (store, receipt) = TieredStore::create(&root, &mut s2).unwrap();
        assert_eq!(receipt.generation, 2);
        assert!(tenant.join("wal.log").exists(), "create spared the tenant");
        drop(store);
        drop(s2);
        fs::remove_dir_all(&root).unwrap();
    }

    /// Generations carry their store's table id so a shared buffer pool can
    /// key pages per tenant; the id survives reopen.
    #[test]
    fn table_id_is_stamped_and_survives_reopen() {
        let t = table(100);
        let schema = Arc::clone(t.schema());
        let root = tmproot("tableid");
        let mut s1 = snap(&t, 2, 0);
        let (store, _) = TieredStore::create_for_table(&root, 7, &mut s1).unwrap();
        assert_eq!(store.table(), 7);
        assert_eq!(store.current().table(), 7);
        let mut s2 = snap(&t, 4, 1);
        store.publish(&mut s2).unwrap();
        assert_eq!(store.current().table(), 7, "publish keeps the id");
        drop(store);
        drop(s1);
        drop(s2);

        let (store, recovered, _) = TieredStore::open_for_table(&root, 7, &schema).unwrap();
        assert_eq!(store.current().table(), 7);
        // the default single-table constructors stamp table 0
        drop(store);
        drop(recovered);
        let (store, recovered, _) = TieredStore::open(&root, &schema).unwrap();
        assert_eq!(store.current().table(), 0);
        drop(store);
        drop(recovered);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rows_sidecar_round_trips_and_detects_corruption() {
        let root = tmproot("rows");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("r.rows");
        let rows: Vec<u32> = (0..997).map(|i| i * 3 % 1000).collect();
        write_rows(&path, &rows).unwrap();
        assert_eq!(read_rows(&path).unwrap(), rows);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        assert!(read_rows(&path).is_err());
        fs::remove_dir_all(&root).unwrap();
    }
}
