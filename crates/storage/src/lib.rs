//! # oreo-storage
//!
//! The partitioned columnar storage substrate OREO optimizes over.
//!
//! Six layers:
//!
//! 1. **In-memory tables** ([`Table`], [`Column`]) — immutable columnar data
//!    with typed columns (`i64`, `f64`, dictionary strings) used by the
//!    workload generators and the layout routers.
//! 2. **Partition metadata** ([`PartitionMetadata`], [`LayoutModel`]) —
//!    min/max ranges and distinct sets per column per partition. This is the
//!    entire costing surface of OREO: `c(s, q)` is the fraction of rows in
//!    partitions the predicate cannot skip, computed from metadata alone.
//! 3. **An on-disk store** ([`DiskStore`]) — one compressed columnar file per
//!    partition, metadata-pruned scans, and physical reorganization
//!    (read → re-route → regroup → compress + write). This replaces the
//!    paper's Spark/Parquet setup and provides the measured α of Table I.
//! 4. **Copy-on-write snapshots** ([`TableSnapshot`], [`SnapshotCell`]) —
//!    immutable materialized partition sets readers pin while a background
//!    reorganizer builds the next layout aside and atomically publishes it;
//!    the substrate of the concurrent serving layer (`oreo-engine`).
//! 5. **The disk tier** ([`TieredStore`], [`Generation`]) — snapshot
//!    generations persisted as `gen-N/` directories, committed by atomic
//!    rename, pinned by readers, garbage-collected after the last unpin,
//!    and recovered on restart. Backing the serving path with this tier
//!    makes the measured α of Table I and the measured Δ of the engine
//!    observables of the *same* run.
//! 6. **A buffer pool** ([`BufferPool`]) — a fixed-capacity, page-granular
//!    cache over generation partition files with CLOCK eviction. Tiered
//!    scans ([`TableSnapshot::scan_pooled`]) fetch only the pages their
//!    predicate's columns touch, so scan cost is *real* block transfers —
//!    split into cold (disk) and cached (pool) bytes — instead of bytes
//!    merely accounted at file sizes.
//!
//! Both serving scan paths evaluate predicates through the vectorized
//! [`kernel`] layer: compiled per-column plans ([`oreo_query::compile`])
//! run over [`CHUNK_ROWS`]-row chunks into reusable selection vectors,
//! ANDed cheapest-selectivity-first with late materialization of global row
//! ids. The row-at-a-time interpreters survive as
//! [`TableSnapshot::scan_rowwise`] / [`TableSnapshot::scan_pooled_rowwise`]
//! — the correctness oracle the property tests and the `scan_kernels`
//! microbench compare against.

pub mod bufpool;
pub mod column;
pub mod delta;
pub mod diskstore;
pub mod encode;
pub mod error;
pub mod format;
pub mod kernel;
pub mod layout_model;
pub mod partition;
pub mod snapshot;
pub mod table;
pub mod tiered;
pub mod wal;

pub use bufpool::{BufferPool, BufferPoolConfig, PoolStats, ReadStats};
pub use column::{atom_matches_ref, Column, DictBuilder, DictColumn, ValueRef};
pub use delta::{
    kbinomial_sizes, ApplyReceipt, DeltaBuffer, DeltaOverlay, DeltaRun, FoldCapture, IngestOp,
    MergePolicy,
};
pub use diskstore::{concat_tables, DiskStore, PartitionHandle, ScanStats};
pub use error::{Result, StorageError};
pub use format::{ColumnExtent, PartitionFooter};
pub use kernel::{KernelCounters, CHUNK_ROWS};
pub use layout_model::{cost_vector_distance, LayoutId, LayoutModel};
pub use partition::{
    build_metadata, build_metadata_capped, PartitionMetadata, DEFAULT_DISTINCT_CAP,
};
pub use snapshot::{SnapshotCell, SnapshotPartition, SnapshotScan, TableSnapshot};
pub use table::{Table, TableBuilder};
pub use tiered::{Generation, PublishReceipt, RecoveryReport, TieredStore};
pub use wal::{Wal, WalRecord, WalRecovery};

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::BytesMut;
    use oreo_query::{ColumnType, Scalar, Schema};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        /// i64 block encoding round-trips arbitrary data.
        #[test]
        fn i64_block_round_trip(values in proptest::collection::vec(any::<i64>(), 0..200)) {
            let mut b = BytesMut::new();
            encode::encode_i64_block(&mut b, &values);
            let mut r = b.freeze();
            prop_assert_eq!(encode::decode_i64_block(&mut r).unwrap(), values);
        }

        /// u32 block encoding round-trips arbitrary data (RLE or packed).
        #[test]
        fn u32_block_round_trip(values in proptest::collection::vec(0u32..1 << 20, 0..300)) {
            let mut b = BytesMut::new();
            encode::encode_u32_block(&mut b, &values);
            let mut r = b.freeze();
            prop_assert_eq!(encode::decode_u32_block(&mut r).unwrap(), values);
        }

        /// Any single-byte corruption of an encoded partition is detected
        /// (checksum) — decoding never panics and never silently succeeds
        /// with wrong data.
        #[test]
        fn corruption_always_detected(
            rows in proptest::collection::vec((any::<i64>(), 0u32..4), 1..50),
            flip in any::<(usize, u8)>(),
        ) {
            let schema = Arc::new(Schema::from_pairs([
                ("v", ColumnType::Int),
                ("tag", ColumnType::Str),
            ]));
            let mut b = table::TableBuilder::new(Arc::clone(&schema));
            for (v, t) in &rows {
                b.push_row(&[Scalar::Int(*v), Scalar::from(["a","b","c","d"][*t as usize])]);
            }
            let table = b.finish();
            let mut bytes = format::encode_partition(&table).to_vec();
            let pos = flip.0 % bytes.len();
            let mask = if flip.1 == 0 { 1 } else { flip.1 };
            bytes[pos] ^= mask;
            prop_assert!(format::decode_partition(&schema, &bytes).is_err());
        }

        /// Partition metadata is *sound*: every row routed to partition b
        /// with a predicate matching it implies may_match(b) is true.
        #[test]
        fn metadata_never_skips_matching_rows(
            values in proptest::collection::vec(-100i64..100, 1..100),
            k in 1usize..5,
            lo in -100i64..100,
            span in 0i64..50,
        ) {
            let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
            let mut b = table::TableBuilder::new(Arc::clone(&schema));
            for v in &values {
                b.push_row(&[Scalar::Int(*v)]);
            }
            let table = b.finish();
            let assignment: Vec<u32> = (0..values.len()).map(|i| (i % k) as u32).collect();
            let meta = build_metadata(&table, &assignment, k);
            let pred = oreo_query::Predicate::new(vec![oreo_query::Atom::Between {
                col: 0,
                low: Scalar::Int(lo),
                high: Scalar::Int(lo + span),
            }]);
            for (row, v) in values.iter().enumerate() {
                if *v >= lo && *v <= lo + span {
                    let bid = assignment[row] as usize;
                    prop_assert!(meta[bid].may_match(&pred),
                        "row {row} (v={v}) matches but partition {bid} was prunable");
                }
            }
        }
    }
}
