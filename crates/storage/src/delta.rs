//! Live-ingestion delta state: in-memory delta runs, tombstones, and the
//! merge policies that bound write amplification.
//!
//! The serving path treats the base [`crate::TableSnapshot`] as immutable;
//! writes land here instead. An [`IngestOp`] batch becomes (a) zero or more
//! *tombstones* — global row ids whose rows are logically deleted — and (b)
//! a new *delta run*: a small, fully materialized [`SnapshotPartition`]
//! holding the appended rows, with the same pruning metadata base
//! partitions carry, so delta-aware scans prune runs exactly like
//! partitions. Updates are a tombstone plus a re-append under a fresh row
//! id, which keeps every run append-only and every global row id immutable
//! for its lifetime.
//!
//! Each batch is merged with a suffix of the existing runs under a
//! [`MergePolicy`]. [`MergePolicy::NaiveFullMerge`] rewrites everything
//! into one run per batch — minimal read cost, O(m) write amplification
//! over m batches. [`MergePolicy::KBinomial`] follows the *k-binomial
//! transform* of Mathieu et al., *Competitive Data-Structure Dynamization*
//! (arXiv:2011.02615): the run sizes (counted in batches, newest last) are
//! kept equal to the combinatorial-number-system decomposition
//! `m = C(c_k,k) + C(c_{k-1},k-1) + … + C(c_1,1)` with
//! `c_k > c_{k-1} > … > c_1 ≥ 0`, which maintains at most `k` runs and
//! amortized write amplification `O(k·m^{1/k})` — the second worst-case
//! guarantee the `dynamization` bench measures next to the paper's 2·H(n)
//! switching bound.
//!
//! A background fold (the reorganizer acting as compactor) calls
//! [`DeltaBuffer::freeze_for_fold`] to capture every run and tombstone up
//! to a sequence watermark, rebuilds the base table with the captured rows
//! folded in (and tombstoned rows carved out), and calls
//! [`DeltaBuffer::complete_fold`] to drop the captured state. Ingestion
//! continues during the fold: batches that arrive after the freeze merge
//! only among themselves (the frozen prefix is immutable), so the fold
//! never races the write path.

use crate::error::{Result, StorageError};
use crate::partition::build_metadata;
use crate::snapshot::SnapshotPartition;
use crate::table::{Table, TableBuilder};
use oreo_query::{Scalar, Schema};
use std::collections::HashSet;
use std::sync::Arc;

/// One write-path operation. Row ids are *global* ids — positions in the
/// original base table, or ids handed out for earlier appends — and stay
/// valid across folds (folds preserve ids).
#[derive(Clone, Debug, PartialEq)]
pub enum IngestOp {
    /// Append a new row (cells in schema order); it receives the next
    /// global row id.
    Append {
        /// Cell values, one per schema column.
        values: Vec<Scalar>,
    },
    /// Replace row `row`: tombstone it and re-append `values` under a
    /// fresh id.
    Update {
        /// The global row id being replaced.
        row: u32,
        /// Replacement cell values, one per schema column.
        values: Vec<Scalar>,
    },
    /// Logically delete row `row` (a tombstone until the next fold removes
    /// it physically).
    Delete {
        /// The global row id being deleted.
        row: u32,
    },
}

/// How ingest batches are merged into delta runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Merge every batch with all existing runs: one run at all times,
    /// minimal scan overhead, write amplification ~(m+1)/2 over m batches.
    NaiveFullMerge,
    /// The k-binomial transform (arXiv:2011.02615): at most `k` runs,
    /// amortized write amplification O(k·m^{1/k}).
    KBinomial {
        /// Number of binomial "slots" (k ≥ 1; k = 1 degenerates to
        /// [`MergePolicy::NaiveFullMerge`]).
        k: u32,
    },
}

/// C(n, k) in u64 (exact for the run counts this module sees).
fn binomial(n: u64, k: u64) -> u64 {
    if k == 0 {
        return 1;
    }
    if n < k {
        return 0;
    }
    let mut r: u64 = 1;
    for i in 0..k {
        // Exact at every step: a product of j consecutive integers is
        // divisible by j!.
        r = r * (n - i) / (i + 1);
    }
    r
}

/// The target run sizes (in batches, oldest first) for `m` total batches
/// under the k-binomial transform: the nonzero terms of the combinatorial
/// number system decomposition `m = C(c_k,k) + … + C(c_1,1)`.
pub fn kbinomial_sizes(m: u64, k: u64) -> Vec<u64> {
    assert!(k >= 1, "k-binomial needs k >= 1");
    let mut rem = m;
    let mut sizes = Vec::new();
    let mut prev_c = u64::MAX;
    for j in (1..=k).rev() {
        // Greedy: the largest c < prev_c with C(c, j) <= rem.
        let mut c = j - 1; // C(j-1, j) = 0
        while c + 1 < prev_c && binomial(c + 1, j) <= rem {
            c += 1;
        }
        let term = binomial(c, j);
        if term > 0 {
            sizes.push(term);
        }
        rem -= term;
        prev_c = c;
    }
    debug_assert_eq!(rem, 0, "combinatorial decomposition incomplete");
    sizes
}

impl MergePolicy {
    /// Given the batch counts of the current (unfrozen) runs, oldest first,
    /// decide how many *trailing* runs the next one-batch ingest merges
    /// with. Returns `t`: the new batch joins runs `len-t .. len` into a
    /// single new run (0 = the batch becomes its own run).
    pub fn plan(&self, batches: &[u64]) -> usize {
        match *self {
            MergePolicy::NaiveFullMerge => batches.len(),
            MergePolicy::KBinomial { k } => {
                let m: u64 = batches.iter().sum();
                let target = kbinomial_sizes(m + 1, u64::from(k.max(1)));
                let mut p = 0;
                while p < batches.len() && p < target.len() && batches[p] == target[p] {
                    p += 1;
                }
                // The combinatorial decompositions of m and m+1 share a
                // prefix, and the remainder collapses into exactly one run.
                debug_assert_eq!(target.len(), p + 1, "suffix must collapse to one run");
                debug_assert_eq!(
                    batches[p..].iter().sum::<u64>() + 1,
                    target[p],
                    "merged suffix size must match the decomposition"
                );
                batches.len() - p
            }
        }
    }

    /// Upper bound on the write amplification (rows written / rows
    /// ingested) after `m` equal-sized batches — the competitive guarantee
    /// the `dynamization` bench asserts against. For k-binomial this is
    /// `k·m^{1/k}` (+1 for the initial write of each batch); the naive
    /// policy has no sublinear bound and reports `(m+1)/2 + 1`.
    pub fn write_amplification_bound(&self, m: u64) -> f64 {
        let m = m.max(1) as f64;
        match *self {
            MergePolicy::NaiveFullMerge => (m + 1.0) / 2.0 + 1.0,
            MergePolicy::KBinomial { k } => {
                let k = f64::from(k.max(1));
                k * m.powf(1.0 / k) + 1.0
            }
        }
    }
}

/// One delta run: a materialized partition of appended rows plus the batch
/// count the merge policy tracks.
#[derive(Clone, Debug)]
pub struct DeltaRun {
    part: SnapshotPartition,
    batches: u64,
    /// Highest ingest sequence folded into this run.
    max_seq: u64,
}

impl DeltaRun {
    /// The run's materialized partition (rows carry global ids).
    pub fn part(&self) -> &SnapshotPartition {
        &self.part
    }

    /// How many ingest batches were merged into this run.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Highest ingest sequence folded into this run.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }
}

/// The scan-facing, immutable view of the delta state a snapshot carries:
/// extra partitions to union in, tombstoned row ids to subtract.
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    /// Delta runs as scan-ready partitions (memory-resident, pruned via
    /// their metadata like base partitions).
    pub runs: Vec<SnapshotPartition>,
    /// Logically deleted global row ids, sorted ascending, unique.
    pub tombstones: Arc<[u32]>,
    /// Total rows across `runs` (tombstoned delta rows included — they are
    /// subtracted at scan time like base rows).
    pub delta_rows: u64,
}

impl DeltaOverlay {
    /// True when the overlay changes nothing (no runs, no tombstones).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.tombstones.is_empty()
    }
}

/// What the fold (compacting reorganization) captured: everything the base
/// rewrite must absorb, frozen at a sequence watermark.
#[derive(Clone, Debug)]
pub struct FoldCapture {
    /// Captured runs (scan-ready partitions with global row ids).
    pub runs: Vec<SnapshotPartition>,
    /// Captured tombstones, sorted ascending, unique — rows the rewrite
    /// carves out of the base *and* out of the captured runs.
    pub tombstones: Vec<u32>,
    /// The highest ingest sequence included in the capture; WAL records
    /// `<= watermark` are covered by the folded base once it commits.
    pub watermark: u64,
    /// The row-id high-water mark at capture time; persisting it lets
    /// recovery re-assign identical ids when replaying records past the
    /// watermark.
    pub next_row: u64,
    /// Rows across the captured runs (compaction-work accounting).
    pub delta_rows: u64,
}

/// What one [`DeltaBuffer::apply`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReceipt {
    /// The batch's ingest sequence (monotone from 1).
    pub seq: u64,
    /// Rows appended (includes the re-append half of updates).
    pub appended: u64,
    /// Rows tombstoned (includes the delete half of updates).
    pub deleted: u64,
    /// Pre-existing runs merged with this batch.
    pub merged_runs: usize,
    /// Rows written building the new run (appended + re-written rows) —
    /// the write-amplification numerator.
    pub rows_written: u64,
    /// In-memory bytes of the new run (0 when the batch appended nothing).
    pub bytes_written: u64,
}

/// The mutable ingest state behind the engine's write path: delta runs,
/// tombstones, sequence/row-id counters, and the frozen prefix an in-flight
/// fold pins.
///
/// Single-writer: the engine serializes all access behind its ingest lock.
#[derive(Debug)]
pub struct DeltaBuffer {
    schema: Arc<Schema>,
    policy: MergePolicy,
    runs: Vec<DeltaRun>,
    /// (row id, sequence) pairs in tombstoning order (ascending seq).
    tombstones: Vec<(u32, u64)>,
    tomb_set: HashSet<u32>,
    frozen_runs: usize,
    frozen_tombstones: usize,
    fold_watermark: Option<u64>,
    next_row: u64,
    next_seq: u64,
    delta_rows: u64,
}

impl DeltaBuffer {
    /// A fresh buffer over a base table holding rows `0..next_row`.
    pub fn new(schema: Arc<Schema>, next_row: u64, policy: MergePolicy) -> Self {
        Self::resume(schema, next_row, 0, policy)
    }

    /// A buffer resuming after recovery: row ids continue at `next_row`
    /// and the first accepted batch gets sequence `folded + 1` — replaying
    /// WAL records past the folded watermark reproduces the pre-crash ids
    /// exactly.
    pub fn resume(schema: Arc<Schema>, next_row: u64, folded: u64, policy: MergePolicy) -> Self {
        Self {
            schema,
            policy,
            runs: Vec::new(),
            tombstones: Vec::new(),
            tomb_set: HashSet::new(),
            frozen_runs: 0,
            frozen_tombstones: 0,
            fold_watermark: None,
            next_row,
            next_seq: folded + 1,
            delta_rows: 0,
        }
    }

    /// The sequence the next accepted batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The global id the next appended row will get.
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// Rows across all delta runs (tombstoned delta rows included).
    pub fn delta_rows(&self) -> u64 {
        self.delta_rows
    }

    /// Live tombstones (not yet folded away).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Current delta runs, oldest first.
    pub fn runs(&self) -> impl Iterator<Item = &DeltaRun> {
        self.runs.iter()
    }

    /// Batch counts of the runs the merge policy currently operates on
    /// (the unfrozen suffix), oldest first.
    pub fn active_batches(&self) -> Vec<u64> {
        self.runs[self.frozen_runs..]
            .iter()
            .map(DeltaRun::batches)
            .collect()
    }

    /// The configured merge policy.
    pub fn policy(&self) -> MergePolicy {
        self.policy
    }

    /// True when there is nothing to scan or fold.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.tombstones.is_empty()
    }

    /// Validate a batch without applying it: referenced rows must exist
    /// (id below the high-water mark) and value arity must match the
    /// schema. Call before WAL-logging a batch, so the log never holds a
    /// record [`DeltaBuffer::apply`] would reject on replay.
    pub fn validate(&self, ops: &[IngestOp]) -> Result<()> {
        let mut next_row = self.next_row;
        for op in ops {
            match op {
                IngestOp::Append { values } => {
                    self.check_arity(values)?;
                    next_row += 1;
                }
                IngestOp::Update { row, values } => {
                    self.check_arity(values)?;
                    self.check_row(*row, next_row)?;
                    next_row += 1;
                }
                IngestOp::Delete { row } => self.check_row(*row, next_row)?,
            }
        }
        if next_row > u64::from(u32::MAX) {
            return Err(StorageError::Corrupt(
                "ingest: row-id space exhausted".into(),
            ));
        }
        Ok(())
    }

    fn check_arity(&self, values: &[Scalar]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(StorageError::Corrupt(format!(
                "ingest: {} values for {}-column schema",
                values.len(),
                self.schema.len()
            )));
        }
        Ok(())
    }

    fn check_row(&self, row: u32, next_row: u64) -> Result<()> {
        if u64::from(row) >= next_row {
            return Err(StorageError::Corrupt(format!(
                "ingest: row {row} beyond high-water mark {next_row}"
            )));
        }
        Ok(())
    }

    /// Apply one batch: tombstone deletes/updates, materialize the appended
    /// rows, and merge them with the trailing runs the policy selects.
    /// Validation errors leave the buffer unchanged (the batch is atomic).
    pub fn apply(&mut self, ops: &[IngestOp]) -> Result<ApplyReceipt> {
        self.validate(ops)?;
        let seq = self.next_seq;
        self.next_seq += 1;

        let mut builder = TableBuilder::new(Arc::clone(&self.schema));
        let mut new_ids: Vec<u32> = Vec::new();
        let mut receipt = ApplyReceipt {
            seq,
            ..Default::default()
        };
        for op in ops {
            match op {
                IngestOp::Append { values } => {
                    builder.push_row(values);
                    new_ids.push(self.next_row as u32);
                    self.next_row += 1;
                    receipt.appended += 1;
                }
                IngestOp::Update { row, values } => {
                    receipt.deleted += self.tombstone(*row, seq);
                    builder.push_row(values);
                    new_ids.push(self.next_row as u32);
                    self.next_row += 1;
                    receipt.appended += 1;
                }
                IngestOp::Delete { row } => {
                    receipt.deleted += self.tombstone(*row, seq);
                }
            }
        }
        if new_ids.is_empty() {
            return Ok(receipt); // pure-delete batch: no run work
        }
        let batch_table = builder.finish();

        let merge_n = self.policy.plan(&self.active_batches());
        let first = self.runs.len() - merge_n;
        debug_assert!(
            first >= self.frozen_runs,
            "merge must not touch frozen runs"
        );
        let merged_batches: u64 = self.runs[first..]
            .iter()
            .map(DeltaRun::batches)
            .sum::<u64>()
            + 1;
        let mut ids: Vec<u32> = self.runs[first..]
            .iter()
            .flat_map(|r| r.part.rows.iter().copied())
            .collect();
        ids.extend_from_slice(&new_ids);
        let data = if merge_n == 0 {
            batch_table
        } else {
            let mut parts: Vec<Table> = self.runs[first..]
                .iter()
                .map(|r| (*r.part.data).clone())
                .collect();
            parts.push(batch_table);
            crate::diskstore::concat_tables(&self.schema, &parts)?
        };
        let rows_written = data.num_rows() as u64;
        let bytes = data.memory_bytes() as u64;
        let meta = build_metadata(&data, &vec![0; data.num_rows()], 1)
            .pop()
            .expect("one partition of metadata");
        let part = SnapshotPartition {
            rows: ids.into(),
            data: Arc::new(data),
            meta,
            bytes,
            extents: None,
        };
        self.runs.truncate(first);
        self.runs.push(DeltaRun {
            part,
            batches: merged_batches,
            max_seq: seq,
        });
        self.delta_rows = self.runs.iter().map(|r| r.part.rows.len() as u64).sum();
        receipt.merged_runs = merge_n;
        receipt.rows_written = rows_written;
        receipt.bytes_written = bytes;
        Ok(receipt)
    }

    /// Record a tombstone; returns 1 if the row was newly tombstoned, 0 if
    /// it was already dead (idempotent).
    fn tombstone(&mut self, row: u32, seq: u64) -> u64 {
        if self.tomb_set.insert(row) {
            self.tombstones.push((row, seq));
            1
        } else {
            0
        }
    }

    /// The scan-facing overlay of the current state (`None` when empty, so
    /// empty-delta scans cost nothing extra).
    pub fn overlay(&self) -> Option<Arc<DeltaOverlay>> {
        if self.is_empty() {
            return None;
        }
        let mut tombs: Vec<u32> = self.tombstones.iter().map(|&(r, _)| r).collect();
        tombs.sort_unstable();
        Some(Arc::new(DeltaOverlay {
            runs: self.runs.iter().map(|r| r.part.clone()).collect(),
            tombstones: tombs.into(),
            delta_rows: self.delta_rows,
        }))
    }

    /// Freeze the current runs and tombstones for a fold: they become
    /// immutable (later batches merge only among themselves) until
    /// [`DeltaBuffer::complete_fold`] or [`DeltaBuffer::abort_fold`].
    /// Returns `None` — and freezes nothing — when there is nothing to
    /// fold.
    ///
    /// # Panics
    /// Panics if a fold is already in flight (the reorganizer is single-
    /// threaded).
    pub fn freeze_for_fold(&mut self) -> Option<FoldCapture> {
        assert!(self.fold_watermark.is_none(), "fold already in flight");
        if self.is_empty() {
            return None;
        }
        let watermark = self.next_seq - 1;
        self.frozen_runs = self.runs.len();
        self.frozen_tombstones = self.tombstones.len();
        self.fold_watermark = Some(watermark);
        let mut tombs: Vec<u32> = self.tombstones.iter().map(|&(r, _)| r).collect();
        tombs.sort_unstable();
        Some(FoldCapture {
            runs: self.runs.iter().map(|r| r.part.clone()).collect(),
            tombstones: tombs,
            watermark,
            next_row: self.next_row,
            delta_rows: self.delta_rows,
        })
    }

    /// Drop the frozen prefix after the fold committed: the captured runs
    /// and tombstones now live in the rewritten base.
    pub fn complete_fold(&mut self) {
        assert!(self.fold_watermark.is_some(), "no fold in flight");
        for (row, _) in self.tombstones.drain(..self.frozen_tombstones) {
            self.tomb_set.remove(&row);
        }
        self.runs.drain(..self.frozen_runs);
        self.frozen_runs = 0;
        self.frozen_tombstones = 0;
        self.fold_watermark = None;
        self.delta_rows = self.runs.iter().map(|r| r.part.rows.len() as u64).sum();
    }

    /// Unfreeze without dropping anything (the fold failed before its
    /// publish; the captured state is still only here).
    pub fn abort_fold(&mut self) {
        assert!(self.fold_watermark.is_some(), "no fold in flight");
        self.frozen_runs = 0;
        self.frozen_tombstones = 0;
        self.fold_watermark = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{ColumnType, Schema};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("tag", ColumnType::Str),
        ]))
    }

    fn append(v: i64) -> IngestOp {
        IngestOp::Append {
            values: vec![Scalar::Int(v), Scalar::from(["a", "b"][(v % 2) as usize])],
        }
    }

    #[test]
    fn kbinomial_k2_run_size_sequence() {
        // The verified k=2 sequence: [1] [1,1] [3] [3,1] [3,2] [6].
        let expect: [&[u64]; 6] = [&[1], &[1, 1], &[3], &[3, 1], &[3, 2], &[6]];
        for (m, sizes) in expect.iter().enumerate() {
            assert_eq!(
                kbinomial_sizes(m as u64 + 1, 2),
                sizes.to_vec(),
                "m={}",
                m + 1
            );
        }
    }

    #[test]
    fn plan_maintains_the_binomial_decomposition() {
        for k in 1u64..=4 {
            let policy = MergePolicy::KBinomial { k: k as u32 };
            let mut state: Vec<u64> = Vec::new();
            for m in 1u64..=300 {
                let t = policy.plan(&state);
                let merged: u64 = state.split_off(state.len() - t).iter().sum::<u64>() + 1;
                state.push(merged);
                assert_eq!(state, kbinomial_sizes(m, k), "k={k} m={m}");
                assert!(state.len() <= k as usize, "k={k} m={m}: too many runs");
            }
        }
    }

    #[test]
    fn kbinomial_beats_naive_on_write_amplification() {
        // Equal-size batches; total rows written per policy over m batches.
        let m = 64u64;
        let mut written = [0u64; 2];
        for (slot, policy) in [MergePolicy::KBinomial { k: 2 }, MergePolicy::NaiveFullMerge]
            .into_iter()
            .enumerate()
        {
            let mut state: Vec<u64> = Vec::new();
            for _ in 0..m {
                let t = policy.plan(&state);
                let merged: u64 = state.split_off(state.len() - t).iter().sum::<u64>() + 1;
                state.push(merged);
                written[slot] += merged;
            }
        }
        let wa_k = written[0] as f64 / m as f64;
        let wa_naive = written[1] as f64 / m as f64;
        assert!(wa_k < wa_naive, "k-binomial {wa_k} vs naive {wa_naive}");
        assert!(
            wa_k <= MergePolicy::KBinomial { k: 2 }.write_amplification_bound(m),
            "k-binomial WA {wa_k} exceeds its bound"
        );
    }

    #[test]
    fn apply_appends_merge_under_the_policy() {
        let mut buf = DeltaBuffer::new(schema(), 100, MergePolicy::KBinomial { k: 2 });
        // m=1..6 with one append per batch: run sizes follow the sequence.
        let expect: [&[u64]; 6] = [&[1], &[1, 1], &[3], &[3, 1], &[3, 2], &[6]];
        for (i, sizes) in expect.iter().enumerate() {
            let r = buf.apply(&[append(i as i64)]).unwrap();
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.appended, 1);
            assert_eq!(buf.active_batches(), sizes.to_vec(), "m={}", i + 1);
        }
        assert_eq!(buf.delta_rows(), 6);
        assert_eq!(buf.next_row(), 106);
        // ids are contiguous from the base high-water mark, oldest first
        let overlay = buf.overlay().unwrap();
        let all: Vec<u32> = overlay
            .runs
            .iter()
            .flat_map(|p| p.rows.iter().copied())
            .collect();
        assert_eq!(all, (100..106).collect::<Vec<u32>>());
    }

    #[test]
    fn naive_policy_keeps_one_run() {
        let mut buf = DeltaBuffer::new(schema(), 0, MergePolicy::NaiveFullMerge);
        let mut total_written = 0;
        for i in 0..5 {
            let r = buf.apply(&[append(i), append(i + 10)]).unwrap();
            total_written += r.rows_written;
            assert_eq!(buf.active_batches().len(), 1, "naive keeps one run");
        }
        // 2 + 4 + 6 + 8 + 10 rows written for 10 ingested
        assert_eq!(total_written, 30);
        assert_eq!(buf.delta_rows(), 10);
    }

    #[test]
    fn updates_and_deletes_tombstone_and_reappend() {
        let mut buf = DeltaBuffer::new(schema(), 10, MergePolicy::KBinomial { k: 2 });
        buf.apply(&[append(1), append(2)]).unwrap(); // ids 10, 11
        let r = buf
            .apply(&[
                IngestOp::Update {
                    row: 10,
                    values: vec![Scalar::Int(99), Scalar::from("a")],
                },
                IngestOp::Delete { row: 3 }, // base row
                IngestOp::Delete { row: 3 }, // duplicate: idempotent
            ])
            .unwrap();
        assert_eq!(r.appended, 1);
        assert_eq!(r.deleted, 2, "update tombstone + one delete");
        let overlay = buf.overlay().unwrap();
        assert_eq!(overlay.tombstones.as_ref(), &[3, 10]);
        assert_eq!(overlay.delta_rows, 3); // 10, 11, 12 (12 = re-append)
        assert_eq!(buf.next_row(), 13);
    }

    #[test]
    fn pure_delete_batch_creates_no_run() {
        let mut buf = DeltaBuffer::new(schema(), 10, MergePolicy::KBinomial { k: 2 });
        let r = buf.apply(&[IngestOp::Delete { row: 4 }]).unwrap();
        assert_eq!(r.seq, 1);
        assert_eq!(r.rows_written, 0);
        assert_eq!(buf.active_batches(), Vec::<u64>::new());
        assert_eq!(buf.overlay().unwrap().tombstones.as_ref(), &[4]);
        // the sequence still advanced
        assert_eq!(buf.apply(&[append(0)]).unwrap().seq, 2);
    }

    #[test]
    fn validation_rejects_bad_batches_atomically() {
        let mut buf = DeltaBuffer::new(schema(), 5, MergePolicy::NaiveFullMerge);
        // unknown row: nothing applied, sequence unmoved
        let err = buf
            .apply(&[append(1), IngestOp::Delete { row: 99 }])
            .unwrap_err();
        assert!(err.to_string().contains("beyond high-water mark"));
        assert!(buf.is_empty());
        assert_eq!(buf.next_seq(), 1);
        // arity mismatch
        let err = buf
            .apply(&[IngestOp::Append {
                values: vec![Scalar::Int(1)],
            }])
            .unwrap_err();
        assert!(err.to_string().contains("2-column schema"));
        // a row appended earlier in the same batch is referencable
        buf.apply(&[append(7), IngestOp::Delete { row: 5 }])
            .unwrap();
    }

    #[test]
    fn fold_lifecycle_freezes_and_drops_the_captured_prefix() {
        let mut buf = DeltaBuffer::new(schema(), 0, MergePolicy::KBinomial { k: 2 });
        buf.apply(&[append(1)]).unwrap();
        buf.apply(&[append(2), IngestOp::Delete { row: 0 }])
            .unwrap();
        let cap = buf.freeze_for_fold().unwrap();
        assert_eq!(cap.watermark, 2);
        assert_eq!(cap.delta_rows, 2);
        assert_eq!(cap.tombstones, vec![0]);
        assert_eq!(cap.next_row, 2);

        // ingestion continues during the fold; merges stay off the frozen
        // prefix (batch counts restart)
        buf.apply(&[append(3)]).unwrap();
        buf.apply(&[append(4)]).unwrap();
        assert_eq!(buf.active_batches(), vec![1, 1]);
        assert_eq!(buf.delta_rows(), 4);

        buf.complete_fold();
        assert_eq!(buf.delta_rows(), 2, "captured runs dropped");
        assert_eq!(buf.tombstone_count(), 0, "captured tombstone dropped");
        let overlay = buf.overlay().unwrap();
        let ids: Vec<u32> = overlay
            .runs
            .iter()
            .flat_map(|p| p.rows.iter().copied())
            .collect();
        assert_eq!(ids, vec![2, 3], "post-freeze rows survive");
    }

    #[test]
    fn abort_fold_keeps_everything() {
        let mut buf = DeltaBuffer::new(schema(), 0, MergePolicy::NaiveFullMerge);
        buf.apply(&[append(1), append(2)]).unwrap();
        let cap = buf.freeze_for_fold().unwrap();
        assert_eq!(cap.delta_rows, 2);
        buf.abort_fold();
        assert_eq!(buf.delta_rows(), 2);
        // a new fold can start and captures the same state
        let cap2 = buf.freeze_for_fold().unwrap();
        assert_eq!(cap2.delta_rows, 2);
        buf.complete_fold();
        assert!(buf.is_empty());
        assert!(buf.overlay().is_none());
    }

    #[test]
    fn empty_buffer_has_no_overlay_and_no_capture() {
        let mut buf = DeltaBuffer::new(schema(), 50, MergePolicy::KBinomial { k: 3 });
        assert!(buf.overlay().is_none());
        assert!(buf.freeze_for_fold().is_none());
    }

    #[test]
    fn resume_continues_sequence_and_row_ids() {
        let mut buf = DeltaBuffer::resume(schema(), 120, 7, MergePolicy::NaiveFullMerge);
        let r = buf.apply(&[append(1)]).unwrap();
        assert_eq!(r.seq, 8, "first post-recovery batch follows the watermark");
        let overlay = buf.overlay().unwrap();
        assert_eq!(overlay.runs[0].rows.as_ref(), &[120]);
    }

    #[test]
    fn run_metadata_prunes_like_base_partitions() {
        let mut buf = DeltaBuffer::new(schema(), 0, MergePolicy::NaiveFullMerge);
        buf.apply(&[append(5), append(6)]).unwrap();
        let overlay = buf.overlay().unwrap();
        let pred = oreo_query::Predicate::new(vec![oreo_query::Atom::Between {
            col: 0,
            low: Scalar::Int(100),
            high: Scalar::Int(200),
        }]);
        assert!(!overlay.runs[0].meta.may_match(&pred), "run prunable");
    }
}
