//! Byte-level encodings for the on-disk partition format.
//!
//! Partitions are written compressed — the paper's reorganization cost
//! explicitly includes "compressing and writing partitions" — with the
//! standard columnar toolbox: zigzag + LEB128 varints with delta coding for
//! integers, run-length encoding or bit-packing (whichever is smaller) for
//! dictionary codes, raw little-endian words for floats.

use bytes::{Buf, BufMut};

/// Encoding-layer errors surfaced as format corruption.
#[derive(Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(DecodeError(format!(
            "truncated input: need {n} more bytes for {what}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------- varint --

/// LEB128-encode a `u64`.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode a LEB128 `u64`.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        need(buf, 1, "varint")?;
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError("varint longer than 10 bytes".into()))
}

// ---------------------------------------------------------------- zigzag --

/// Map a signed integer to an unsigned one with small absolute values small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ------------------------------------------------------------ i64 blocks --

/// Delta + zigzag + varint encoding for an `i64` column block.
/// Layout: `count varint`, then `count` zigzag-varint deltas.
pub fn encode_i64_block(buf: &mut impl BufMut, values: &[i64]) {
    put_varint(buf, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        put_varint(buf, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
}

/// Decode a block produced by [`encode_i64_block`].
pub fn decode_i64_block(buf: &mut impl Buf) -> Result<Vec<i64>> {
    let count = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    if buf.chunk().len() == buf.remaining() {
        // Contiguous input (the only case the storage paths produce):
        // decode from the slice directly, one bounds check per varint
        // instead of two per byte through the `Buf` cursor.
        let consumed = decode_i64_deltas_slice(buf.chunk(), count, &mut out)?;
        buf.advance(consumed);
        return Ok(out);
    }
    let mut prev = 0i64;
    for _ in 0..count {
        let delta = unzigzag(get_varint(buf)?);
        prev = prev.wrapping_add(delta);
        out.push(prev);
    }
    Ok(out)
}

/// Slice fast path for [`decode_i64_block`]: decode `count` zigzag-varint
/// deltas from `s`, returning the bytes consumed. Column deltas are almost
/// always 1–2 bytes, so the single-byte case is kept branch-first.
fn decode_i64_deltas_slice(s: &[u8], count: usize, out: &mut Vec<i64>) -> Result<usize> {
    let mut i = 0usize;
    let mut prev = 0i64;
    for _ in 0..count {
        let Some(&b0) = s.get(i) else {
            return Err(DecodeError(
                "truncated input: need 1 more bytes for varint".into(),
            ));
        };
        i += 1;
        let mut v = u64::from(b0 & 0x7f);
        if b0 & 0x80 != 0 {
            let mut shift = 7u32;
            loop {
                let Some(&b) = s.get(i) else {
                    return Err(DecodeError(
                        "truncated input: need 1 more bytes for varint".into(),
                    ));
                };
                i += 1;
                v |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift >= 64 {
                    return Err(DecodeError("varint longer than 10 bytes".into()));
                }
            }
        }
        prev = prev.wrapping_add(unzigzag(v));
        out.push(prev);
    }
    Ok(i)
}

// ------------------------------------------------------------ f64 blocks --

/// Raw little-endian encoding for an `f64` column block.
pub fn encode_f64_block(buf: &mut impl BufMut, values: &[f64]) {
    put_varint(buf, values.len() as u64);
    for &v in values {
        buf.put_f64_le(v);
    }
}

/// Decode a block produced by [`encode_f64_block`].
pub fn decode_f64_block(buf: &mut impl Buf) -> Result<Vec<f64>> {
    let count = get_varint(buf)? as usize;
    let bytes = count.saturating_mul(8);
    need(buf, bytes, "f64 block")?;
    if buf.chunk().len() >= bytes {
        // Contiguous input: bulk-convert 8-byte words off the slice.
        let out: Vec<f64> = buf.chunk()[..bytes]
            .chunks_exact(8)
            .map(|w| f64::from_le_bytes(w.try_into().expect("8-byte chunk")))
            .collect();
        buf.advance(bytes);
        return Ok(out);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(buf.get_f64_le());
    }
    Ok(out)
}

// ------------------------------------------------------------ u32 blocks --

const CODES_RLE: u8 = 0;
const CODES_PACKED: u8 = 1;

/// Encode dictionary codes, choosing between RLE (clustered data after a
/// good layout!) and bit-packing, whichever is smaller.
/// Layout: `count varint`, `tag u8`, payload.
pub fn encode_u32_block(buf: &mut impl BufMut, values: &[u32]) {
    put_varint(buf, values.len() as u64);
    let rle = rle_encode(values);
    let packed = pack_encode(values);
    if rle.len() <= packed.len() {
        buf.put_u8(CODES_RLE);
        buf.put_slice(&rle);
    } else {
        buf.put_u8(CODES_PACKED);
        buf.put_slice(&packed);
    }
}

/// Decode a block produced by [`encode_u32_block`].
pub fn decode_u32_block(buf: &mut impl Buf) -> Result<Vec<u32>> {
    let count = get_varint(buf)? as usize;
    need(buf, 1, "codes tag")?;
    match buf.get_u8() {
        CODES_RLE => rle_decode(buf, count),
        CODES_PACKED => pack_decode(buf, count),
        tag => Err(DecodeError(format!("unknown codes encoding tag {tag}"))),
    }
}

fn rle_encode(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        put_varint(&mut out, run as u64);
        put_varint(&mut out, u64::from(v));
        i += run;
    }
    out
}

fn rle_decode(buf: &mut impl Buf, count: usize) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let run = get_varint(buf)? as usize;
        if run == 0 || out.len() + run > count {
            return Err(DecodeError("RLE run overflows block".into()));
        }
        let v = get_varint(buf)?;
        let v = u32::try_from(v).map_err(|_| DecodeError("RLE value exceeds u32".into()))?;
        out.extend(std::iter::repeat_n(v, run));
    }
    Ok(out)
}

fn bits_needed(max: u32) -> u32 {
    32 - max.leading_zeros().min(31)
}

fn pack_encode(values: &[u32]) -> Vec<u8> {
    let max = values.iter().copied().max().unwrap_or(0);
    let width = bits_needed(max).max(1);
    let mut out = Vec::with_capacity(2 + values.len() * width as usize / 8);
    out.push(width as u8);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        acc |= u64::from(v) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xff) as u8);
    }
    out
}

fn pack_decode(buf: &mut impl Buf, count: usize) -> Result<Vec<u32>> {
    need(buf, 1, "pack width")?;
    let width = u32::from(buf.get_u8());
    if width == 0 || width > 32 {
        return Err(DecodeError(format!("invalid pack width {width}")));
    }
    let total_bits = (count as u64) * u64::from(width);
    let total_bytes = total_bits.div_ceil(8) as usize;
    need(buf, total_bytes, "packed codes")?;
    let mut out = Vec::with_capacity(count);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    let mask: u64 = if width == 32 {
        u32::MAX as u64
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..count {
        while acc_bits < width {
            acc |= u64::from(buf.get_u8()) << acc_bits;
            acc_bits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= width;
        acc_bits -= width;
    }
    Ok(out)
}

// --------------------------------------------------------------- strings --

/// Length-prefixed UTF-8 string list (dictionary payloads).
pub fn encode_str_list(buf: &mut impl BufMut, values: &[String]) {
    put_varint(buf, values.len() as u64);
    for v in values {
        put_varint(buf, v.len() as u64);
        buf.put_slice(v.as_bytes());
    }
}

/// Decode a list produced by [`encode_str_list`].
pub fn decode_str_list(buf: &mut impl Buf) -> Result<Vec<String>> {
    let count = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = get_varint(buf)? as usize;
        need(buf, len, "string bytes")?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        let s = String::from_utf8(bytes)
            .map_err(|_| DecodeError("invalid UTF-8 in dictionary".into()))?;
        out.push(s);
    }
    Ok(out)
}

// -------------------------------------------------------------- checksum --

/// FNV-1a 64-bit, used as the partition-file integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            let mut r = b.freeze();
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn varint_truncated_fails() {
        let mut b = BytesMut::new();
        put_varint(&mut b, u64::MAX);
        let frozen = b.freeze();
        let mut r = frozen.slice(0..frozen.len() - 1);
        assert!(get_varint(&mut r).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // small magnitudes stay small
        assert!(zigzag(-2) < 8);
    }

    #[test]
    fn i64_block_round_trip() {
        let values: Vec<i64> = vec![5, 5, 6, 100, -3, i64::MAX, i64::MIN, 0];
        let mut b = BytesMut::new();
        encode_i64_block(&mut b, &values);
        let mut r = b.freeze();
        assert_eq!(decode_i64_block(&mut r).unwrap(), values);
    }

    #[test]
    fn sorted_i64_block_is_compact() {
        let values: Vec<i64> = (0..1000).collect();
        let mut b = BytesMut::new();
        encode_i64_block(&mut b, &values);
        // deltas of 1 → 1 byte each plus small header
        assert!(b.len() < 1010, "got {}", b.len());
    }

    #[test]
    fn f64_block_round_trip() {
        let values = vec![0.0, -1.5, f64::INFINITY, f64::NAN];
        let mut b = BytesMut::new();
        encode_f64_block(&mut b, &values);
        let mut r = b.freeze();
        let out = decode_f64_block(&mut r).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[1], -1.5);
        assert!(out[3].is_nan());
    }

    #[test]
    fn u32_block_rle_wins_on_runs() {
        let values = vec![7u32; 10_000];
        let mut b = BytesMut::new();
        encode_u32_block(&mut b, &values);
        assert!(b.len() < 32, "runs should RLE, got {}", b.len());
        let mut r = b.freeze();
        assert_eq!(decode_u32_block(&mut r).unwrap(), values);
    }

    #[test]
    fn u32_block_packing_wins_on_noise() {
        let values: Vec<u32> = (0..1000u32).map(|i| i % 7).collect();
        let mut b = BytesMut::new();
        encode_u32_block(&mut b, &values);
        // 3 bits per value ≈ 375 bytes; RLE would be ~2000
        assert!(b.len() < 500, "got {}", b.len());
        let mut r = b.freeze();
        assert_eq!(decode_u32_block(&mut r).unwrap(), values);
    }

    #[test]
    fn u32_block_empty() {
        let mut b = BytesMut::new();
        encode_u32_block(&mut b, &[]);
        let mut r = b.freeze();
        assert_eq!(decode_u32_block(&mut r).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn str_list_round_trip() {
        let values: Vec<String> = ["", "a", "hello world", "日本語"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut b = BytesMut::new();
        encode_str_list(&mut b, &values);
        let mut r = b.freeze();
        assert_eq!(decode_str_list(&mut r).unwrap(), values);
    }

    #[test]
    fn str_list_rejects_invalid_utf8() {
        let mut b = BytesMut::new();
        put_varint(&mut b, 1); // one string
        put_varint(&mut b, 2); // of two bytes
        b.put_slice(&[0xff, 0xfe]);
        let mut r = b.freeze();
        assert!(decode_str_list(&mut r).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
