//! [`LayoutModel`] — the metadata-only view of a data layout.
//!
//! This is the "state" the MTS machinery works with: evaluating the service
//! cost `c(s, q)` of a query on a layout requires only the layout's
//! partition metadata, never the data itself (§III-B of the paper, the
//! `eval_skipped` functionality).

use crate::partition::PartitionMetadata;
use oreo_query::Query;
use std::sync::Arc;

/// Monotonically increasing identifier for layouts created during a run.
pub type LayoutId = u64;

/// A costed, metadata-only description of one data layout.
#[derive(Clone, Debug)]
pub struct LayoutModel {
    id: LayoutId,
    /// Human-readable provenance, e.g. `"qdtree(window@1400)"`.
    name: String,
    partitions: Arc<[PartitionMetadata]>,
    total_rows: f64,
}

impl LayoutModel {
    /// A model named `name` over the given partition metadata.
    pub fn new(id: LayoutId, name: impl Into<String>, partitions: Vec<PartitionMetadata>) -> Self {
        let total_rows = partitions.iter().map(|p| p.rows).sum();
        Self {
            id,
            name: name.into(),
            partitions: partitions.into(),
            total_rows,
        }
    }

    /// The layout's stable identifier.
    pub fn id(&self) -> LayoutId {
        self.id
    }

    /// The layout's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The per-partition skipping metadata.
    pub fn partitions(&self) -> &[PartitionMetadata] {
        &self.partitions
    }

    /// Total rows across all partitions.
    pub fn total_rows(&self) -> f64 {
        self.total_rows
    }

    /// Partition ids that must be read for `query` (cannot be skipped).
    pub fn relevant_partitions(&self, query: &Query) -> Vec<usize> {
        self.partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.may_match(&query.predicate))
            .map(|(i, _)| i)
            .collect()
    }

    /// Service cost `c(s, q) ∈ [0, 1]`: the fraction of rows living in
    /// partitions that cannot be skipped. This is the paper's query-cost
    /// proxy (§III-A).
    pub fn cost(&self, query: &Query) -> f64 {
        if self.total_rows <= 0.0 {
            return 0.0;
        }
        let accessed: f64 = self
            .partitions
            .iter()
            .filter(|p| p.may_match(&query.predicate))
            .map(|p| p.rows)
            .sum();
        accessed / self.total_rows
    }

    /// Fraction of rows skipped: `1 - cost`.
    pub fn skipped_fraction(&self, query: &Query) -> f64 {
        1.0 - self.cost(query)
    }

    /// Cost vector over a query sample — the representation Algorithm 5
    /// compares layouts with.
    pub fn cost_vector(&self, queries: &[Query]) -> Vec<f64> {
        queries.iter().map(|q| self.cost(q)).collect()
    }

    /// Mean cost over a workload sample.
    pub fn mean_cost(&self, queries: &[Query]) -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        self.cost_vector(queries).iter().sum::<f64>() / queries.len() as f64
    }
}

/// Normalized L1 distance between two cost vectors (Algorithm 5, line 6:
/// `‖c − cᵢ‖₁ / dim(c)`). Both vectors must have the same length.
pub fn cost_vector_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cost vectors must align");
    if a.is_empty() {
        return 0.0;
    }
    let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    l1 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::build_metadata;
    use crate::table::TableBuilder;
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};

    fn model() -> (LayoutModel, crate::table::Table) {
        let s = std::sync::Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(std::sync::Arc::clone(&s));
        for i in 0..100i64 {
            b.push_row(&[Scalar::Int(i)]);
        }
        let t = b.finish();
        // 4 partitions of 25 rows by value range
        let assignment: Vec<u32> = (0..100).map(|i| (i / 25) as u32).collect();
        let meta = build_metadata(&t, &assignment, 4);
        (LayoutModel::new(1, "range(v)", meta), t)
    }

    #[test]
    fn cost_is_fraction_of_rows_in_relevant_partitions() {
        let (m, t) = model();
        let q = QueryBuilder::new(t.schema()).between("v", 0, 24).build();
        assert_eq!(m.relevant_partitions(&q), vec![0]);
        assert!((m.cost(&q) - 0.25).abs() < 1e-12);
        let q2 = QueryBuilder::new(t.schema()).between("v", 20, 30).build();
        assert_eq!(m.relevant_partitions(&q2), vec![0, 1]);
        assert!((m.cost(&q2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_scan_costs_one() {
        let (m, _) = model();
        assert_eq!(m.cost(&Query::full_scan()), 1.0);
        assert_eq!(m.skipped_fraction(&Query::full_scan()), 0.0);
    }

    #[test]
    fn cost_vector_and_mean() {
        let (m, t) = model();
        let qs = vec![
            QueryBuilder::new(t.schema()).between("v", 0, 24).build(),
            Query::full_scan(),
        ];
        let cv = m.cost_vector(&qs);
        assert_eq!(cv.len(), 2);
        assert!((m.mean_cost(&qs) - (0.25 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_normalized_l1() {
        let a = [0.0, 1.0, 0.5];
        let b = [1.0, 1.0, 0.0];
        assert!((cost_vector_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(cost_vector_distance(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn distance_requires_same_length() {
        cost_vector_distance(&[0.0], &[0.0, 1.0]);
    }
}
