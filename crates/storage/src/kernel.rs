//! Vectorized scan kernels: chunked, selection-vector predicate evaluation
//! over decoded columns.
//!
//! The row-at-a-time scan interpreter re-dispatches on the atom list and the
//! column representation for every row. The kernel layer does that dispatch
//! once per (column plan, physical column) pair and then streams each
//! partition in [`CHUNK_ROWS`]-row chunks:
//!
//! 1. each column's [`oreo_query::ColumnPlan`] is specialized against the
//!    column's physical representation into a column kernel — tight
//!    typed loops over `&[i64]` / `&[f64]`, or a precomputed per-dictionary
//!    mask for string columns (the plan is evaluated once per *distinct*
//!    value, then rows test one `bool` per code);
//! 2. the first kernel fills a reusable `u32` selection vector with the
//!    chunk-local positions that pass; each further kernel filters the
//!    surviving positions in place (the conjunctive AND);
//! 3. kernels run cheapest-selectivity-first: observed pass rates reorder
//!    the AND after every chunk, so the most selective column is evaluated
//!    on all rows and the rest only on survivors;
//! 4. global row ids are materialized *late* — only survivors of the full
//!    conjunction touch the partition's row-id array.
//!
//! [`KernelCounters`] reports how much work the short-circuiting saved,
//! which the serving layer surfaces through `SnapshotScan`.

use crate::column::Column;
use oreo_query::{ColumnPlan, CompiledPredicate};
use std::cmp::Ordering;

/// Rows evaluated per selection-vector chunk. 1024 positions keep the
/// selection vector (4 KiB) and one `i64` column chunk (8 KiB) resident in
/// L1 while still amortizing the per-chunk reorder bookkeeping.
pub const CHUNK_ROWS: usize = 1024;

/// Work counters of one or more kernel scans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Chunks driven through the kernel pipeline.
    pub chunks_evaluated: u64,
    /// Row × kernel evaluations skipped because the selection vector had
    /// already shrunk when a later kernel in the AND order ran (the work a
    /// row-at-a-time interpreter with short-circuit `&&` would also skip,
    /// plus whole-kernel skips once a chunk's selection empties).
    pub rows_short_circuited: u64,
}

/// One predicate column specialized against one physical column.
enum ColumnKernel<'a> {
    /// The plan admits no value of this column's type: nothing matches.
    Never,
    /// Inclusive `lo..=hi` over an `i64` column (strict bounds folded into
    /// the endpoints).
    IntRange { values: &'a [i64], lo: i64, hi: i64 },
    /// Sorted membership set over an `i64` column.
    IntSet { values: &'a [i64], set: Vec<i64> },
    /// Range with `total_cmp` endpoint semantics over an `f64` column
    /// (`(endpoint, inclusive)`, absent bound = unbounded).
    FloatRange {
        values: &'a [f64],
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    },
    /// Membership set over an `f64` column. `total_cmp` equality is bit
    /// equality, so members are sorted bit patterns.
    FloatSet { values: &'a [f64], set: Vec<u64> },
    /// Any plan over a dictionary column: the plan pre-evaluated per
    /// dictionary entry, rows test `mask[code]`.
    CodeMask { codes: &'a [u32], mask: Vec<bool> },
}

/// Branch-light full-chunk evaluation into an empty selection vector.
#[inline]
fn fill_with(len: usize, sel: &mut Vec<u32>, mut pred: impl FnMut(usize) -> bool) {
    sel.clear();
    sel.resize(len, 0);
    let mut n = 0usize;
    for i in 0..len {
        sel[n] = i as u32;
        n += usize::from(pred(i));
    }
    sel.truncate(n);
}

/// In-place filtering of an existing selection vector (order preserved).
#[inline]
fn filter_with(sel: &mut Vec<u32>, mut pred: impl FnMut(usize) -> bool) {
    let mut n = 0usize;
    for j in 0..sel.len() {
        let i = sel[j];
        sel[n] = i;
        n += usize::from(pred(i as usize));
    }
    sel.truncate(n);
}

#[inline]
fn float_bound_ok(x: f64, bound: &Option<(f64, bool)>, pass: Ordering) -> bool {
    match bound {
        None => true,
        Some((b, inclusive)) => {
            let ord = x.total_cmp(b);
            ord == pass || (*inclusive && ord == Ordering::Equal)
        }
    }
}

impl<'a> ColumnKernel<'a> {
    /// Specialize `plan` against the physical `column`.
    fn build(plan: &ColumnPlan, column: &'a Column) -> ColumnKernel<'a> {
        match column {
            Column::Int(values) => match plan {
                ColumnPlan::Never => ColumnKernel::Never,
                ColumnPlan::Range { lo, hi } => {
                    // Fold strict endpoints into the inclusive [lo, hi]
                    // form; a strict bound at the domain edge is empty.
                    let lo_i = match lo {
                        None => i64::MIN,
                        Some(b) => match (b.value.as_int(), b.inclusive) {
                            (Some(v), true) => v,
                            (Some(i64::MAX), false) => return ColumnKernel::Never,
                            (Some(v), false) => v + 1,
                            (None, _) => return ColumnKernel::Never,
                        },
                    };
                    let hi_i = match hi {
                        None => i64::MAX,
                        Some(b) => match (b.value.as_int(), b.inclusive) {
                            (Some(v), true) => v,
                            (Some(i64::MIN), false) => return ColumnKernel::Never,
                            (Some(v), false) => v - 1,
                            (None, _) => return ColumnKernel::Never,
                        },
                    };
                    if lo_i > hi_i {
                        ColumnKernel::Never
                    } else {
                        ColumnKernel::IntRange {
                            values,
                            lo: lo_i,
                            hi: hi_i,
                        }
                    }
                }
                ColumnPlan::Set(members) => {
                    // Members arrive sorted by Scalar order; ints sort
                    // naturally within it, so the filtered list is sorted.
                    let set: Vec<i64> = members.iter().filter_map(|m| m.as_int()).collect();
                    if set.is_empty() {
                        ColumnKernel::Never
                    } else {
                        ColumnKernel::IntSet { values, set }
                    }
                }
            },
            Column::Float(values) => match plan {
                ColumnPlan::Never => ColumnKernel::Never,
                ColumnPlan::Range { lo, hi } => {
                    let as_bound = |b: &Option<oreo_query::Bound>| match b {
                        None => Ok(None),
                        Some(b) => match b.value.as_float() {
                            Some(v) => Ok(Some((v, b.inclusive))),
                            None => Err(()),
                        },
                    };
                    match (as_bound(lo), as_bound(hi)) {
                        (Ok(lo), Ok(hi)) => ColumnKernel::FloatRange { values, lo, hi },
                        _ => ColumnKernel::Never,
                    }
                }
                ColumnPlan::Set(members) => {
                    let mut set: Vec<u64> = members
                        .iter()
                        .filter_map(|m| m.as_float().map(f64::to_bits))
                        .collect();
                    set.sort_unstable();
                    if set.is_empty() {
                        ColumnKernel::Never
                    } else {
                        ColumnKernel::FloatSet { values, set }
                    }
                }
            },
            Column::Str(dict) => {
                // Evaluate the plan once per distinct dictionary entry;
                // rows then test a single bool per code.
                let mask: Vec<bool> = dict.dict().iter().map(|s| plan.matches_str(s)).collect();
                if mask.iter().any(|&m| m) {
                    ColumnKernel::CodeMask {
                        codes: dict.codes(),
                        mask,
                    }
                } else {
                    ColumnKernel::Never
                }
            }
        }
    }

    /// Evaluate rows `base..base + len` into `sel` (chunk-local positions).
    fn fill(&self, base: usize, len: usize, sel: &mut Vec<u32>) {
        match self {
            ColumnKernel::Never => sel.clear(),
            ColumnKernel::IntRange { values, lo, hi } => {
                let v = &values[base..base + len];
                fill_with(len, sel, |i| v[i] >= *lo && v[i] <= *hi)
            }
            ColumnKernel::IntSet { values, set } => {
                let v = &values[base..base + len];
                fill_with(len, sel, |i| set.binary_search(&v[i]).is_ok())
            }
            ColumnKernel::FloatRange { values, lo, hi } => {
                let v = &values[base..base + len];
                fill_with(len, sel, |i| {
                    float_bound_ok(v[i], lo, Ordering::Greater)
                        && float_bound_ok(v[i], hi, Ordering::Less)
                })
            }
            ColumnKernel::FloatSet { values, set } => {
                let v = &values[base..base + len];
                fill_with(len, sel, |i| set.binary_search(&v[i].to_bits()).is_ok())
            }
            ColumnKernel::CodeMask { codes, mask } => {
                let c = &codes[base..base + len];
                fill_with(len, sel, |i| mask[c[i] as usize])
            }
        }
    }

    /// Keep only the surviving positions of `sel` (chunk-local, relative to
    /// `base`).
    fn filter(&self, base: usize, sel: &mut Vec<u32>) {
        match self {
            ColumnKernel::Never => sel.clear(),
            ColumnKernel::IntRange { values, lo, hi } => filter_with(sel, |i| {
                let x = values[base + i];
                x >= *lo && x <= *hi
            }),
            ColumnKernel::IntSet { values, set } => {
                filter_with(sel, |i| set.binary_search(&values[base + i]).is_ok())
            }
            ColumnKernel::FloatRange { values, lo, hi } => filter_with(sel, |i| {
                let x = values[base + i];
                float_bound_ok(x, lo, Ordering::Greater) && float_bound_ok(x, hi, Ordering::Less)
            }),
            ColumnKernel::FloatSet { values, set } => filter_with(sel, |i| {
                set.binary_search(&values[base + i].to_bits()).is_ok()
            }),
            ColumnKernel::CodeMask { codes, mask } => {
                filter_with(sel, |i| mask[codes[base + i] as usize])
            }
        }
    }
}

/// Observed pass rate of a kernel (0.5 when it has never been evaluated, so
/// unknown kernels sort between proven-selective and proven-permissive
/// ones).
#[inline]
fn pass_rate(evaluated: u64, passed: u64) -> f64 {
    if evaluated == 0 {
        0.5
    } else {
        passed as f64 / evaluated as f64
    }
}

/// Scan one partition with [`CHUNK_ROWS`]-row chunks. See
/// [`scan_partition_chunked`].
pub fn scan_partition(
    compiled: &CompiledPredicate,
    cols: &[&Column],
    rows: &[u32],
    sel: &mut Vec<u32>,
    matches: &mut Vec<u32>,
    counters: &mut KernelCounters,
) {
    scan_partition_chunked(compiled, cols, rows, CHUNK_ROWS, sel, matches, counters)
}

/// Scan one partition's decoded columns with the compiled predicate,
/// appending the global row ids of matching rows to `matches`.
///
/// `cols[i]` must be the physical column for `compiled.columns()[i]` and
/// `rows` the partition's global row ids (`rows.len()` rows per column).
/// `sel` is caller-owned scratch so repeated partition scans reuse one
/// selection-vector allocation. Appended ids are ascending *within* the
/// partition iff `rows` is; callers sort the full result as before.
///
/// An empty (tautological) compiled predicate matches every row without
/// evaluating any kernel — `counters` does not move.
pub fn scan_partition_chunked(
    compiled: &CompiledPredicate,
    cols: &[&Column],
    rows: &[u32],
    chunk_rows: usize,
    sel: &mut Vec<u32>,
    matches: &mut Vec<u32>,
    counters: &mut KernelCounters,
) {
    debug_assert_eq!(compiled.columns().len(), cols.len(), "column slice skew");
    debug_assert!(chunk_rows > 0, "chunk size");
    if compiled.is_tautology() {
        matches.extend_from_slice(rows);
        return;
    }
    let kernels: Vec<ColumnKernel<'_>> = compiled
        .columns()
        .iter()
        .zip(cols)
        .map(|(cp, col)| {
            debug_assert_eq!(col.len(), rows.len(), "column row-count skew");
            ColumnKernel::build(cp.plan(), col)
        })
        .collect();
    let n = kernels.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut evaluated = vec![0u64; n];
    let mut passed = vec![0u64; n];
    let nrows = rows.len();
    let mut base = 0usize;
    while base < nrows {
        let len = chunk_rows.min(nrows - base);
        counters.chunks_evaluated += 1;
        for (pos, &ki) in order.iter().enumerate() {
            if pos == 0 {
                evaluated[ki] += len as u64;
                kernels[ki].fill(base, len, sel);
            } else {
                counters.rows_short_circuited += (len - sel.len()) as u64;
                if !sel.is_empty() {
                    evaluated[ki] += sel.len() as u64;
                    kernels[ki].filter(base, sel);
                }
            }
            passed[ki] += sel.len() as u64;
        }
        for &i in sel.iter() {
            matches.push(rows[base + i as usize]);
        }
        if n > 1 {
            // Cheapest-selectivity-first: the kernel that has been letting
            // the fewest rows through runs first on the next chunk.
            order.sort_by(|&a, &b| {
                pass_rate(evaluated[a], passed[a]).total_cmp(&pass_rate(evaluated[b], passed[b]))
            });
        }
        base += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DictBuilder;
    use oreo_query::{Atom, CompareOp, Predicate, Scalar};

    fn compile(atoms: Vec<Atom>) -> CompiledPredicate {
        CompiledPredicate::compile(&Predicate::new(atoms))
    }

    fn between(col: usize, lo: i64, hi: i64) -> Atom {
        Atom::Between {
            col,
            low: Scalar::Int(lo),
            high: Scalar::Int(hi),
        }
    }

    /// Run a kernel scan over single-partition columns with global row ids
    /// `0..n`, at the given chunk size.
    fn run(
        compiled: &CompiledPredicate,
        cols: &[&Column],
        n: usize,
        chunk: usize,
    ) -> (Vec<u32>, KernelCounters) {
        let rows: Vec<u32> = (0..n as u32).collect();
        let mut sel = Vec::new();
        let mut matches = Vec::new();
        let mut counters = KernelCounters::default();
        scan_partition_chunked(
            compiled,
            cols,
            &rows,
            chunk,
            &mut sel,
            &mut matches,
            &mut counters,
        );
        (matches, counters)
    }

    #[test]
    fn int_range_matches_interpreter_across_chunk_boundaries() {
        let values: Vec<i64> = (0..100).map(|i| (i * 7) % 50).collect();
        let col = Column::Int(values.clone());
        let c = compile(vec![between(0, 10, 30)]);
        let expected: Vec<u32> = (0..100u32)
            .filter(|&i| (10..=30).contains(&values[i as usize]))
            .collect();
        for chunk in [1, 3, 7, 64, 100, 1000] {
            let (matches, counters) = run(&c, &[&col], 100, chunk);
            assert_eq!(matches, expected, "chunk={chunk}");
            assert_eq!(counters.chunks_evaluated, 100u64.div_ceil(chunk as u64));
        }
    }

    #[test]
    fn strict_int_bounds_fold_into_endpoints() {
        let col = Column::Int((0..20).collect());
        let c = compile(vec![
            Atom::Compare {
                col: 0,
                op: CompareOp::Gt,
                value: Scalar::Int(5),
            },
            Atom::Compare {
                col: 0,
                op: CompareOp::Lt,
                value: Scalar::Int(9),
            },
        ]);
        let (matches, _) = run(&c, &[&col], 20, 1024);
        assert_eq!(matches, vec![6, 7, 8]);
    }

    #[test]
    fn int_set_kernel() {
        let col = Column::Int(vec![5, 1, 9, 5, 3, 9, 9]);
        let c = compile(vec![Atom::InSet {
            col: 0,
            set: vec![Scalar::Int(9), Scalar::Int(5)],
        }]);
        let (matches, _) = run(&c, &[&col], 7, 4);
        assert_eq!(matches, vec![0, 2, 3, 5, 6]);
    }

    #[test]
    fn float_range_uses_total_cmp() {
        let col = Column::Float(vec![-0.0, 0.0, 1.5, f64::NAN, 2.0]);
        let c = compile(vec![Atom::Compare {
            col: 0,
            op: CompareOp::Ge,
            value: Scalar::Float(0.0),
        }]);
        // total_cmp: -0.0 < 0.0; NaN > everything
        let (matches, _) = run(&c, &[&col], 5, 1024);
        assert_eq!(matches, vec![1, 2, 3, 4]);
    }

    #[test]
    fn float_set_matches_by_bits() {
        let col = Column::Float(vec![1.0, 2.0, -0.0, 0.0]);
        let c = compile(vec![Atom::InSet {
            col: 0,
            set: vec![Scalar::Float(0.0), Scalar::Float(2.0)],
        }]);
        let (matches, _) = run(&c, &[&col], 4, 1024);
        assert_eq!(matches, vec![1, 3], "-0.0 is distinct from 0.0");
    }

    #[test]
    fn dict_mask_covers_string_plans() {
        let mut b = DictBuilder::new();
        for s in ["eu", "us", "apac", "eu", "us", "eu"] {
            b.push(s);
        }
        let col = Column::Str(b.finish());
        let c = compile(vec![Atom::InSet {
            col: 0,
            set: vec![Scalar::from("eu"), Scalar::from("apac")],
        }]);
        let (matches, _) = run(&c, &[&col], 6, 2);
        assert_eq!(matches, vec![0, 2, 3, 5]);
    }

    #[test]
    fn type_mismatch_between_plan_and_column_matches_nothing() {
        let col = Column::Int((0..10).collect());
        let c = compile(vec![Atom::Compare {
            col: 0,
            op: CompareOp::Ge,
            value: Scalar::from("a"),
        }]);
        let (matches, _) = run(&c, &[&col], 10, 1024);
        assert!(matches.is_empty());
    }

    #[test]
    fn tautology_materializes_all_rows_without_chunks() {
        let c = compile(vec![]);
        let rows: Vec<u32> = vec![4, 9, 2];
        let mut sel = Vec::new();
        let mut matches = Vec::new();
        let mut counters = KernelCounters::default();
        scan_partition(&c, &[], &rows, &mut sel, &mut matches, &mut counters);
        assert_eq!(matches, rows);
        assert_eq!(counters, KernelCounters::default());
    }

    #[test]
    fn multi_column_and_short_circuits_and_reorders() {
        let n = 4096usize;
        // col 0 passes ~1/64 of rows, col 1 passes ~1/3 — but col 1 comes
        // first in the predicate, so the adaptive order must flip them.
        let c0 = Column::Int((0..n as i64).map(|i| i % 64).collect());
        let c1 = Column::Int((0..n as i64).map(|i| i % 3).collect());
        let c = compile(vec![between(1, 0, 0), between(0, 0, 0)]);
        let cols = [&c1, &c0]; // aligned with first-use order: col 1, col 0
        let (matches, counters) = run(&c, &cols, n, CHUNK_ROWS);
        let expected: Vec<u32> = (0..n as u32).filter(|i| i % 192 == 0).collect();
        assert_eq!(matches, expected);
        assert_eq!(counters.chunks_evaluated, 4);
        // After the first chunk the 1/64 kernel runs first, so later chunks
        // short-circuit ~63/64 of the second kernel's work.
        assert!(
            counters.rows_short_circuited > 2 * CHUNK_ROWS as u64,
            "expected substantial short-circuiting, got {}",
            counters.rows_short_circuited
        );
    }

    #[test]
    fn never_plan_yields_no_matches_but_counts_chunks() {
        let col = Column::Int((0..10).collect());
        let c = compile(vec![between(0, 5, 3)]);
        assert!(c.is_never());
        let (matches, counters) = run(&c, &[&col], 10, 4);
        assert!(matches.is_empty());
        assert_eq!(counters.chunks_evaluated, 3);
    }
}
