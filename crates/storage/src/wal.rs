//! The ingest write-ahead log: fsync-per-batch durability for the write
//! path, replayed on recovery, truncated after folds.
//!
//! One append-only file (`wal.log` in the tiered root). Layout:
//!
//! ```text
//! "OREOWAL1"                                  ← 8-byte magic
//! [ len u32 LE | seq u64 LE | payload | fnv1a-64(seq ∥ payload) ] …
//! ```
//!
//! [`Wal::append`] writes one record and fsyncs — the fsync is the ack
//! point of the engine's `ingest`. [`Wal::open`] replays every decodable
//! record and truncates a *torn tail*: a final record whose bytes or
//! checksum are incomplete (the crash-between-write-and-fsync case) is
//! removed, everything before it survives. Records the caller has already
//! folded into the base (sequence ≤ the generation manifest's `folded`
//! watermark) are skipped at replay, which makes recovery idempotent when
//! a crash lands between a fold's publish and the WAL truncation.
//!
//! [`Wal::truncate_through`] drops records ≤ a watermark by rewriting the
//! survivors to `wal.log.tmp` and renaming over the log — the same
//! write-aside-then-atomic-rename discipline the tiered generations use,
//! so a crash mid-truncation leaves either the old log (harmless: replay
//! skips folded records) or the new one.

use crate::delta::IngestOp;
use crate::encode::{fnv1a, get_varint, put_varint, unzigzag, zigzag};
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 8] = b"OREOWAL1";

const OP_APPEND: u8 = 0;
const OP_UPDATE: u8 = 1;
const OP_DELETE: u8 = 2;

const CELL_INT: u8 = 0;
const CELL_FLOAT: u8 = 1;
const CELL_STR: u8 = 2;

/// One replayed WAL record: an acked ingest batch.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// The batch's ingest sequence.
    pub seq: u64,
    /// The batch's operations, in order.
    pub ops: Vec<IngestOp>,
}

/// What [`Wal::open`] found.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every intact record, ascending by sequence.
    pub records: Vec<WalRecord>,
    /// Bytes removed from the end of the log (a torn tail from a crash
    /// between write and fsync). 0 on a clean open.
    pub torn_bytes: u64,
}

/// The append-only ingest log. Single-writer: the engine serializes all
/// access behind its ingest lock.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    bytes: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, replaying every intact record
    /// and truncating a torn tail. A leftover `path.tmp` from a crashed
    /// [`Wal::truncate_through`] is removed (its rename never committed,
    /// so the original log is intact).
    pub fn open(path: &Path) -> Result<(Self, WalRecovery)> {
        let tmp = tmp_path(path);
        if tmp.exists() {
            fs::remove_file(&tmp)?;
        }
        if !path.exists() {
            let mut file = File::create(path)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            drop(file);
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok((
                Self {
                    path: path.to_owned(),
                    file,
                    bytes: WAL_MAGIC.len() as u64,
                },
                WalRecovery {
                    records: Vec::new(),
                    torn_bytes: 0,
                },
            ));
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() {
            // The initial magic write itself tore: an empty log.
            let mut file = File::create(path)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            drop(file);
            let torn = bytes.len() as u64;
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok((
                Self {
                    path: path.to_owned(),
                    file,
                    bytes: WAL_MAGIC.len() as u64,
                },
                WalRecovery {
                    records: Vec::new(),
                    torn_bytes: torn,
                },
            ));
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StorageError::Corrupt("bad WAL magic".into()));
        }
        let mut records = Vec::new();
        let mut offset = WAL_MAGIC.len();
        let mut last_seq = 0u64;
        loop {
            match parse_record(&bytes[offset..]) {
                ParseOutcome::Record { seq, ops, consumed } => {
                    if seq <= last_seq && last_seq != 0 {
                        return Err(StorageError::Corrupt(format!(
                            "WAL sequence went backwards: {seq} after {last_seq}"
                        )));
                    }
                    last_seq = seq;
                    records.push(WalRecord { seq, ops });
                    offset += consumed;
                }
                ParseOutcome::End => break,
                ParseOutcome::Torn => break, // truncate below
                ParseOutcome::Corrupt(msg) => return Err(StorageError::Corrupt(msg)),
            }
        }
        let torn_bytes = (bytes.len() - offset) as u64;
        if torn_bytes > 0 {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Self {
                path: path.to_owned(),
                file,
                bytes: offset as u64,
            },
            WalRecovery {
                records,
                torn_bytes,
            },
        ))
    }

    /// Append one batch and fsync — returns the record's size in bytes.
    /// When this returns, the batch is durable (the engine's ack point).
    pub fn append(&mut self, seq: u64, ops: &[IngestOp]) -> Result<u64> {
        let mut payload = BytesMut::new();
        encode_ops(&mut payload, ops);
        let mut record = BytesMut::with_capacity(payload.len() + 20);
        record.put_u32_le(payload.len() as u32);
        record.put_u64_le(seq);
        record.put_slice(&payload);
        let mut sum_input = Vec::with_capacity(8 + payload.len());
        sum_input.extend_from_slice(&seq.to_le_bytes());
        sum_input.extend_from_slice(&payload);
        record.put_u64_le(fnv1a(&sum_input));
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        self.bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    /// Drop every record with sequence ≤ `watermark` (they are folded into
    /// a committed base generation): survivors are rewritten aside and
    /// renamed over the log atomically.
    pub fn truncate_through(&mut self, watermark: u64) -> Result<()> {
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        let mut keep = BytesMut::new();
        keep.put_slice(WAL_MAGIC);
        let mut offset = WAL_MAGIC.len();
        loop {
            match parse_record(&bytes[offset..]) {
                ParseOutcome::Record { seq, consumed, .. } => {
                    if seq > watermark {
                        keep.put_slice(&bytes[offset..offset + consumed]);
                    }
                    offset += consumed;
                }
                ParseOutcome::End | ParseOutcome::Torn => break,
                ParseOutcome::Corrupt(msg) => return Err(StorageError::Corrupt(msg)),
            }
        }
        let tmp = tmp_path(&self.path);
        let mut file = File::create(&tmp)?;
        file.write_all(&keep)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            crate::tiered::sync_dir(parent)?;
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.bytes = keep.len() as u64;
        Ok(())
    }

    /// Current log size in bytes (magic + intact records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".tmp");
    PathBuf::from(p)
}

enum ParseOutcome {
    Record {
        seq: u64,
        ops: Vec<IngestOp>,
        consumed: usize,
    },
    /// Clean end of log.
    End,
    /// A final record whose bytes or checksum are incomplete.
    Torn,
    /// A record that passed the checksum but does not decode — real
    /// corruption, not a tear.
    Corrupt(String),
}

fn parse_record(s: &[u8]) -> ParseOutcome {
    if s.is_empty() {
        return ParseOutcome::End;
    }
    if s.len() < 4 {
        return ParseOutcome::Torn;
    }
    let len = u32::from_le_bytes(s[..4].try_into().expect("4 bytes")) as usize;
    let total = 4 + 8 + len + 8;
    if s.len() < total {
        return ParseOutcome::Torn;
    }
    let seq = u64::from_le_bytes(s[4..12].try_into().expect("8 bytes"));
    let payload = &s[12..12 + len];
    let stored = u64::from_le_bytes(s[12 + len..total].try_into().expect("8 bytes"));
    let mut sum_input = Vec::with_capacity(8 + len);
    sum_input.extend_from_slice(&seq.to_le_bytes());
    sum_input.extend_from_slice(payload);
    if fnv1a(&sum_input) != stored {
        return ParseOutcome::Torn;
    }
    match decode_ops(payload) {
        Ok(ops) => ParseOutcome::Record {
            seq,
            ops,
            consumed: total,
        },
        Err(e) => ParseOutcome::Corrupt(format!("WAL record seq {seq}: {e}")),
    }
}

fn encode_ops(buf: &mut BytesMut, ops: &[IngestOp]) {
    put_varint(buf, ops.len() as u64);
    for op in ops {
        match op {
            IngestOp::Append { values } => {
                buf.put_u8(OP_APPEND);
                encode_cells(buf, values);
            }
            IngestOp::Update { row, values } => {
                buf.put_u8(OP_UPDATE);
                put_varint(buf, u64::from(*row));
                encode_cells(buf, values);
            }
            IngestOp::Delete { row } => {
                buf.put_u8(OP_DELETE);
                put_varint(buf, u64::from(*row));
            }
        }
    }
}

fn encode_cells(buf: &mut BytesMut, values: &[oreo_query::Scalar]) {
    put_varint(buf, values.len() as u64);
    for v in values {
        match v {
            oreo_query::Scalar::Int(x) => {
                buf.put_u8(CELL_INT);
                put_varint(buf, zigzag(*x));
            }
            oreo_query::Scalar::Float(x) => {
                buf.put_u8(CELL_FLOAT);
                buf.put_f64_le(*x);
            }
            oreo_query::Scalar::Str(x) => {
                buf.put_u8(CELL_STR);
                put_varint(buf, x.len() as u64);
                buf.put_slice(x.as_bytes());
            }
        }
    }
}

fn decode_ops(payload: &[u8]) -> Result<Vec<IngestOp>> {
    let mut buf = payload;
    let count = get_varint(&mut buf)? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("truncated op tag".into()));
        }
        let tag = buf.get_u8();
        let op = match tag {
            OP_APPEND => IngestOp::Append {
                values: decode_cells(&mut buf)?,
            },
            OP_UPDATE => {
                let row = row_id(get_varint(&mut buf)?)?;
                IngestOp::Update {
                    row,
                    values: decode_cells(&mut buf)?,
                }
            }
            OP_DELETE => IngestOp::Delete {
                row: row_id(get_varint(&mut buf)?)?,
            },
            t => return Err(StorageError::Corrupt(format!("unknown op tag {t}"))),
        };
        ops.push(op);
    }
    if !buf.is_empty() {
        return Err(StorageError::Corrupt(
            "trailing bytes in WAL payload".into(),
        ));
    }
    Ok(ops)
}

fn row_id(v: u64) -> Result<u32> {
    u32::try_from(v).map_err(|_| StorageError::Corrupt(format!("row id {v} exceeds u32")))
}

fn decode_cells(buf: &mut &[u8]) -> Result<Vec<oreo_query::Scalar>> {
    let count = get_varint(buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("truncated cell tag".into()));
        }
        let tag = buf.get_u8();
        let cell = match tag {
            CELL_INT => oreo_query::Scalar::Int(unzigzag(get_varint(buf)?)),
            CELL_FLOAT => {
                if buf.len() < 8 {
                    return Err(StorageError::Corrupt("truncated float cell".into()));
                }
                oreo_query::Scalar::Float(buf.get_f64_le())
            }
            CELL_STR => {
                let len = get_varint(buf)? as usize;
                if buf.len() < len {
                    return Err(StorageError::Corrupt("truncated string cell".into()));
                }
                let s = std::str::from_utf8(&buf[..len])
                    .map_err(|_| StorageError::Corrupt("invalid UTF-8 in WAL cell".into()))?
                    .to_owned();
                buf.advance(len);
                oreo_query::Scalar::Str(s)
            }
            t => return Err(StorageError::Corrupt(format!("unknown cell tag {t}"))),
        };
        out.push(cell);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::Scalar;

    fn tmproot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oreo-wal-{tag}-{}-{}",
            std::process::id(),
            rand::random::<u32>()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops(i: i64) -> Vec<IngestOp> {
        vec![
            IngestOp::Append {
                values: vec![
                    Scalar::Int(i),
                    Scalar::Float(i as f64 / 2.0),
                    Scalar::from(format!("tag{}", i % 3)),
                ],
            },
            IngestOp::Update {
                row: i as u32,
                values: vec![Scalar::Int(-i), Scalar::Float(0.0), Scalar::from("u")],
            },
            IngestOp::Delete { row: i as u32 + 1 },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let root = tmproot("rt");
        let path = root.join("wal.log");
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        for seq in 1..=5u64 {
            let n = wal.append(seq, &ops(seq as i64)).unwrap();
            assert!(n > 20);
        }
        let disk = fs::metadata(&path).unwrap().len();
        assert_eq!(disk, wal.bytes());
        drop(wal);

        let (wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.records.len(), 5);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.ops, ops(i as i64 + 1));
        }
        drop(wal);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let root = tmproot("torn");
        let path = root.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &ops(seq as i64)).unwrap();
        }
        drop(wal);
        // tear the last record: chop off its final 5 bytes
        let bytes = fs::read(&path).unwrap();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(bytes.len() as u64 - 5).unwrap();
        drop(file);

        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 2, "torn record dropped");
        assert!(rec.torn_bytes > 0);
        // the log is clean again: appending and reopening works
        wal.append(3, &ops(30)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2].ops, ops(30));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncate_through_drops_folded_records() {
        let root = tmproot("trunc");
        let path = root.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, &ops(seq as i64)).unwrap();
        }
        wal.truncate_through(3).unwrap();
        // appends continue on the truncated log
        wal.append(6, &ops(6)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        let seqs: Vec<u64> = rec.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_tmp_from_crashed_truncation_is_removed() {
        let root = tmproot("tmp");
        let path = root.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &ops(1)).unwrap();
        drop(wal);
        // a truncation that crashed between tmp write and rename
        fs::write(tmp_path(&path), b"half-written").unwrap();
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "original log intact");
        assert!(!tmp_path(&path).exists(), "stale tmp removed");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_magic_is_corruption_not_a_tear() {
        let root = tmproot("magic");
        let path = root.join("wal.log");
        fs::write(&path, b"NOTAWAL!extra").unwrap();
        assert!(Wal::open(&path).unwrap_err().to_string().contains("magic"));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn mid_log_bitflip_truncates_from_the_flip() {
        // WAL semantics treat any undecodable suffix as a tear: the intact
        // prefix survives, everything from the damaged record on is gone.
        let root = tmproot("flip");
        let path = root.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut offsets = vec![WAL_MAGIC.len() as u64];
        for seq in 1..=3u64 {
            let n = wal.append(seq, &ops(seq as i64)).unwrap();
            offsets.push(offsets.last().unwrap() + n);
        }
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        let mid = (offsets[1] + 15) as usize; // inside record 2's payload
        bytes[mid] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "prefix before the flip survives");
        assert_eq!(rec.records[0].seq, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_and_torn_magic_files_reinitialize() {
        let root = tmproot("init");
        let path = root.join("wal.log");
        fs::write(&path, b"ORE").unwrap(); // torn initial magic write
        let (wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.torn_bytes, 3);
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        fs::remove_dir_all(&root).unwrap();
    }
}
