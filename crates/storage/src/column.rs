//! In-memory columnar storage.
//!
//! Three physical representations cover the paper's datasets: `i64` (ints and
//! timestamps), `f64`, and dictionary-encoded categorical strings. Cells are
//! read through [`ValueRef`], a borrowed view that avoids allocating a
//! [`Scalar`] per row — routing millions of records through a layout is the
//! hot path of reorganization.

use oreo_query::{Atom, ColumnType, CompareOp, Scalar};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Borrowed view of one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueRef<'a> {
    /// A borrowed integer cell.
    Int(i64),
    /// A borrowed float cell.
    Float(f64),
    /// A borrowed string cell.
    Str(&'a str),
}

impl ValueRef<'_> {
    /// Materialize into an owned [`Scalar`].
    pub fn to_scalar(self) -> Scalar {
        match self {
            ValueRef::Int(v) => Scalar::Int(v),
            ValueRef::Float(v) => Scalar::Float(v),
            ValueRef::Str(v) => Scalar::Str(v.to_owned()),
        }
    }

    /// Compare against a literal of the same type. Returns `None` on a type
    /// mismatch, which callers treat as "predicate does not match" — a typed
    /// workload never hits this in practice.
    pub fn cmp_scalar(self, rhs: &Scalar) -> Option<Ordering> {
        match (self, rhs) {
            (ValueRef::Int(a), Scalar::Int(b)) => Some(a.cmp(b)),
            (ValueRef::Float(a), Scalar::Float(b)) => Some(a.total_cmp(b)),
            (ValueRef::Str(a), Scalar::Str(b)) => Some(a.cmp(b.as_str())),
            _ => None,
        }
    }
}

/// Zero-allocation atom evaluation against a borrowed cell.
pub fn atom_matches_ref(atom: &Atom, value: ValueRef<'_>) -> bool {
    match atom {
        Atom::Compare { op, value: rhs, .. } => match value.cmp_scalar(rhs) {
            Some(ord) => match op {
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
                CompareOp::Eq => ord == Ordering::Equal,
            },
            None => false,
        },
        Atom::Between { low, high, .. } => {
            matches!(
                value.cmp_scalar(low),
                Some(Ordering::Greater | Ordering::Equal)
            ) && matches!(
                value.cmp_scalar(high),
                Some(Ordering::Less | Ordering::Equal)
            )
        }
        Atom::InSet { set, .. } => set
            .iter()
            .any(|s| value.cmp_scalar(s) == Some(Ordering::Equal)),
    }
}

/// Dictionary-encoded string column: a (deduplicated) dictionary plus a
/// `u32` code per row.
#[derive(Clone, Debug, Default)]
pub struct DictColumn {
    dict: Vec<String>,
    codes: Vec<u32>,
}

impl DictColumn {
    /// An empty dictionary column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from parts. `codes` must index into `dict`.
    pub fn from_parts(dict: Vec<String>, codes: Vec<u32>) -> Self {
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len().max(1)));
        Self { dict, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dictionary size (distinct values ever appended).
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The dictionary of distinct strings, in first-seen order.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// The per-row dictionary codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary code of `row`.
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The string value of `row`.
    pub fn get(&self, row: usize) -> &str {
        &self.dict[self.codes[row] as usize]
    }

    /// Decode a dictionary code to its string.
    pub fn decode(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }
}

/// A builder that interns strings while rows stream in.
#[derive(Default)]
pub struct DictBuilder {
    dict: Vec<String>,
    index: HashMap<String, u32>,
    codes: Vec<u32>,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one string cell.
    pub fn push(&mut self, value: &str) {
        let code = match self.index.get(value) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(value.to_owned());
                self.index.insert(value.to_owned(), c);
                c
            }
        };
        self.codes.push(code);
    }

    /// Finalizes into an immutable dictionary column.
    pub fn finish(self) -> DictColumn {
        DictColumn {
            dict: self.dict,
            codes: self.codes,
        }
    }
}

/// One physical column.
#[derive(Clone, Debug)]
pub enum Column {
    /// 64-bit integers (also dates/timestamps).
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded strings.
    Str(DictColumn),
}

impl Column {
    /// An empty column of the given logical type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int | ColumnType::Timestamp => Column::Int(Vec::new()),
            ColumnType::Float => Column::Float(Vec::new()),
            ColumnType::Str => Column::Str(DictColumn::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(d) => d.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of cell `row`.
    pub fn get(&self, row: usize) -> ValueRef<'_> {
        match self {
            Column::Int(v) => ValueRef::Int(v[row]),
            Column::Float(v) => ValueRef::Float(v[row]),
            Column::Str(d) => ValueRef::Str(d.get(row)),
        }
    }

    /// Owned scalar for cell `row` (allocates for strings).
    pub fn scalar(&self, row: usize) -> Scalar {
        self.get(row).to_scalar()
    }

    /// Copy the given rows into a new column. Dictionary columns keep the
    /// full dictionary (cheap, shared vocabulary) and subset only codes.
    pub fn project_rows(&self, rows: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Str(d) => Column::Str(DictColumn {
                dict: d.dict.clone(),
                codes: rows.iter().map(|&r| d.codes[r as usize]).collect(),
            }),
        }
    }

    /// Approximate heap footprint in bytes (used to size Table I files).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Str(d) => {
                d.codes.len() * 4 + d.dict.iter().map(|s| s.len() + 24).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_builder_interns() {
        let mut b = DictBuilder::new();
        for v in ["a", "b", "a", "c", "b"] {
            b.push(v);
        }
        let d = b.finish();
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.len(), 5);
        assert_eq!(d.get(0), "a");
        assert_eq!(d.get(2), "a");
        assert_eq!(d.code(0), d.code(2));
        assert_eq!(d.get(4), "b");
    }

    #[test]
    fn value_ref_comparisons() {
        assert_eq!(
            ValueRef::Int(3).cmp_scalar(&Scalar::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            ValueRef::Str("b").cmp_scalar(&Scalar::from("b")),
            Some(Ordering::Equal)
        );
        assert_eq!(ValueRef::Int(3).cmp_scalar(&Scalar::from("x")), None);
    }

    #[test]
    fn atom_matches_ref_agrees_with_scalar_path() {
        let atoms = [
            Atom::Compare {
                col: 0,
                op: CompareOp::Ge,
                value: Scalar::Int(10),
            },
            Atom::Between {
                col: 0,
                low: Scalar::Int(5),
                high: Scalar::Int(15),
            },
            Atom::InSet {
                col: 0,
                set: vec![Scalar::Int(7), Scalar::Int(12)],
            },
        ];
        for atom in &atoms {
            for v in [-1i64, 5, 7, 10, 12, 15, 16] {
                assert_eq!(
                    atom_matches_ref(atom, ValueRef::Int(v)),
                    atom.matches(&Scalar::Int(v)),
                    "{atom:?} on {v}"
                );
            }
        }
    }

    #[test]
    fn project_rows_subsets() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let p = c.project_rows(&[3, 1]);
        assert_eq!(p.scalar(0), Scalar::Int(40));
        assert_eq!(p.scalar(1), Scalar::Int(20));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_column_types() {
        assert!(matches!(
            Column::empty(ColumnType::Timestamp),
            Column::Int(_)
        ));
        assert!(matches!(Column::empty(ColumnType::Str), Column::Str(_)));
        assert_eq!(Column::empty(ColumnType::Float).len(), 0);
    }
}
