//! Partition-level metadata: the only thing OREO needs to cost a query on a
//! layout without touching data (Fig. 2 of the paper).
//!
//! For every column a partition tracks its `[min, max]` range; categorical
//! columns with low cardinality additionally keep the exact distinct-value
//! set, which prunes `IN`/`=` filters much more sharply than a string range.

use crate::column::Column;
use crate::encode::{get_varint, put_varint, unzigzag, zigzag, DecodeError};
use crate::table::Table;
use bytes::{Buf, BufMut};
use oreo_query::{Predicate, Scalar};
use std::collections::BTreeSet;

/// Per-column pruning statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// `[min, max]` over the partition's rows; `None` for an empty partition.
    pub range: Option<(Scalar, Scalar)>,
    /// Exact distinct set, kept only for categorical columns whose partition-
    /// local cardinality stays at or below the builder's cap.
    pub distinct: Option<BTreeSet<Scalar>>,
}

impl ColumnStats {
    fn empty() -> Self {
        Self {
            range: None,
            distinct: None,
        }
    }
}

/// Metadata for one partition of one layout.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionMetadata {
    /// Row count — possibly *scaled* when the metadata was estimated from a
    /// sample (see [`PartitionMetadata::scale_rows`]).
    pub rows: f64,
    /// Per-column stats, indexed by [`oreo_query::ColId`].
    pub columns: Vec<ColumnStats>,
}

impl PartitionMetadata {
    /// Can any row of this partition match `predicate`? Conservative: `false`
    /// means the partition is provably irrelevant and can be skipped.
    pub fn may_match(&self, predicate: &Predicate) -> bool {
        if self.rows <= 0.0 {
            return false;
        }
        predicate.atoms().iter().all(|atom| {
            let stats = &self.columns[atom.col()];
            if let Some(distinct) = &stats.distinct {
                return atom.may_match_set(distinct);
            }
            match &stats.range {
                Some((min, max)) => atom.may_match_range(min, max),
                None => false,
            }
        })
    }

    /// Multiply the row count by `factor`. Metadata built from a table
    /// *sample* approximates the full-table partition sizes this way, which
    /// is how candidate layouts are costed before they are materialized.
    pub fn scale_rows(&mut self, factor: f64) {
        self.rows *= factor;
    }
}

/// Default cap on exact distinct sets per (partition, column): beyond this,
/// the builder keeps only the range. 64 comfortably covers the categorical
/// columns of TPC-H/TPC-DS-shaped data (flags, modes, segments, regions).
pub const DEFAULT_DISTINCT_CAP: usize = 64;

/// Builds metadata for all `k` partitions of a layout in one pass over the
/// table, given the row → partition assignment.
pub fn build_metadata(table: &Table, assignment: &[u32], k: usize) -> Vec<PartitionMetadata> {
    build_metadata_capped(table, assignment, k, DEFAULT_DISTINCT_CAP)
}

/// As [`build_metadata`] with an explicit distinct-set cap.
pub fn build_metadata_capped(
    table: &Table,
    assignment: &[u32],
    k: usize,
    distinct_cap: usize,
) -> Vec<PartitionMetadata> {
    assert_eq!(assignment.len(), table.num_rows(), "assignment length");
    let ncols = table.num_columns();
    let mut rows = vec![0u64; k];
    for &bid in assignment {
        rows[bid as usize] += 1;
    }

    // Accumulate per column to stay cache-friendly in the typed arrays.
    let mut stats: Vec<Vec<ColumnStats>> = (0..k)
        .map(|_| (0..ncols).map(|_| ColumnStats::empty()).collect())
        .collect();

    for (col_id, column) in table.columns().iter().enumerate() {
        match column {
            Column::Int(values) => {
                let mut min = vec![i64::MAX; k];
                let mut max = vec![i64::MIN; k];
                // Low-cardinality integer columns (nation keys, store ids,
                // months…) prune equality predicates far better with exact
                // distinct sets than with min/max ranges — a range almost
                // always straddles the probe value. Track a capped set per
                // partition, dropping it on overflow.
                let mut sets: Vec<Option<BTreeSet<i64>>> = vec![Some(BTreeSet::new()); k];
                for (row, &v) in values.iter().enumerate() {
                    let b = assignment[row] as usize;
                    min[b] = min[b].min(v);
                    max[b] = max[b].max(v);
                    if let Some(set) = sets[b].as_mut() {
                        set.insert(v);
                        if set.len() > distinct_cap {
                            sets[b] = None;
                        }
                    }
                }
                for b in 0..k {
                    if rows[b] > 0 {
                        stats[b][col_id].range = Some((Scalar::Int(min[b]), Scalar::Int(max[b])));
                        stats[b][col_id].distinct = sets[b]
                            .take()
                            .map(|s| s.into_iter().map(Scalar::Int).collect());
                    }
                }
            }
            Column::Float(values) => {
                let mut min = vec![f64::INFINITY; k];
                let mut max = vec![f64::NEG_INFINITY; k];
                for (row, &v) in values.iter().enumerate() {
                    let b = assignment[row] as usize;
                    if v.total_cmp(&min[b]).is_lt() {
                        min[b] = v;
                    }
                    if v.total_cmp(&max[b]).is_gt() {
                        max[b] = v;
                    }
                }
                for b in 0..k {
                    if rows[b] > 0 {
                        stats[b][col_id].range =
                            Some((Scalar::Float(min[b]), Scalar::Float(max[b])));
                    }
                }
            }
            Column::Str(dict) => {
                // Track distinct codes per partition; degrade to range-only
                // when a partition exceeds the cap.
                let mut codes: Vec<Option<BTreeSet<u32>>> = vec![Some(BTreeSet::new()); k];
                for (row, &code) in dict.codes().iter().enumerate() {
                    let b = assignment[row] as usize;
                    if let Some(set) = codes[b].as_mut() {
                        set.insert(code);
                        if set.len() > distinct_cap {
                            codes[b] = None;
                        }
                    }
                }
                for b in 0..k {
                    if rows[b] == 0 {
                        continue;
                    }
                    match &codes[b] {
                        Some(set) => {
                            let distinct: BTreeSet<Scalar> = set
                                .iter()
                                .map(|&c| Scalar::Str(dict.decode(c).to_owned()))
                                .collect();
                            let min = distinct.iter().next().cloned();
                            let max = distinct.iter().next_back().cloned();
                            stats[b][col_id].range = min.zip(max);
                            stats[b][col_id].distinct = Some(distinct);
                        }
                        None => {
                            // One extra pass for this partition's range.
                            let mut min: Option<&str> = None;
                            let mut max: Option<&str> = None;
                            for (row, &code) in dict.codes().iter().enumerate() {
                                if assignment[row] as usize != b {
                                    continue;
                                }
                                let s = dict.decode(code);
                                min = Some(min.map_or(s, |m| if s < m { s } else { m }));
                                max = Some(max.map_or(s, |m| if s > m { s } else { m }));
                            }
                            stats[b][col_id].range = min.zip(max).map(|(lo, hi)| {
                                (Scalar::Str(lo.to_owned()), Scalar::Str(hi.to_owned()))
                            });
                        }
                    }
                }
            }
        }
    }

    stats
        .into_iter()
        .zip(rows)
        .map(|(columns, r)| PartitionMetadata {
            rows: r as f64,
            columns,
        })
        .collect()
}

// ------------------------------------------------------- metadata codec --
//
// Partition files (format version 2) persist their pruning metadata in the
// footer so a store can reopen header-only: row counts, ranges, and
// distinct sets come from a few hundred footer bytes instead of a full
// decode of every partition (the ROADMAP-flagged double decode at restart).

const SCALAR_INT: u8 = 0;
const SCALAR_FLOAT: u8 = 1;
const SCALAR_STR: u8 = 2;

fn put_scalar(buf: &mut impl BufMut, s: &Scalar) {
    match s {
        Scalar::Int(v) => {
            buf.put_u8(SCALAR_INT);
            put_varint(buf, zigzag(*v));
        }
        Scalar::Float(v) => {
            buf.put_u8(SCALAR_FLOAT);
            buf.put_f64_le(*v);
        }
        Scalar::Str(v) => {
            buf.put_u8(SCALAR_STR);
            put_varint(buf, v.len() as u64);
            buf.put_slice(v.as_bytes());
        }
    }
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        return Err(DecodeError(format!(
            "truncated metadata: need {n} more bytes for {what}"
        )));
    }
    Ok(())
}

fn get_scalar(buf: &mut impl Buf) -> Result<Scalar, DecodeError> {
    need(buf, 1, "scalar tag")?;
    match buf.get_u8() {
        SCALAR_INT => Ok(Scalar::Int(unzigzag(get_varint(buf)?))),
        SCALAR_FLOAT => {
            need(buf, 8, "float scalar")?;
            Ok(Scalar::Float(buf.get_f64_le()))
        }
        SCALAR_STR => {
            let len = get_varint(buf)? as usize;
            need(buf, len, "string scalar")?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes)
                .map(Scalar::Str)
                .map_err(|_| DecodeError("invalid UTF-8 in metadata scalar".into()))
        }
        tag => Err(DecodeError(format!("unknown scalar tag {tag}"))),
    }
}

/// Serialize pruning metadata into a partition-file footer: the row count,
/// then per column a flags byte, the optional `[min, max]` range, and the
/// optional distinct set.
pub fn encode_metadata(buf: &mut impl BufMut, meta: &PartitionMetadata) {
    buf.put_f64_le(meta.rows);
    put_varint(buf, meta.columns.len() as u64);
    for col in &meta.columns {
        let mut flags = 0u8;
        if col.range.is_some() {
            flags |= 1;
        }
        if col.distinct.is_some() {
            flags |= 2;
        }
        buf.put_u8(flags);
        if let Some((lo, hi)) = &col.range {
            put_scalar(buf, lo);
            put_scalar(buf, hi);
        }
        if let Some(set) = &col.distinct {
            put_varint(buf, set.len() as u64);
            for s in set {
                put_scalar(buf, s);
            }
        }
    }
}

/// Parse metadata produced by [`encode_metadata`].
pub fn decode_metadata(buf: &mut impl Buf) -> Result<PartitionMetadata, DecodeError> {
    need(buf, 8, "metadata row count")?;
    let rows = buf.get_f64_le();
    if !rows.is_finite() || rows < 0.0 {
        return Err(DecodeError(format!("invalid metadata row count {rows}")));
    }
    let ncols = get_varint(buf)? as usize;
    if ncols > u16::MAX as usize {
        return Err(DecodeError(format!("metadata claims {ncols} columns")));
    }
    let mut columns = Vec::with_capacity(ncols);
    for col in 0..ncols {
        need(buf, 1, "metadata flags")?;
        let flags = buf.get_u8();
        if flags & !3 != 0 {
            return Err(DecodeError(format!(
                "unknown metadata flags {flags:#x} for column {col}"
            )));
        }
        let range = if flags & 1 != 0 {
            Some((get_scalar(buf)?, get_scalar(buf)?))
        } else {
            None
        };
        let distinct = if flags & 2 != 0 {
            let n = get_varint(buf)? as usize;
            if n > 1 << 20 {
                return Err(DecodeError(format!("distinct set of {n} values")));
            }
            let mut set = BTreeSet::new();
            for _ in 0..n {
                set.insert(get_scalar(buf)?);
            }
            Some(set)
        } else {
            None
        };
        columns.push(ColumnStats { range, distinct });
    }
    Ok(PartitionMetadata { rows, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use oreo_query::{ColumnType, QueryBuilder, Schema};
    use std::sync::Arc;

    fn table() -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("f", ColumnType::Float),
            ("c", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..100i64 {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Float(i as f64),
                Scalar::from(if i < 50 { "low" } else { "high" }),
            ]);
        }
        b.finish()
    }

    #[test]
    fn metadata_ranges_per_partition() {
        let t = table();
        // rows 0..50 -> partition 0, rows 50..100 -> partition 1
        let assignment: Vec<u32> = (0..100).map(|i| (i >= 50) as u32).collect();
        let meta = build_metadata(&t, &assignment, 2);
        assert_eq!(meta[0].rows, 50.0);
        assert_eq!(
            meta[0].columns[0].range,
            Some((Scalar::Int(0), Scalar::Int(49)))
        );
        assert_eq!(
            meta[1].columns[0].range,
            Some((Scalar::Int(50), Scalar::Int(99)))
        );
        let d0 = meta[0].columns[2].distinct.as_ref().unwrap();
        assert_eq!(d0.len(), 1);
        assert!(d0.contains(&Scalar::from("low")));
    }

    #[test]
    fn may_match_uses_distinct_sets() {
        let t = table();
        let assignment: Vec<u32> = (0..100).map(|i| (i >= 50) as u32).collect();
        let meta = build_metadata(&t, &assignment, 2);
        let q = QueryBuilder::new(t.schema())
            .eq("c", "low")
            .build_predicate();
        assert!(meta[0].may_match(&q));
        assert!(!meta[1].may_match(&q));
        let q2 = QueryBuilder::new(t.schema())
            .between("v", 10, 20)
            .build_predicate();
        assert!(meta[0].may_match(&q2));
        assert!(!meta[1].may_match(&q2));
    }

    #[test]
    fn distinct_cap_degrades_to_range() {
        let t = table();
        let assignment = vec![0u32; 100];
        // cap 1 forces the 2-value partition to range-only
        let meta = build_metadata_capped(&t, &assignment, 1, 1);
        assert!(meta[0].columns[2].distinct.is_none());
        assert_eq!(
            meta[0].columns[2].range,
            Some((Scalar::from("high"), Scalar::from("low")))
        );
    }

    #[test]
    fn empty_partition_never_matches() {
        let t = table();
        let assignment = vec![0u32; 100]; // partition 1 stays empty
        let meta = build_metadata(&t, &assignment, 2);
        assert_eq!(meta[1].rows, 0.0);
        assert!(!meta[1].may_match(&Predicate::always_true()));
    }

    #[test]
    fn metadata_codec_round_trips() {
        let t = table();
        let assignment: Vec<u32> = (0..100).map(|i| (i >= 50) as u32).collect();
        for meta in build_metadata(&t, &assignment, 2) {
            let mut buf = bytes::BytesMut::new();
            encode_metadata(&mut buf, &meta);
            let mut r: &[u8] = &buf;
            let back = decode_metadata(&mut r).unwrap();
            assert_eq!(back, meta);
            assert_eq!(r.len(), 0, "codec must consume exactly its bytes");
        }
        // degraded (range-only) metadata round-trips too
        let capped = build_metadata_capped(&t, &vec![0u32; 100], 1, 1);
        let mut buf = bytes::BytesMut::new();
        encode_metadata(&mut buf, &capped[0]);
        let mut r: &[u8] = &buf;
        assert_eq!(decode_metadata(&mut r).unwrap(), capped[0]);
    }

    #[test]
    fn metadata_codec_rejects_truncation() {
        let t = table();
        let meta = build_metadata(&t, &vec![0u32; 100], 1).pop().unwrap();
        let mut buf = bytes::BytesMut::new();
        encode_metadata(&mut buf, &meta);
        for cut in [0, 4, 9, buf.len() / 2, buf.len() - 1] {
            let mut r: &[u8] = &buf[..cut];
            assert!(decode_metadata(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn scale_rows_multiplies() {
        let t = table();
        let assignment = vec![0u32; 100];
        let mut meta = build_metadata(&t, &assignment, 1);
        meta[0].scale_rows(10.0);
        assert_eq!(meta[0].rows, 1000.0);
    }
}
