//! The in-memory table: a schema plus one [`Column`] per schema entry.

use crate::column::{atom_matches_ref, Column, DictBuilder, ValueRef};
use oreo_query::{ColId, ColumnType, Predicate, Scalar, Schema};
use rand::Rng;
use std::sync::Arc;

/// A columnar table. Immutable once built; layouts are expressed as
/// row → partition assignments *over* a table, never by mutating it.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Assemble from pre-built columns.
    ///
    /// # Panics
    /// Panics if column count or lengths disagree with the schema — tables
    /// are only built by generator code, so a mismatch is a bug.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "column count mismatch");
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), rows, "column {i} length mismatch");
        }
        Self {
            schema,
            columns,
            rows,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column with id `id`.
    pub fn column(&self, id: ColId) -> &Column {
        &self.columns[id]
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Borrowed cell view.
    pub fn get(&self, row: usize, col: ColId) -> ValueRef<'_> {
        self.columns[col].get(row)
    }

    /// Owned cell value (allocates for strings).
    pub fn scalar(&self, row: usize, col: ColId) -> Scalar {
        self.columns[col].scalar(row)
    }

    /// Row-level predicate evaluation without allocation.
    pub fn row_matches(&self, row: usize, predicate: &Predicate) -> bool {
        predicate
            .atoms()
            .iter()
            .all(|a| atom_matches_ref(a, self.get(row, a.col())))
    }

    /// Exact selectivity of a predicate (fraction of rows matching).
    pub fn selectivity(&self, predicate: &Predicate) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let hits = (0..self.rows)
            .filter(|&r| self.row_matches(r, predicate))
            .count();
        hits as f64 / self.rows as f64
    }

    /// Materialize a new table containing exactly `rows` (in order).
    pub fn project_rows(&self, rows: &[u32]) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.project_rows(rows)).collect(),
            rows: rows.len(),
        }
    }

    /// Uniform sample of `n` rows without replacement (all rows if
    /// `n >= num_rows`). Used to build layout candidates from 0.1–1% samples
    /// the way the paper does.
    pub fn sample(&self, rng: &mut impl Rng, n: usize) -> Table {
        if n >= self.rows {
            return self.clone();
        }
        let mut idx = rand::seq::index::sample(rng, self.rows, n).into_vec();
        idx.sort_unstable();
        let idx: Vec<u32> = idx.into_iter().map(|i| i as u32).collect();
        self.project_rows(&idx)
    }

    /// Approximate in-memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }
}

/// Streaming row-oriented builder, used by the synthetic dataset generators.
pub struct TableBuilder {
    schema: Arc<Schema>,
    ints: Vec<Option<Vec<i64>>>,
    floats: Vec<Option<Vec<f64>>>,
    dicts: Vec<Option<DictBuilder>>,
    rows: usize,
}

impl TableBuilder {
    /// An empty builder for `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let n = schema.len();
        let mut ints = Vec::with_capacity(n);
        let mut floats = Vec::with_capacity(n);
        let mut dicts = Vec::with_capacity(n);
        for (_, def) in schema.iter() {
            ints.push(def.ty.is_int_backed().then(Vec::new));
            floats.push((def.ty == ColumnType::Float).then(Vec::new));
            dicts.push((def.ty == ColumnType::Str).then(DictBuilder::new));
        }
        Self {
            schema,
            ints,
            floats,
            dicts,
            rows: 0,
        }
    }

    /// Append one cell to the current row. Cells must be pushed in schema
    /// order via [`TableBuilder::push_row`]; these typed setters exist for
    /// generators that fill columns independently.
    pub fn push_int(&mut self, col: ColId, v: i64) {
        self.ints[col].as_mut().expect("not an int column").push(v);
    }

    /// Appends one float cell to column `col`.
    pub fn push_float(&mut self, col: ColId, v: f64) {
        self.floats[col]
            .as_mut()
            .expect("not a float column")
            .push(v);
    }

    /// Appends one string cell to column `col`.
    pub fn push_str(&mut self, col: ColId, v: &str) {
        self.dicts[col].as_mut().expect("not a str column").push(v);
    }

    /// Append a full row of scalars (schema order).
    pub fn push_row(&mut self, row: &[Scalar]) {
        assert_eq!(row.len(), self.schema.len());
        for (col, v) in row.iter().enumerate() {
            match v {
                Scalar::Int(x) => self.push_int(col, *x),
                Scalar::Float(x) => self.push_float(col, *x),
                Scalar::Str(x) => self.push_str(col, x),
            }
        }
        self.rows += 1;
    }

    /// Mark a row complete when using the typed per-column setters.
    pub fn finish_row(&mut self) {
        self.rows += 1;
    }

    /// Finalizes into an immutable table.
    pub fn finish(self) -> Table {
        let mut columns = Vec::with_capacity(self.schema.len());
        for (col, (ints, (floats, dicts))) in self
            .ints
            .into_iter()
            .zip(self.floats.into_iter().zip(self.dicts))
            .enumerate()
        {
            let c = if let Some(v) = ints {
                Column::Int(v)
            } else if let Some(v) = floats {
                Column::Float(v)
            } else if let Some(d) = dicts {
                Column::Str(d.finish())
            } else {
                unreachable!("column {col} has no representation")
            };
            columns.push(c);
        }
        Table::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::QueryBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("qty", ColumnType::Int),
            ("price", ColumnType::Float),
            ("region", ColumnType::Str),
        ]))
    }

    fn small_table() -> Table {
        let s = schema();
        let mut b = TableBuilder::new(Arc::clone(&s));
        let regions = ["eu", "na", "apac"];
        for i in 0..90i64 {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int(i % 10),
                Scalar::Float(i as f64 * 0.5),
                Scalar::from(regions[(i % 3) as usize]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn builder_round_trip() {
        let t = small_table();
        assert_eq!(t.num_rows(), 90);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.scalar(5, 0), Scalar::Int(5));
        assert_eq!(t.scalar(5, 3), Scalar::from("apac"));
    }

    #[test]
    fn selectivity_exact() {
        let t = small_table();
        let q = QueryBuilder::new(t.schema()).lt("qty", 5).build_predicate();
        // qty = i % 10, so qty < 5 hits exactly half the rows
        assert!((t.selectivity(&q) - 0.5).abs() < 1e-12);
        let q2 = QueryBuilder::new(t.schema())
            .eq("region", "eu")
            .build_predicate();
        assert!((t.selectivity(&q2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn project_rows_preserves_values() {
        let t = small_table();
        let p = t.project_rows(&[10, 20, 30]);
        assert_eq!(p.num_rows(), 3);
        assert_eq!(p.scalar(1, 0), Scalar::Int(20));
        assert_eq!(p.scalar(2, 3), t.scalar(30, 3));
    }

    #[test]
    fn sample_is_subset_without_replacement() {
        let t = small_table();
        let mut rng = StdRng::seed_from_u64(7);
        let s = t.sample(&mut rng, 30);
        assert_eq!(s.num_rows(), 30);
        // all ts values are unique in the base table, so a without-replacement
        // sample has 30 unique values
        let mut seen = std::collections::HashSet::new();
        for r in 0..s.num_rows() {
            assert!(seen.insert(s.scalar(r, 0)));
        }
    }

    #[test]
    fn sample_larger_than_table_is_identity() {
        let t = small_table();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(t.sample(&mut rng, 1000).num_rows(), 90);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_rejected() {
        let s = schema();
        Table::new(
            s,
            vec![
                Column::Int(vec![1]),
                Column::Int(vec![1, 2]),
                Column::Float(vec![0.0]),
                Column::Str(Default::default()),
            ],
        );
    }
}
