//! Copy-on-write snapshots of a partitioned table, the storage substrate of
//! the concurrent serving layer (`oreo-engine`).
//!
//! A [`TableSnapshot`] is one *immutable* physical organization of a table:
//! the row → partition grouping of a layout, fully materialized, with the
//! pruning metadata needed to skip partitions. Readers never see a snapshot
//! change; a background reorganizer builds the next snapshot aside and
//! *publishes* it through a [`SnapshotCell`], after which new scans pick it
//! up while in-flight scans keep running on the snapshot they pinned.
//!
//! This is what makes the paper's reorganization delay Δ (§VI-D5) a
//! *measured* quantity in the engine: Δ is the wall-clock window between a
//! switch decision and the moment [`SnapshotCell::publish`] lands, during
//! which queries are still served by the old layout.

use crate::bufpool::BufferPool;
use crate::column::Column;
use crate::delta::DeltaOverlay;
use crate::error::{Result, StorageError};
use crate::format::ColumnExtent;
use crate::kernel::{self, KernelCounters};
use crate::layout_model::{LayoutId, LayoutModel};
use crate::partition::{build_metadata, PartitionMetadata};
use crate::table::Table;
use crate::tiered::{part_file, Generation};
use oreo_query::{ColId, CompiledPredicate, Predicate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One materialized partition of a snapshot: the projected data plus the
/// global row ids it holds (positions in the base table).
#[derive(Clone, Debug)]
pub struct SnapshotPartition {
    /// Global row ids (into the base table), in projection order.
    pub rows: Arc<[u32]>,
    /// The partition's materialized columnar data.
    pub data: Arc<Table>,
    /// Pruning metadata for this partition.
    pub meta: PartitionMetadata,
    /// Bytes a scan of this partition reads: in-memory column bytes for a
    /// memory-resident snapshot, the encoded partition-file size once the
    /// snapshot is backed by a [`crate::TieredStore`] generation.
    pub bytes: u64,
    /// Per-column payload extents in the partition's on-disk file — the
    /// page index pooled scans use. Present once the snapshot is backed by
    /// a footer-indexed generation file; `None` for memory-only snapshots.
    pub extents: Option<Arc<[ColumnExtent]>>,
}

/// Result of scanning a snapshot with one predicate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotScan {
    /// Global (base-table) row ids matching the predicate, ascending.
    pub matches: Vec<u32>,
    /// Rows living in partitions the predicate could not skip.
    pub rows_read: u64,
    /// Bytes of the partitions the predicate could not skip (see
    /// [`SnapshotPartition::bytes`] for the unit per serving mode).
    pub bytes_scanned: u64,
    /// Partitions actually scanned.
    pub partitions_read: usize,
    /// Total partitions in the snapshot.
    pub partitions_total: usize,
    /// Page bytes this scan read from disk (buffer-pool misses). Zero for
    /// memory-resident scans.
    pub io_cold_bytes: u64,
    /// Page bytes this scan served from the buffer pool (hits). Zero for
    /// memory-resident scans.
    pub io_cached_bytes: u64,
    /// Selection-vector chunks the vectorized kernels evaluated (zero on
    /// the row-at-a-time oracle paths and for tautological predicates).
    pub chunks_evaluated: u64,
    /// Row × kernel evaluations the adaptive AND order skipped because the
    /// selection vector had already shrunk (zero on the oracle paths).
    pub rows_short_circuited: u64,
    /// Bytes of *delta-run* partitions this scan evaluated — a subset of
    /// `bytes_scanned`. Delta runs are always memory-resident, so on the
    /// pooled paths the invariant becomes
    /// `io_cold_bytes + io_cached_bytes + delta_bytes_scanned ==
    /// bytes_scanned`. Zero when the snapshot carries no delta overlay.
    pub delta_bytes_scanned: u64,
}

impl SnapshotScan {
    /// Fraction of the table read — the same unit as the cost model's
    /// `c(s, q)`.
    pub fn fraction_read(&self, total_rows: u64) -> f64 {
        if total_rows == 0 {
            0.0
        } else {
            self.rows_read as f64 / total_rows as f64
        }
    }
}

/// An immutable, fully materialized physical organization of one table.
#[derive(Clone, Debug)]
pub struct TableSnapshot {
    layout: LayoutId,
    name: String,
    epoch: u64,
    partitions: Vec<SnapshotPartition>,
    total_rows: u64,
    /// Pin on the on-disk generation backing this snapshot, when it was
    /// persisted through a [`crate::TieredStore`]. Holding the snapshot
    /// holds the generation directory alive; the last drop after the
    /// generation is superseded garbage-collects it.
    generation: Option<Arc<Generation>>,
    /// Unfolded writes layered over the base partitions: delta runs whose
    /// rows scans union in, and tombstones they subtract. `None` (the
    /// common case for a read-mostly table) keeps every scan path exactly
    /// on its pre-ingestion fast path.
    delta: Option<Arc<DeltaOverlay>>,
}

impl TableSnapshot {
    /// Materialize the snapshot of `base` under a row → partition
    /// `assignment` into `k` partitions. `layout`/`name` identify the layout
    /// the assignment came from.
    ///
    /// This is the physical-reorganization work the background thread
    /// performs (read → re-route → regroup), minus the disk write. In
    /// [`crate::TieredStore`]-backed (tiered) serving the reorganizer
    /// additionally persists the built snapshot as the next on-disk
    /// generation before publishing it, so the write + fsync cost of the
    /// rewrite is measured on the same run.
    ///
    /// # Panics
    /// Panics if `assignment` length differs from the base row count or a
    /// partition id is out of `0..k` — assignments come from layout specs,
    /// so a mismatch is a bug.
    pub fn build(
        base: &Table,
        assignment: &[u32],
        k: usize,
        layout: LayoutId,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(assignment.len(), base.num_rows(), "assignment length");
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (row, &bid) in assignment.iter().enumerate() {
            groups[bid as usize].push(row as u32);
        }
        let meta = build_metadata(base, assignment, k);
        let partitions = groups
            .into_iter()
            .zip(meta)
            .map(|(rows, meta)| {
                let data = Arc::new(base.project_rows(&rows));
                let bytes = data.memory_bytes() as u64;
                SnapshotPartition {
                    rows: rows.into(),
                    data,
                    meta,
                    bytes,
                    extents: None,
                }
            })
            .collect();
        Self {
            layout,
            name: name.into(),
            epoch: 0,
            partitions,
            total_rows: base.num_rows() as u64,
            generation: None,
            delta: None,
        }
    }

    /// [`TableSnapshot::build`] for a base whose global row ids are *not*
    /// `0..n`: `row_ids[pos]` is the global id of `base` row `pos`. This is
    /// the fold path — once deltas with tombstones have been folded in, the
    /// surviving ids are sparse but must stay stable so scans keep
    /// returning layout-independent row sets and unfolded tombstones still
    /// name the rows they kill.
    ///
    /// # Panics
    /// Panics if `assignment` or `row_ids` length differs from the base
    /// row count, or a partition id is out of `0..k`.
    pub fn build_with_rows(
        base: &Table,
        row_ids: &[u32],
        assignment: &[u32],
        k: usize,
        layout: LayoutId,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(assignment.len(), base.num_rows(), "assignment length");
        assert_eq!(row_ids.len(), base.num_rows(), "row-id length");
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (pos, &bid) in assignment.iter().enumerate() {
            groups[bid as usize].push(pos as u32);
        }
        let meta = build_metadata(base, assignment, k);
        let partitions = groups
            .into_iter()
            .zip(meta)
            .map(|(positions, meta)| {
                let data = Arc::new(base.project_rows(&positions));
                let bytes = data.memory_bytes() as u64;
                let rows: Vec<u32> = positions.iter().map(|&p| row_ids[p as usize]).collect();
                SnapshotPartition {
                    rows: rows.into(),
                    data,
                    meta,
                    bytes,
                    extents: None,
                }
            })
            .collect();
        Self {
            layout,
            name: name.into(),
            epoch: 0,
            partitions,
            total_rows: base.num_rows() as u64,
            generation: None,
            delta: None,
        }
    }

    /// Reassemble a snapshot from already-materialized partitions — the
    /// recovery path of [`crate::TieredStore::open`].
    pub(crate) fn from_parts(
        layout: LayoutId,
        name: String,
        partitions: Vec<SnapshotPartition>,
    ) -> Self {
        let total_rows = partitions.iter().map(|p| p.rows.len() as u64).sum();
        Self {
            layout,
            name,
            epoch: 0,
            partitions,
            total_rows,
            generation: None,
            delta: None,
        }
    }

    /// Attach the on-disk generation backing this snapshot: switch the
    /// per-partition byte accounting to encoded file sizes and record each
    /// partition's page index (column payload extents) for pooled scans.
    pub(crate) fn attach_generation(
        &mut self,
        generation: Arc<Generation>,
        files: Vec<(u64, Option<Arc<[ColumnExtent]>>)>,
    ) {
        debug_assert_eq!(files.len(), self.partitions.len());
        for (part, (bytes, extents)) in self.partitions.iter_mut().zip(files) {
            part.bytes = bytes;
            part.extents = extents;
        }
        self.generation = Some(generation);
    }

    /// The layout this snapshot materializes.
    pub fn layout(&self) -> LayoutId {
        self.layout
    }

    /// Human-readable layout provenance.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publish generation stamped by [`SnapshotCell::publish`] (0 for a
    /// snapshot that was never published).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The materialized partitions.
    pub fn partitions(&self) -> &[SnapshotPartition] {
        &self.partitions
    }

    /// Total rows across all partitions.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Total scan footprint in bytes: Σ [`SnapshotPartition::bytes`] —
    /// what a full (unpruned) scan of this snapshot reads.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes).sum()
    }

    /// The on-disk generation backing this snapshot, when it was persisted
    /// through a [`crate::TieredStore`] (`None` for memory-only snapshots).
    pub fn generation(&self) -> Option<&Arc<Generation>> {
        self.generation.as_ref()
    }

    /// This snapshot with `delta` layered over its base partitions. Scans
    /// union the delta runs in and subtract the tombstones; `None` removes
    /// the overlay.
    #[must_use]
    pub fn with_delta(mut self, delta: Option<Arc<DeltaOverlay>>) -> Self {
        self.delta = delta;
        self
    }

    /// Replace the delta overlay in place (see
    /// [`TableSnapshot::with_delta`]).
    pub fn set_delta(&mut self, delta: Option<Arc<DeltaOverlay>>) {
        self.delta = delta;
    }

    /// The delta overlay layered over this snapshot, if any.
    pub fn delta(&self) -> Option<&Arc<DeltaOverlay>> {
        self.delta.as_ref()
    }

    /// Rows a tautological scan of this snapshot returns: base rows, plus
    /// delta-run rows, minus tombstones. Equal to
    /// [`TableSnapshot::total_rows`] when no delta is attached.
    pub fn live_rows(&self) -> u64 {
        match &self.delta {
            None => self.total_rows,
            Some(d) => self.total_rows + d.delta_rows - d.tombstones.len() as u64,
        }
    }

    /// Partitions a scan considers: base partitions plus delta runs.
    fn partitions_total(&self) -> usize {
        self.partitions.len() + self.delta.as_ref().map_or(0, |d| d.runs.len())
    }

    /// Scan the delta runs through the vectorized kernel layer,
    /// accumulating matches and accounting into `out`. Delta runs are
    /// always memory-resident, so their bytes land in `bytes_scanned`
    /// *and* `delta_bytes_scanned`, never in the I/O split. When
    /// `payload_free_tautology` is set (the pooled paths), a tautological
    /// predicate takes every run row without charging payload bytes,
    /// mirroring the base-partition rule.
    fn scan_delta_kernel(
        &self,
        compiled: &CompiledPredicate,
        predicate: &Predicate,
        payload_free_tautology: bool,
        sel: &mut Vec<u32>,
        counters: &mut KernelCounters,
        out: &mut SnapshotScan,
    ) {
        let Some(delta) = &self.delta else { return };
        let mut cols: Vec<&Column> = Vec::with_capacity(compiled.columns().len());
        for run in &delta.runs {
            if !run.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            out.rows_read += run.data.num_rows() as u64;
            if payload_free_tautology && compiled.is_tautology() {
                out.matches.extend_from_slice(&run.rows);
                continue;
            }
            out.bytes_scanned += run.bytes;
            out.delta_bytes_scanned += run.bytes;
            cols.clear();
            cols.extend(
                compiled
                    .columns()
                    .iter()
                    .map(|cp| run.data.column(cp.col())),
            );
            kernel::scan_partition(compiled, &cols, &run.rows, sel, &mut out.matches, counters);
        }
    }

    /// Row-at-a-time counterpart of [`TableSnapshot::scan_delta_kernel`]
    /// for the oracle paths: identical accounting, per-row interpretation.
    fn scan_delta_rowwise(
        &self,
        predicate: &Predicate,
        payload_free_tautology: bool,
        out: &mut SnapshotScan,
    ) {
        let Some(delta) = &self.delta else { return };
        for run in &delta.runs {
            if !run.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            out.rows_read += run.data.num_rows() as u64;
            if payload_free_tautology && predicate.atoms().is_empty() {
                out.matches.extend_from_slice(&run.rows);
                continue;
            }
            out.bytes_scanned += run.bytes;
            out.delta_bytes_scanned += run.bytes;
            for local in 0..run.data.num_rows() {
                if run.data.row_matches(local, predicate) {
                    out.matches.push(run.rows[local]);
                }
            }
        }
    }

    /// Drop tombstoned rows from a sorted match set. Tombstones are sorted
    /// unique global ids, so each removal check is a binary search.
    fn subtract_tombstones(&self, out: &mut SnapshotScan) {
        if let Some(delta) = &self.delta {
            if !delta.tombstones.is_empty() {
                let tombs = &delta.tombstones;
                out.matches.retain(|r| tombs.binary_search(r).is_err());
            }
        }
    }

    /// Execute one predicate against the snapshot: prune partitions by
    /// metadata, evaluate the survivors through the vectorized
    /// [`kernel`] layer, and report the matching *global*
    /// row ids (ascending, so results are layout-independent).
    pub fn scan(&self, predicate: &Predicate) -> SnapshotScan {
        let compiled = CompiledPredicate::compile(predicate);
        let mut out = SnapshotScan {
            partitions_total: self.partitions_total(),
            ..Default::default()
        };
        let mut counters = KernelCounters::default();
        let mut sel: Vec<u32> = Vec::new();
        let mut cols: Vec<&Column> = Vec::with_capacity(compiled.columns().len());
        for part in &self.partitions {
            if !part.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            out.rows_read += part.data.num_rows() as u64;
            out.bytes_scanned += part.bytes;
            cols.clear();
            cols.extend(
                compiled
                    .columns()
                    .iter()
                    .map(|cp| part.data.column(cp.col())),
            );
            kernel::scan_partition(
                &compiled,
                &cols,
                &part.rows,
                &mut sel,
                &mut out.matches,
                &mut counters,
            );
        }
        self.scan_delta_kernel(
            &compiled,
            predicate,
            false,
            &mut sel,
            &mut counters,
            &mut out,
        );
        out.chunks_evaluated = counters.chunks_evaluated;
        out.rows_short_circuited = counters.rows_short_circuited;
        out.matches.sort_unstable();
        self.subtract_tombstones(&mut out);
        out
    }

    /// Row-at-a-time reference implementation of [`TableSnapshot::scan`]:
    /// the original interpreter, kept as the correctness oracle for the
    /// vectorized kernels (property tests assert result equality) and as
    /// the baseline the `scan_kernels` microbench measures against. Kernel
    /// counters stay zero.
    pub fn scan_rowwise(&self, predicate: &Predicate) -> SnapshotScan {
        let mut out = SnapshotScan {
            partitions_total: self.partitions_total(),
            ..Default::default()
        };
        for part in &self.partitions {
            if !part.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            out.rows_read += part.data.num_rows() as u64;
            out.bytes_scanned += part.bytes;
            for local in 0..part.data.num_rows() {
                if part.data.row_matches(local, predicate) {
                    out.matches.push(part.rows[local]);
                }
            }
        }
        self.scan_delta_rowwise(predicate, false, &mut out);
        out.matches.sort_unstable();
        self.subtract_tombstones(&mut out);
        out
    }

    /// Fetch and decode the payloads of `cols` for partition `index`
    /// through the pool, accumulating byte accounting into `out`. Returned
    /// columns align with `cols`.
    fn fetch_partition_columns(
        &self,
        generation: &Arc<Generation>,
        index: usize,
        part: &SnapshotPartition,
        cols: &[ColId],
        pool: &BufferPool,
        out: &mut SnapshotScan,
    ) -> Result<Vec<Column>> {
        let extents = part
            .extents
            .as_ref()
            .ok_or_else(|| StorageError::Corrupt(format!("partition {index} has no page index")))?;
        let nrows = part.rows.len();
        let path = generation.dir().join(part_file(index));
        let mut decoded = Vec::with_capacity(cols.len());
        for &col in cols {
            let extent = extents.get(col).ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "column {col} missing from partition {index} page index"
                ))
            })?;
            let (payload, io) =
                pool.read_range(generation, index as u32, &path, extent.offset, extent.len)?;
            out.io_cold_bytes += io.cold_bytes;
            out.io_cached_bytes += io.cached_bytes;
            out.bytes_scanned += io.cold_bytes + io.cached_bytes;
            // Checksums guard the disk→memory boundary: a read that touched
            // disk verifies the payload; a read served entirely from cached
            // pages re-reads bytes a cold read already verified.
            decoded.push(if io.cold_bytes > 0 {
                extent.decode(&payload, nrows, col)?
            } else {
                extent.decode_trusted(&payload, nrows, col)?
            });
        }
        Ok(decoded)
    }

    /// Execute one predicate against the snapshot's *on-disk* generation
    /// through a [`BufferPool`]: prune partitions by metadata, then for
    /// each surviving partition fetch only the pages covering the
    /// predicate's column payloads, decode into chunk-ready columns, and
    /// evaluate through the vectorized [`kernel`] layer.
    ///
    /// Returns exactly the matches [`TableSnapshot::scan`] returns, but the
    /// bytes actually travel through the pool: `bytes_scanned` counts the
    /// page bytes touched and `io_cold_bytes` / `io_cached_bytes` split
    /// them into disk reads and pool hits — the block-transfer accounting
    /// the cost model's scan side needs to be honest about. An empty
    /// (always-true) predicate matches every row *without reading any
    /// column payload*: it needs no cell values, so its honest I/O cost is
    /// zero bytes.
    ///
    /// Fails if the snapshot is not backed by a footer-indexed generation
    /// (memory-only snapshots, or generations written before the page
    /// index existed) or on I/O/corruption errors; callers degrade to the
    /// in-memory [`TableSnapshot::scan`].
    pub fn scan_pooled(&self, predicate: &Predicate, pool: &BufferPool) -> Result<SnapshotScan> {
        let generation = self
            .generation
            .as_ref()
            .ok_or_else(|| StorageError::Corrupt("snapshot has no on-disk generation".into()))?;
        let generation = Arc::clone(generation);
        let compiled = CompiledPredicate::compile(predicate);
        let cols: Vec<ColId> = compiled.columns().iter().map(|cp| cp.col()).collect();
        let mut out = SnapshotScan {
            partitions_total: self.partitions_total(),
            ..Default::default()
        };
        let mut counters = KernelCounters::default();
        let mut sel: Vec<u32> = Vec::new();
        for (index, part) in self.partitions.iter().enumerate() {
            if !part.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            out.rows_read += part.rows.len() as u64;
            if compiled.is_tautology() {
                out.matches.extend_from_slice(&part.rows);
                continue;
            }
            let decoded =
                self.fetch_partition_columns(&generation, index, part, &cols, pool, &mut out)?;
            let col_refs: Vec<&Column> = decoded.iter().collect();
            kernel::scan_partition(
                &compiled,
                &col_refs,
                &part.rows,
                &mut sel,
                &mut out.matches,
                &mut counters,
            );
        }
        self.scan_delta_kernel(
            &compiled,
            predicate,
            true,
            &mut sel,
            &mut counters,
            &mut out,
        );
        out.chunks_evaluated = counters.chunks_evaluated;
        out.rows_short_circuited = counters.rows_short_circuited;
        out.matches.sort_unstable();
        self.subtract_tombstones(&mut out);
        Ok(out)
    }

    /// Row-at-a-time reference implementation of
    /// [`TableSnapshot::scan_pooled`]: identical I/O (same column payloads
    /// through the same pool, including the zero-I/O empty-predicate rule)
    /// but per-row atom interpretation — the correctness oracle for the
    /// pooled kernel path and the baseline the `scan_kernels` microbench
    /// measures against. Atom column lookups go through a slot index
    /// computed once per scan, not a per-row linear search. Kernel counters
    /// stay zero.
    pub fn scan_pooled_rowwise(
        &self,
        predicate: &Predicate,
        pool: &BufferPool,
    ) -> Result<SnapshotScan> {
        let generation = self
            .generation
            .as_ref()
            .ok_or_else(|| StorageError::Corrupt("snapshot has no on-disk generation".into()))?;
        let generation = Arc::clone(generation);
        let cols = predicate.columns();
        // Direct atom → decoded-column slot index, resolved once.
        let atom_slots: Vec<usize> = predicate
            .atoms()
            .iter()
            .map(|a| {
                cols.iter()
                    .position(|&c| c == a.col())
                    .expect("atom column in predicate.columns()")
            })
            .collect();
        let mut out = SnapshotScan {
            partitions_total: self.partitions_total(),
            ..Default::default()
        };
        for (index, part) in self.partitions.iter().enumerate() {
            if !part.meta.may_match(predicate) {
                continue;
            }
            out.partitions_read += 1;
            let nrows = part.rows.len();
            out.rows_read += nrows as u64;
            if cols.is_empty() {
                out.matches.extend_from_slice(&part.rows);
                continue;
            }
            let decoded =
                self.fetch_partition_columns(&generation, index, part, &cols, pool, &mut out)?;
            for local in 0..nrows {
                let hit =
                    predicate.atoms().iter().zip(&atom_slots).all(|(a, &slot)| {
                        crate::column::atom_matches_ref(a, decoded[slot].get(local))
                    });
                if hit {
                    out.matches.push(part.rows[local]);
                }
            }
        }
        self.scan_delta_rowwise(predicate, true, &mut out);
        out.matches.sort_unstable();
        self.subtract_tombstones(&mut out);
        Ok(out)
    }

    /// The metadata-only [`LayoutModel`] view of this snapshot (exact, since
    /// the snapshot is fully materialized). Base partitions only: the cost
    /// model reasons about the *organized* layout, and delta runs are the
    /// transient part every candidate layout pays identically.
    pub fn model(&self) -> LayoutModel {
        LayoutModel::new(
            self.layout,
            self.name.clone(),
            self.partitions.iter().map(|p| p.meta.clone()).collect(),
        )
    }

    /// All global row ids across *base* partitions, ascending. A
    /// well-formed unfolded snapshot covers `0..total_rows` exactly once
    /// (folded bases are sparse but still duplicate-free); test helper.
    pub fn row_cover(&self) -> Vec<u32> {
        let mut all: Vec<u32> = self
            .partitions
            .iter()
            .flat_map(|p| p.rows.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// The atomic publish point readers pin snapshots from.
///
/// Readers call [`SnapshotCell::pin`] to get an `Arc` to the current
/// snapshot — from then on their view is immutable regardless of concurrent
/// publishes. The background reorganizer calls [`SnapshotCell::publish`]
/// with the next snapshot; the swap is a single pointer store under a brief
/// write lock, never blocking on reader *scan* work (readers hold the lock
/// only long enough to clone the `Arc`).
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<TableSnapshot>>,
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// A cell initially serving `initial` (stamped epoch 1).
    pub fn new(mut initial: TableSnapshot) -> Self {
        initial.epoch = 1;
        Self {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(1),
        }
    }

    /// Pin the current snapshot. The returned `Arc` stays valid (and
    /// unchanged) for as long as the caller holds it.
    pub fn pin(&self) -> Arc<TableSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Atomically replace the served snapshot, returning the one it
    /// replaced. The new snapshot's epoch is stamped one past the old.
    pub fn publish(&self, mut next: TableSnapshot) -> Arc<TableSnapshot> {
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        next.epoch = epoch;
        std::mem::replace(&mut *slot, Arc::new(next))
    }

    /// Epoch of the currently served snapshot (monotone, starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use oreo_query::{Atom, ColumnType, Scalar, Schema};
    use std::sync::Arc;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("w", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i), Scalar::Int((i * 7) % 100)]);
        }
        b.finish()
    }

    fn between(col: usize, lo: i64, hi: i64) -> Predicate {
        Predicate::new(vec![Atom::Between {
            col,
            low: Scalar::Int(lo),
            high: Scalar::Int(hi),
        }])
    }

    /// A table exercising all three physical column representations:
    /// `v` = i, `w` = (i*7)%100, `f` = i/3.0, `tag` = cycled category.
    fn rich_table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("w", ColumnType::Int),
            ("f", ColumnType::Float),
            ("tag", ColumnType::Str),
        ]));
        let tags = ["eu", "us", "apac", "latam"];
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int((i * 7) % 100),
                Scalar::Float(i as f64 / 3.0),
                Scalar::from(tags[(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn build_covers_every_row_once() {
        let t = table(100);
        let assignment: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let snap = TableSnapshot::build(&t, &assignment, 4, 7, "mod4");
        assert_eq!(snap.num_partitions(), 4);
        assert_eq!(snap.total_rows(), 100);
        assert_eq!(snap.row_cover(), (0..100u32).collect::<Vec<_>>());
        assert_eq!(snap.layout(), 7);
    }

    #[test]
    fn scan_matches_direct_filter_on_any_layout() {
        let t = table(200);
        let pred = between(1, 10, 40); // on w = (i*7)%100
        let expected: Vec<u32> = (0..200u32)
            .filter(|&r| t.row_matches(r as usize, &pred))
            .collect();
        for (k, assign) in [
            (1, (0..200).map(|_| 0).collect::<Vec<u32>>()),
            (4, (0..200).map(|i| (i / 50) as u32).collect()),
            (8, (0..200).map(|i| (i % 8) as u32).collect()),
        ] {
            let snap = TableSnapshot::build(&t, &assign, k, 0, "t");
            let scan = snap.scan(&pred);
            assert_eq!(scan.matches, expected, "k={k}");
            assert!(scan.rows_read >= expected.len() as u64);
            assert_eq!(scan.partitions_total, k);
        }
    }

    #[test]
    fn range_layout_prunes_partitions() {
        let t = table(100);
        // range partition on v: 4 partitions of 25
        let assign: Vec<u32> = (0..100).map(|i| (i / 25) as u32).collect();
        let snap = TableSnapshot::build(&t, &assign, 4, 0, "range");
        let scan = snap.scan(&between(0, 0, 24));
        assert_eq!(scan.partitions_read, 1);
        assert_eq!(scan.rows_read, 25);
        assert_eq!(scan.fraction_read(snap.total_rows()), 0.25);
        // and the model view agrees with the physical fraction read
        let q = oreo_query::Query::new(between(0, 0, 24));
        assert!((snap.model().cost(&q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cell_pin_survives_publish() {
        let t = table(60);
        let a1: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
        let a2: Vec<u32> = (0..60).map(|i| (i / 30) as u32).collect();
        let cell = SnapshotCell::new(TableSnapshot::build(&t, &a1, 2, 0, "mod2"));
        let pinned = cell.pin();
        assert_eq!(pinned.epoch(), 1);
        let old = cell.publish(TableSnapshot::build(&t, &a2, 2, 1, "half"));
        assert_eq!(old.layout(), 0);
        assert_eq!(cell.epoch(), 2);
        // the pinned snapshot is untouched by the publish
        assert_eq!(pinned.layout(), 0);
        assert_eq!(pinned.row_cover(), (0..60u32).collect::<Vec<_>>());
        assert_eq!(cell.pin().layout(), 1);
        assert_eq!(cell.pin().epoch(), 2);
    }

    /// Multi-atom predicate over all three column representations, with a
    /// selective leading column so the AND order has work to skip.
    fn rich_pred() -> Predicate {
        Predicate::new(vec![
            Atom::Between {
                col: 1,
                low: Scalar::Int(10),
                high: Scalar::Int(40),
            },
            Atom::Compare {
                col: 2,
                op: oreo_query::CompareOp::Ge,
                value: Scalar::Float(5.0),
            },
            Atom::InSet {
                col: 3,
                set: vec![Scalar::from("eu"), Scalar::from("apac")],
            },
        ])
    }

    #[test]
    fn kernel_scan_equals_rowwise_at_chunk_boundaries() {
        // Partition sizes straddling the 1024-row chunk: 1023/1024/1025
        // plus two-chunk sizes, on every column representation.
        for n in [1023i64, 1024, 1025, 2048, 2049] {
            let t = rich_table(n);
            let assign: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
            let snap = TableSnapshot::build(&t, &assign, 2, 0, "mod2");
            let pred = rich_pred();
            let fast = snap.scan(&pred);
            let oracle = snap.scan_rowwise(&pred);
            assert_eq!(fast.matches, oracle.matches, "n={n}");
            assert_eq!(fast.rows_read, oracle.rows_read);
            assert_eq!(fast.bytes_scanned, oracle.bytes_scanned);
            assert_eq!(fast.partitions_read, oracle.partitions_read);
            let expected_chunks: u64 = snap
                .partitions()
                .iter()
                .filter(|p| p.meta.may_match(&pred))
                .map(|p| (p.rows.len() as u64).div_ceil(1024))
                .sum();
            assert_eq!(fast.chunks_evaluated, expected_chunks, "n={n}");
            assert_eq!(oracle.chunks_evaluated, 0, "oracle path runs no kernels");
            assert_eq!(oracle.rows_short_circuited, 0);
        }
    }

    #[test]
    fn kernel_counters_report_short_circuited_work() {
        let t = rich_table(3000);
        let assign: Vec<u32> = (0..3000).map(|i| (i % 2) as u32).collect();
        let snap = TableSnapshot::build(&t, &assign, 2, 0, "mod2");
        let scan = snap.scan(&rich_pred());
        assert!(scan.chunks_evaluated > 0);
        assert!(
            scan.rows_short_circuited > 0,
            "a selective multi-atom AND must skip later-kernel work"
        );
    }

    #[test]
    fn pooled_empty_predicate_reads_no_payload() {
        let t = rich_table(300);
        let assign: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let mut snap = TableSnapshot::build(&t, &assign, 3, 0, "mod3");
        let root = std::env::temp_dir().join(format!(
            "oreo-snap-empty-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let (store, _) = crate::tiered::TieredStore::create(&root, &mut snap).unwrap();
        let pool = crate::bufpool::BufferPool::new(crate::bufpool::BufferPoolConfig::default());
        for scan in [
            snap.scan_pooled(&Predicate::always_true(), &pool).unwrap(),
            snap.scan_pooled_rowwise(&Predicate::always_true(), &pool)
                .unwrap(),
        ] {
            assert_eq!(scan.matches, (0..300u32).collect::<Vec<_>>());
            assert_eq!(scan.rows_read, 300);
            assert_eq!(scan.partitions_read, 3);
            assert_eq!(scan.bytes_scanned, 0, "tautology needs no column payload");
            assert_eq!(scan.io_cold_bytes, 0);
            assert_eq!(scan.io_cached_bytes, 0);
        }
        drop(store);
        drop(snap);
        let _ = std::fs::remove_dir_all(&root);
    }

    fn two_col_schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs([
            ("v", ColumnType::Int),
            ("w", ColumnType::Int),
        ]))
    }

    #[test]
    fn delta_aware_scan_unions_runs_and_subtracts_tombstones() {
        use crate::delta::{DeltaBuffer, IngestOp, MergePolicy};
        let t = table(100);
        let assign: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let snap = TableSnapshot::build(&t, &assign, 4, 0, "mod4");
        let mut buf = DeltaBuffer::new(two_col_schema(), 100, MergePolicy::KBinomial { k: 2 });
        buf.apply(&[
            IngestOp::Append {
                values: vec![Scalar::Int(200), Scalar::Int(1)],
            },
            IngestOp::Delete { row: 3 },
        ])
        .unwrap();
        buf.apply(&[
            IngestOp::Update {
                row: 10,
                values: vec![Scalar::Int(300), Scalar::Int(2)],
            },
            IngestOp::Append {
                values: vec![Scalar::Int(-5), Scalar::Int(3)],
            },
        ])
        .unwrap();
        // ids: append 200 → 100, update re-append 300 → 101, append -5 → 102;
        // tombstones {3, 10}
        let snap = snap.with_delta(buf.overlay());
        assert_eq!(snap.live_rows(), 100 + 3 - 2);

        let base_hit = snap.scan(&between(0, 0, 99));
        let expected: Vec<u32> = (0..100u32).filter(|r| *r != 3 && *r != 10).collect();
        assert_eq!(base_hit.matches, expected);
        assert!(base_hit.partitions_total > 4, "runs count as partitions");
        // run metadata prunes like base metadata: no delta value is in
        // [0, 99], so the runs cost this scan nothing
        assert_eq!(base_hit.delta_bytes_scanned, 0);

        let delta_hit = snap.scan(&between(0, 150, 400));
        assert_eq!(delta_hit.matches, vec![100, 101]);
        assert!(delta_hit.delta_bytes_scanned > 0, "delta runs evaluated");

        // the rowwise oracle agrees on matches *and* accounting
        for pred in [
            between(0, 0, 99),
            between(0, 150, 400),
            Predicate::always_true(),
        ] {
            let fast = snap.scan(&pred);
            let oracle = snap.scan_rowwise(&pred);
            assert_eq!(fast.matches, oracle.matches);
            assert_eq!(fast.rows_read, oracle.rows_read);
            assert_eq!(fast.bytes_scanned, oracle.bytes_scanned);
            assert_eq!(fast.delta_bytes_scanned, oracle.delta_bytes_scanned);
            assert_eq!(fast.partitions_read, oracle.partitions_read);
            assert_eq!(fast.partitions_total, oracle.partitions_total);
        }
        assert_eq!(
            snap.scan(&Predicate::always_true()).matches.len() as u64,
            snap.live_rows()
        );
    }

    #[test]
    fn pooled_delta_scan_matches_memory_and_accounts_io() {
        use crate::delta::{DeltaBuffer, IngestOp, MergePolicy};
        let t = table(120);
        let assign: Vec<u32> = (0..120).map(|i| (i % 3) as u32).collect();
        let mut snap = TableSnapshot::build(&t, &assign, 3, 0, "mod3");
        let root = std::env::temp_dir().join(format!(
            "oreo-snap-delta-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let (store, _) = crate::tiered::TieredStore::create(&root, &mut snap).unwrap();
        let mut buf = DeltaBuffer::new(two_col_schema(), 120, MergePolicy::KBinomial { k: 2 });
        buf.apply(&[
            IngestOp::Append {
                values: vec![Scalar::Int(125), Scalar::Int(7)],
            },
            IngestOp::Append {
                values: vec![Scalar::Int(11), Scalar::Int(7)],
            },
            IngestOp::Delete { row: 20 },
        ])
        .unwrap();
        let snap = snap.with_delta(buf.overlay());
        let pool = crate::bufpool::BufferPool::new(crate::bufpool::BufferPoolConfig::default());
        let pred = between(0, 10, 130);
        let mem = snap.scan(&pred);
        for round in 0..2 {
            let pooled = snap.scan_pooled(&pred, &pool).unwrap();
            let oracle = snap.scan_pooled_rowwise(&pred, &pool).unwrap();
            assert_eq!(pooled.matches, mem.matches, "round {round}");
            assert_eq!(pooled.matches, oracle.matches);
            assert!(pooled.delta_bytes_scanned > 0);
            assert_eq!(
                pooled.io_cold_bytes + pooled.io_cached_bytes + pooled.delta_bytes_scanned,
                pooled.bytes_scanned,
                "delta bytes never travel through the pool"
            );
            assert_eq!(
                oracle.io_cold_bytes + oracle.io_cached_bytes + oracle.delta_bytes_scanned,
                oracle.bytes_scanned
            );
        }
        // tautology takes every live row without touching any payload
        let taut = snap.scan_pooled(&Predicate::always_true(), &pool).unwrap();
        assert_eq!(taut.matches.len() as u64, snap.live_rows());
        assert_eq!(taut.bytes_scanned, 0);
        assert_eq!(taut.delta_bytes_scanned, 0);
        drop(store);
        drop(snap);
        let _ = std::fs::remove_dir_all(&root);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn atom_any() -> impl Strategy<Value = Atom> {
            prop_oneof![
                // int range on v (col 0, domain 0..n) or w (col 1, 0..100)
                (0usize..2, -20i64..120, 0i64..80).prop_map(|(col, lo, span)| Atom::Between {
                    col,
                    low: Scalar::Int(lo),
                    high: Scalar::Int(lo + span),
                }),
                // possibly-contradictory compare on w
                (-20i64..120, 0usize..5).prop_map(|(v, op)| Atom::Compare {
                    col: 1,
                    op: [
                        oreo_query::CompareOp::Lt,
                        oreo_query::CompareOp::Le,
                        oreo_query::CompareOp::Gt,
                        oreo_query::CompareOp::Ge,
                        oreo_query::CompareOp::Eq,
                    ][op],
                    value: Scalar::Int(v),
                }),
                // float bound on f (col 2)
                (-10i64..80).prop_map(|v| Atom::Compare {
                    col: 2,
                    op: oreo_query::CompareOp::Le,
                    value: Scalar::Float(v as f64 / 2.0),
                }),
                // categorical membership on tag (col 3), may include misses
                proptest::collection::vec(0usize..5, 1..3).prop_map(|idx| Atom::InSet {
                    col: 3,
                    set: idx
                        .into_iter()
                        .map(|i| Scalar::from(["eu", "us", "apac", "latam", "none"][i]))
                        .collect(),
                }),
            ]
        }

        /// 0 atoms = tautology; repeated columns and contradictions arise
        /// naturally from the strategy.
        fn pred_any() -> impl Strategy<Value = Predicate> {
            proptest::collection::vec(atom_any(), 0..4).prop_map(Predicate::new)
        }

        proptest! {
            /// Snapshot build never loses or duplicates rows, whatever the
            /// assignment, and scans return exactly the predicate's row set.
            #[test]
            fn build_and_scan_preserve_row_sets(
                n in 1usize..120,
                k in 1usize..6,
                seedish in proptest::collection::vec(0u32..6, 1..120),
                lo in -10i64..110,
                span in 0i64..60,
            ) {
                let t = table(n as i64);
                let assignment: Vec<u32> = (0..n)
                    .map(|i| seedish[i % seedish.len()] % k as u32)
                    .collect();
                let snap = TableSnapshot::build(&t, &assignment, k, 0, "p");
                prop_assert_eq!(snap.row_cover(), (0..n as u32).collect::<Vec<_>>());
                let pred = between(0, lo, lo + span);
                let expected: Vec<u32> = (0..n as u32)
                    .filter(|&r| t.row_matches(r as usize, &pred))
                    .collect();
                prop_assert_eq!(snap.scan(&pred).matches, expected);
            }

            /// Pooled (page-granular, disk-backed) scans return exactly
            /// what in-memory scans return, for random layouts, page
            /// sizes, pool capacities, and predicates — cold and warm.
            #[test]
            fn pooled_scan_equals_memory_scan(
                n in 1usize..100,
                k in 1usize..5,
                seedish in proptest::collection::vec(0u32..5, 1..100),
                page_pow in 5u32..12,   // 32 B .. 2 KiB pages
                cap_pages in 1u64..32,
                lo in -10i64..110,
                span in 0i64..60,
            ) {
                let t = table(n as i64);
                let assignment: Vec<u32> = (0..n)
                    .map(|i| seedish[i % seedish.len()] % k as u32)
                    .collect();
                let mut snap = TableSnapshot::build(&t, &assignment, k, 0, "p");
                let root = std::env::temp_dir().join(format!(
                    "oreo-snap-prop-{}-{}",
                    std::process::id(),
                    rand::random::<u64>()
                ));
                let (store, _) = crate::tiered::TieredStore::create(&root, &mut snap).unwrap();
                let page_bytes = 1usize << page_pow;
                let pool = crate::bufpool::BufferPool::new(crate::bufpool::BufferPoolConfig {
                    capacity_bytes: cap_pages * page_bytes as u64,
                    page_bytes,
                });
                let pred = between(0, lo, lo + span);
                let mem = snap.scan(&pred);
                for round in 0..2 {  // cold pass, then (possibly) warm
                    let pooled = snap.scan_pooled(&pred, &pool).unwrap();
                    prop_assert_eq!(&pooled.matches, &mem.matches, "round {}", round);
                    prop_assert_eq!(pooled.rows_read, mem.rows_read);
                    prop_assert_eq!(pooled.partitions_read, mem.partitions_read);
                    prop_assert_eq!(
                        pooled.io_cold_bytes + pooled.io_cached_bytes,
                        pooled.bytes_scanned
                    );
                }
                drop(store);
                drop(snap);
                let _ = std::fs::remove_dir_all(&root);
            }

            /// The vectorized in-memory scan path is indistinguishable from
            /// the row-at-a-time oracle — matches *and* accounting — over
            /// random layouts, chunk-straddling row counts, and predicates
            /// including empty, contradictory, and multi-atom conjunctions
            /// over every physical column representation.
            #[test]
            fn vectorized_scan_equals_rowwise_oracle(
                n in 1usize..2200,
                k in 1usize..6,
                seedish in proptest::collection::vec(0u32..6, 1..60),
                pred in pred_any(),
            ) {
                let t = rich_table(n as i64);
                let assignment: Vec<u32> = (0..n)
                    .map(|i| seedish[i % seedish.len()] % k as u32)
                    .collect();
                let snap = TableSnapshot::build(&t, &assignment, k, 0, "p");
                let fast = snap.scan(&pred);
                let oracle = snap.scan_rowwise(&pred);
                prop_assert_eq!(&fast.matches, &oracle.matches, "pred {:?}", pred);
                prop_assert_eq!(fast.rows_read, oracle.rows_read);
                prop_assert_eq!(fast.bytes_scanned, oracle.bytes_scanned);
                prop_assert_eq!(fast.partitions_read, oracle.partitions_read);
                prop_assert_eq!(oracle.chunks_evaluated, 0);
                prop_assert_eq!(oracle.rows_short_circuited, 0);
            }

            /// The vectorized pooled scan path is indistinguishable from the
            /// pooled row-at-a-time oracle — matches, rows, payload bytes,
            /// and the cold/cached I/O invariant — cold and warm, and both
            /// agree with the in-memory scan's row set.
            #[test]
            fn pooled_vectorized_equals_pooled_oracle(
                n in 1usize..120,
                k in 1usize..5,
                seedish in proptest::collection::vec(0u32..5, 1..60),
                page_pow in 5u32..12,
                cap_pages in 1u64..32,
                pred in pred_any(),
            ) {
                let t = rich_table(n as i64);
                let assignment: Vec<u32> = (0..n)
                    .map(|i| seedish[i % seedish.len()] % k as u32)
                    .collect();
                let mut snap = TableSnapshot::build(&t, &assignment, k, 0, "p");
                let root = std::env::temp_dir().join(format!(
                    "oreo-snap-vprop-{}-{}",
                    std::process::id(),
                    rand::random::<u64>()
                ));
                let (store, _) = crate::tiered::TieredStore::create(&root, &mut snap).unwrap();
                let page_bytes = 1usize << page_pow;
                let pool = crate::bufpool::BufferPool::new(crate::bufpool::BufferPoolConfig {
                    capacity_bytes: cap_pages * page_bytes as u64,
                    page_bytes,
                });
                let mem = snap.scan(&pred);
                for round in 0..2 {
                    let fast = snap.scan_pooled(&pred, &pool).unwrap();
                    let oracle = snap.scan_pooled_rowwise(&pred, &pool).unwrap();
                    prop_assert_eq!(&fast.matches, &mem.matches, "round {}", round);
                    prop_assert_eq!(&fast.matches, &oracle.matches);
                    prop_assert_eq!(fast.rows_read, oracle.rows_read);
                    prop_assert_eq!(fast.partitions_read, oracle.partitions_read);
                    prop_assert_eq!(fast.bytes_scanned, oracle.bytes_scanned);
                    prop_assert_eq!(
                        fast.io_cold_bytes + fast.io_cached_bytes,
                        fast.bytes_scanned
                    );
                    prop_assert_eq!(
                        oracle.io_cold_bytes + oracle.io_cached_bytes,
                        oracle.bytes_scanned
                    );
                }
                drop(store);
                drop(snap);
                let _ = std::fs::remove_dir_all(&root);
            }
        }
    }
}
