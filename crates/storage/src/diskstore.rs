//! A partitioned on-disk table store.
//!
//! This is our stand-in for the paper's Spark + Parquet setup: partitions are
//! the unit of I/O, a query reads only the partitions its predicate cannot
//! skip, and *reorganization* re-routes every row to a new partition and
//! rewrites all files (read → update BID → repartition → compress + write,
//! exactly the four steps measured for Table I).

use crate::column::Column;
use crate::column::DictBuilder;
use crate::error::{Result, StorageError};
use crate::format::{read_partition, read_partition_footer, write_partition_with_meta};
use crate::partition::{build_metadata, PartitionMetadata};
use crate::table::Table;
use oreo_query::{Query, Schema};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Handle to one on-disk partition.
#[derive(Clone, Debug)]
pub struct PartitionHandle {
    /// Location of the partition file on disk.
    pub path: PathBuf,
    /// Number of rows stored.
    pub rows: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Statistics from a scan, used both for correctness checks and for the
/// physical-time measurements in the benchmark harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanStats {
    /// Partitions actually decoded and scanned.
    pub partitions_read: usize,
    /// Partitions pruned by metadata before reading.
    pub partitions_skipped: usize,
    /// Rows decoded from read partitions.
    pub rows_read: u64,
    /// Rows satisfying the predicate.
    pub rows_matched: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

/// A partitioned table persisted to a directory, one file per partition.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    schema: Arc<Schema>,
    partitions: Vec<PartitionHandle>,
    metadata: Vec<PartitionMetadata>,
}

impl DiskStore {
    /// Partition `table` by `assignment` (row → BID, BIDs in `0..k`) and
    /// write one compressed file per partition under `dir`.
    pub fn create(dir: &Path, table: &Table, assignment: &[u32], k: usize) -> Result<Self> {
        assert_eq!(assignment.len(), table.num_rows(), "assignment length");
        fs::create_dir_all(dir)?;

        // Group row ids by partition.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (row, &bid) in assignment.iter().enumerate() {
            groups[bid as usize].push(row as u32);
        }

        let metadata = build_metadata(table, assignment, k);
        let mut partitions = Vec::with_capacity(k);
        for ((bid, rows), meta) in groups.iter().enumerate().zip(&metadata) {
            let part = table.project_rows(rows);
            let path = dir.join(format!("part-{bid:05}.oreo"));
            let (bytes, _footer) = write_partition_with_meta(&path, &part, meta)?;
            partitions.push(PartitionHandle {
                path,
                rows: rows.len() as u64,
                bytes,
            });
        }

        Ok(Self {
            dir: dir.to_owned(),
            schema: Arc::clone(table.schema()),
            partitions,
            metadata,
        })
    }

    /// Open an existing partition directory (one written by
    /// [`DiskStore::create`], or a [`crate::TieredStore`] generation
    /// directory, whose `part-*.oreo` files use the same format): list the
    /// partition files, verify their indices are contiguous from zero, and
    /// rebuild row counts plus pruning metadata **from the file footers** —
    /// no column data is decoded, so opening a multi-GB store costs a few
    /// footer reads. Legacy files without a footer fall back to a full
    /// decode per file.
    ///
    /// A missing middle partition (say `part-00001.oreo` deleted out of
    /// three) is a hole in the table, not a smaller table: it fails with
    /// [`StorageError::Corrupt`] instead of silently serving partial data.
    pub fn open(dir: &Path, schema: &Arc<Schema>) -> Result<Self> {
        let mut indexed: Vec<(usize, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)?.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name
                .strip_prefix("part-")
                .and_then(|n| n.strip_suffix(".oreo"))
            else {
                continue;
            };
            let index: usize = stem.parse().map_err(|_| {
                StorageError::Corrupt(format!("unexpected partition file name {name}"))
            })?;
            indexed.push((index, path));
        }
        indexed.sort_unstable_by_key(|&(index, _)| index);
        if indexed.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "no partition files under {}",
                dir.display()
            )));
        }
        for (expected, (index, path)) in indexed.iter().enumerate() {
            if *index != expected {
                return Err(StorageError::Corrupt(format!(
                    "partition files not contiguous: expected part-{expected:05}.oreo, \
                     found {}",
                    path.display()
                )));
            }
        }
        let mut partitions = Vec::with_capacity(indexed.len());
        let mut metadata = Vec::with_capacity(indexed.len());
        for (_, path) in indexed {
            match read_partition_footer(&path)? {
                Some(footer) => {
                    if footer.meta.columns.len() != schema.len() {
                        return Err(StorageError::Corrupt(format!(
                            "{} covers {} columns, schema expects {}",
                            path.display(),
                            footer.meta.columns.len(),
                            schema.len()
                        )));
                    }
                    let bytes = fs::metadata(&path)?.len();
                    metadata.push(footer.meta);
                    partitions.push(PartitionHandle {
                        bytes,
                        path,
                        rows: footer.nrows,
                    });
                }
                None => {
                    // Legacy (version-1) file: no footer, full decode.
                    let (table, meta, bytes) = open_partition_file(&path, schema)?;
                    metadata.push(meta);
                    partitions.push(PartitionHandle {
                        bytes,
                        path,
                        rows: table.num_rows() as u64,
                    });
                }
            }
        }
        Ok(Self {
            dir: dir.to_owned(),
            schema: Arc::clone(schema),
            partitions,
            metadata,
        })
    }

    /// The directory the store writes partitions under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema of the stored table.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of partitions in the current layout.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Handles of the stored partition files.
    pub fn partitions(&self) -> &[PartitionHandle] {
        &self.partitions
    }

    /// Skipping metadata for each partition.
    pub fn metadata(&self) -> &[PartitionMetadata] {
        &self.metadata
    }

    /// Total on-disk footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes).sum()
    }

    /// Total rows across partitions.
    pub fn total_rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.rows).sum()
    }

    /// Read every partition (the paper's "full table scan" used as the
    /// denominator of α): all bytes are read from disk and one column — the
    /// aggregate's input — is decoded, the way a columnar engine executes
    /// `SELECT agg(col) FROM t`.
    pub fn full_scan(&self) -> Result<ScanStats> {
        self.scan(&Query::full_scan())
    }

    /// Metadata-pruned, column-projected scan: read only partitions the
    /// predicate may match (the `BID IN (...)` rewrite of the paper's
    /// shallow Spark integration), decode only the predicate's columns, and
    /// evaluate row by row. An empty predicate decodes column 0 as the
    /// stand-in aggregate input.
    pub fn scan(&self, query: &Query) -> Result<ScanStats> {
        let mut cols = query.predicate.columns();
        if cols.is_empty() {
            cols.push(0);
        }
        let mut stats = ScanStats::default();
        for (handle, meta) in self.partitions.iter().zip(&self.metadata) {
            if !meta.may_match(&query.predicate) {
                stats.partitions_skipped += 1;
                continue;
            }
            let (nrows, decoded) =
                crate::format::read_partition_projected(&handle.path, &self.schema, &cols)?;
            stats.partitions_read += 1;
            stats.rows_read += nrows as u64;
            stats.bytes_read += handle.bytes;
            let lookup = |col: usize| {
                decoded
                    .iter()
                    .find(|(c, _)| *c == col)
                    .map(|(_, column)| column)
                    .expect("projected column present")
            };
            for row in 0..nrows {
                let hit = query
                    .predicate
                    .atoms()
                    .iter()
                    .all(|a| crate::column::atom_matches_ref(a, lookup(a.col()).get(row)));
                if hit {
                    stats.rows_matched += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Load the full table back into memory, concatenating all partitions
    /// (row order is partition-major, which is fine: layouts route by value,
    /// not by position).
    pub fn load_table(&self) -> Result<Table> {
        let mut parts = Vec::with_capacity(self.partitions.len());
        for handle in &self.partitions {
            parts.push(read_partition(&handle.path, &self.schema)?);
        }
        concat_tables(&self.schema, &parts)
    }

    /// Physical reorganization into `new_dir`: read all partitions, compute
    /// each row's new BID with `route`, regroup, and compress + write the new
    /// partition files. Returns the new store (the old directory is left
    /// untouched; callers delete it after the atomic "swap", as the paper's
    /// background reorganization does).
    pub fn reorganize(
        &self,
        new_dir: &Path,
        k: usize,
        mut route: impl FnMut(&Table, usize) -> u32,
    ) -> Result<DiskStore> {
        let table = self.load_table()?;
        let mut assignment = Vec::with_capacity(table.num_rows());
        for row in 0..table.num_rows() {
            let bid = route(&table, row);
            if bid as usize >= k {
                return Err(StorageError::Corrupt(format!(
                    "router produced BID {bid} >= k = {k}"
                )));
            }
            assignment.push(bid);
        }
        DiskStore::create(new_dir, &table, &assignment, k)
    }

    /// Remove all partition files and the directory.
    pub fn destroy(self) -> Result<()> {
        fs::remove_dir_all(&self.dir)?;
        Ok(())
    }
}

/// Decode one partition file and rebuild its pruning metadata from its own
/// rows (the recovery-path reconstruction: all rows in one group, so the
/// ranges/distinct sets equal what the original build produced). Returns
/// the table, its metadata, and the file's on-disk size — shared by
/// [`DiskStore::open`] and [`crate::TieredStore::open`].
pub(crate) fn open_partition_file(
    path: &Path,
    schema: &Arc<Schema>,
) -> Result<(Table, PartitionMetadata, u64)> {
    let table = read_partition(path, schema)?;
    let bytes = fs::metadata(path)?.len();
    let meta = build_metadata(&table, &vec![0; table.num_rows()], 1)
        .pop()
        .expect("k=1 metadata");
    Ok((table, meta, bytes))
}

/// Concatenate tables sharing a schema. Dictionary columns are re-interned
/// because each file carries its own dictionary.
pub fn concat_tables(schema: &Arc<Schema>, parts: &[Table]) -> Result<Table> {
    let ncols = schema.len();
    let total: usize = parts.iter().map(Table::num_rows).sum();
    let mut columns = Vec::with_capacity(ncols);
    for col in 0..ncols {
        let mut ints: Option<Vec<i64>> = None;
        let mut floats: Option<Vec<f64>> = None;
        let mut dict: Option<DictBuilder> = None;
        for part in parts {
            if part.schema().as_ref() != schema.as_ref() {
                return Err(StorageError::Corrupt("schema mismatch in concat".into()));
            }
            match part.column(col) {
                Column::Int(v) => ints
                    .get_or_insert_with(|| Vec::with_capacity(total))
                    .extend(v),
                Column::Float(v) => floats
                    .get_or_insert_with(|| Vec::with_capacity(total))
                    .extend(v),
                Column::Str(d) => {
                    let b = dict.get_or_insert_with(DictBuilder::new);
                    for row in 0..d.len() {
                        b.push(d.get(row));
                    }
                }
            }
        }
        let column = if let Some(v) = ints {
            Column::Int(v)
        } else if let Some(v) = floats {
            Column::Float(v)
        } else if let Some(b) = dict {
            Column::Str(b.finish())
        } else {
            // no parts at all: produce an empty column of the schema's type
            Column::empty(schema.column_type(col))
        };
        columns.push(column);
    }
    Ok(Table::new(Arc::clone(schema), columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use oreo_query::{ColumnType, QueryBuilder, Scalar};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oreo-store-{}-{}-{}",
            tag,
            std::process::id(),
            rand::random::<u32>()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("v", ColumnType::Int),
            ("tag", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int(i % 100),
                Scalar::from(["a", "b", "c", "d"][(i % 4) as usize]),
            ]);
        }
        b.finish()
    }

    #[test]
    fn create_and_full_scan() {
        let t = table(1000);
        let assignment: Vec<u32> = (0..1000).map(|i| (i / 250) as u32).collect();
        let dir = tmpdir("scan");
        let store = DiskStore::create(&dir, &t, &assignment, 4).unwrap();
        assert_eq!(store.num_partitions(), 4);
        assert_eq!(store.total_rows(), 1000);
        let stats = store.full_scan().unwrap();
        assert_eq!(stats.partitions_read, 4);
        assert_eq!(stats.rows_read, 1000);
        assert_eq!(stats.rows_matched, 1000);
        store.destroy().unwrap();
    }

    #[test]
    fn filtered_scan_skips_partitions() {
        let t = table(1000);
        // partition by ts quartile → ts ranges are disjoint
        let assignment: Vec<u32> = (0..1000).map(|i| (i / 250) as u32).collect();
        let dir = tmpdir("filter");
        let store = DiskStore::create(&dir, &t, &assignment, 4).unwrap();
        let q = QueryBuilder::new(t.schema()).between("ts", 0, 249).build();
        let stats = store.scan(&q).unwrap();
        assert_eq!(stats.partitions_read, 1);
        assert_eq!(stats.partitions_skipped, 3);
        assert_eq!(stats.rows_matched, 250);
        store.destroy().unwrap();
    }

    #[test]
    fn load_table_round_trips_all_rows() {
        let t = table(500);
        let assignment: Vec<u32> = (0..500).map(|i| (i % 3) as u32).collect();
        let dir = tmpdir("load");
        let store = DiskStore::create(&dir, &t, &assignment, 3).unwrap();
        let back = store.load_table().unwrap();
        assert_eq!(back.num_rows(), 500);
        // every original ts value appears exactly once
        let mut seen: Vec<i64> = (0..back.num_rows())
            .map(|r| back.scalar(r, 0).as_int().unwrap())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
        store.destroy().unwrap();
    }

    #[test]
    fn reorganize_rewrites_by_new_routing() {
        let t = table(800);
        let by_time: Vec<u32> = (0..800).map(|i| (i / 200) as u32).collect();
        let dir = tmpdir("reorg-src");
        let store = DiskStore::create(&dir, &t, &by_time, 4).unwrap();

        // new layout: partition by v quartile instead of time
        let dir2 = tmpdir("reorg-dst");
        let store2 = store
            .reorganize(&dir2, 4, |table, row| {
                (table.scalar(row, 1).as_int().unwrap() / 25) as u32
            })
            .unwrap();
        assert_eq!(store2.total_rows(), 800);
        // a v-point query now skips partitions in the new store
        let q = QueryBuilder::new(t.schema()).eq("v", 8).build();
        let new_stats = store2.scan(&q).unwrap();
        assert_eq!(new_stats.partitions_read, 1, "v=8 lives in BID 0 only");
        assert_eq!(new_stats.rows_matched, 8);
        store.destroy().unwrap();
        store2.destroy().unwrap();
    }

    #[test]
    fn router_out_of_range_is_an_error() {
        let t = table(10);
        let dir = tmpdir("badroute");
        let store = DiskStore::create(&dir, &t, &[0; 10], 1).unwrap();
        let dir2 = tmpdir("badroute-dst");
        let err = store.reorganize(&dir2, 2, |_, _| 7).unwrap_err();
        assert!(err.to_string().contains("BID 7"));
        store.destroy().unwrap();
        let _ = fs::remove_dir_all(dir2);
    }

    /// The headline-satellite regression test: opening a written store
    /// rebuilds row counts and pruning metadata from file footers alone —
    /// zero partition decodes — and the store still scans and prunes.
    #[test]
    fn open_is_footer_only_no_decode() {
        let t = table(2_000);
        let assignment: Vec<u32> = (0..2_000).map(|i| (i / 500) as u32).collect();
        let dir = tmpdir("footeropen");
        let store = DiskStore::create(&dir, &t, &assignment, 4).unwrap();
        let total_bytes = store.total_bytes();
        drop(store);

        let before = crate::format::partition_decodes();
        let reopened = DiskStore::open(&dir, t.schema()).unwrap();
        assert_eq!(
            crate::format::partition_decodes(),
            before,
            "open must not decode any partition payload"
        );
        assert_eq!(reopened.num_partitions(), 4);
        assert_eq!(reopened.total_rows(), 2_000);
        assert_eq!(reopened.total_bytes(), total_bytes);
        // recovered metadata prunes exactly like freshly built metadata
        let q = QueryBuilder::new(t.schema()).between("ts", 0, 499).build();
        let stats = reopened.scan(&q).unwrap();
        assert_eq!(stats.partitions_read, 1);
        assert_eq!(stats.partitions_skipped, 3);
        assert_eq!(stats.rows_matched, 500);
        reopened.destroy().unwrap();
    }

    /// A deleted middle partition is a hole in the table, not a smaller
    /// table: `open` must refuse instead of silently serving partial data.
    #[test]
    fn open_detects_missing_middle_partition() {
        let t = table(900);
        let assignment: Vec<u32> = (0..900).map(|i| (i / 300) as u32).collect();
        let dir = tmpdir("hole");
        let store = DiskStore::create(&dir, &t, &assignment, 3).unwrap();
        drop(store);
        fs::remove_file(dir.join("part-00001.oreo")).unwrap();
        let err = DiskStore::open(&dir, t.schema()).unwrap_err();
        assert!(
            err.to_string().contains("not contiguous"),
            "expected contiguity error, got: {err}"
        );
        // an unparseable partition file name is rejected too
        fs::write(dir.join("part-bogus.oreo"), b"junk").unwrap();
        let err = DiskStore::open(&dir, t.schema()).unwrap_err();
        assert!(err.to_string().contains("unexpected partition file name"));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Seed stores written before the footer existed (format v1) still
    /// open — via the legacy full-decode path.
    #[test]
    fn open_legacy_v1_store_falls_back_to_decode() {
        let t = table(600);
        let dir = tmpdir("v1compat");
        // fabricate a 2-partition v1 store by hand
        for (bid, range) in [(0u32, 0..300u32), (1u32, 300..600u32)] {
            let rows: Vec<u32> = range.collect();
            let part = t.project_rows(&rows);
            let bytes = crate::format::encode_partition_v1(&part);
            fs::write(dir.join(format!("part-{bid:05}.oreo")), &bytes).unwrap();
        }
        let before = crate::format::partition_decodes();
        let store = DiskStore::open(&dir, t.schema()).unwrap();
        assert!(
            crate::format::partition_decodes() > before,
            "v1 files require the decode fallback"
        );
        assert_eq!(store.total_rows(), 600);
        let q = QueryBuilder::new(t.schema()).between("ts", 0, 299).build();
        let stats = store.scan(&q).unwrap();
        assert_eq!(stats.partitions_read, 1);
        assert_eq!(stats.rows_matched, 300);
        store.destroy().unwrap();
    }

    #[test]
    fn concat_reinterns_dictionaries() {
        let s = Arc::new(Schema::from_pairs([("tag", ColumnType::Str)]));
        let mut b1 = TableBuilder::new(Arc::clone(&s));
        b1.push_row(&[Scalar::from("x")]);
        b1.push_row(&[Scalar::from("y")]);
        let mut b2 = TableBuilder::new(Arc::clone(&s));
        b2.push_row(&[Scalar::from("y")]);
        b2.push_row(&[Scalar::from("z")]);
        let t = concat_tables(&s, &[b1.finish(), b2.finish()]).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.scalar(1, 0), Scalar::from("y"));
        assert_eq!(t.scalar(2, 0), Scalar::from("y"));
        assert_eq!(t.scalar(3, 0), Scalar::from("z"));
    }

    #[test]
    fn empty_partitions_are_valid() {
        let t = table(100);
        let dir = tmpdir("empty");
        // everything to BID 0; BIDs 1..4 empty
        let store = DiskStore::create(&dir, &t, &vec![0; 100], 4).unwrap();
        assert_eq!(store.num_partitions(), 4);
        let stats = store.full_scan().unwrap();
        assert_eq!(stats.rows_read, 100);
        store.destroy().unwrap();
    }
}
