//! # oreo-layout
//!
//! Data-layout generation techniques behind a single interface.
//!
//! A *layout* is a deterministic routing function record → partition
//! ([`LayoutSpec`]); a *generator* ([`LayoutGenerator`]) builds one from a
//! dataset sample and a workload sample — the paper's
//! `generate_layout(D, Q, k)` (§III-B). Three techniques are provided:
//!
//! * [`RangeLayout`] — sort by one column, split equi-depth (the default
//!   "partition by time" layout);
//! * [`ZOrderLayout`] — Morton-interleaved multi-column clustering over the
//!   top-queried columns (workload-aware Z-ordering, §VI-A1);
//! * [`QdTree`] — greedy predicate-cut decision tree (Qd-tree, §VI-A1).
//!
//! OREO is agnostic to the technique; anything implementing
//! [`LayoutGenerator`] plugs into the LAYOUT MANAGER.

pub mod morton;
pub mod qdtree;
pub mod range;
pub mod satset;
pub mod spec;
pub mod zorder;

pub use morton::{morton_decode, morton_encode};
pub use qdtree::{QdTree, QdTreeBuilder, QdTreeGenerator};
pub use range::{RangeGenerator, RangeLayout};
pub use satset::{predicate_satset, Bound, SatSet};
pub use spec::{build_exact_model, build_model, LayoutGenerator, LayoutSpec, SharedSpec};
pub use zorder::{ZOrderGenerator, ZOrderLayout};

#[cfg(test)]
mod proptests {
    use super::*;
    use oreo_query::{Atom, ColumnType, CompareOp, Scalar, Schema};
    use oreo_storage::TableBuilder;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn int_atom() -> impl Strategy<Value = Atom> {
        prop_oneof![
            (
                (-50i64..50),
                prop_oneof![
                    Just(CompareOp::Lt),
                    Just(CompareOp::Le),
                    Just(CompareOp::Gt),
                    Just(CompareOp::Ge),
                    Just(CompareOp::Eq)
                ]
            )
                .prop_map(|(v, op)| Atom::Compare {
                    col: 0,
                    op,
                    value: Scalar::Int(v)
                }),
            (-50i64..50, 0i64..30).prop_map(|(lo, span)| Atom::Between {
                col: 0,
                low: Scalar::Int(lo),
                high: Scalar::Int(lo + span)
            }),
            proptest::collection::vec(-50i64..50, 1..4).prop_map(|vs| Atom::InSet {
                col: 0,
                set: vs.into_iter().map(Scalar::Int).collect()
            }),
        ]
    }

    proptest! {
        /// SatSet semantics agree with row-level atom evaluation.
        #[test]
        fn satset_matches_atom_eval(atom in int_atom(), v in -60i64..60) {
            let s = SatSet::of_atom(&atom);
            prop_assert_eq!(s.contains(&Scalar::Int(v)), atom.matches(&Scalar::Int(v)));
        }

        /// subset_of is sound: when it reports true, every matching value of
        /// the narrow atom matches the wide atom.
        #[test]
        fn subset_is_sound(a in int_atom(), b in int_atom(), v in -60i64..60) {
            let sa = SatSet::of_atom(&a);
            let sb = SatSet::of_atom(&b);
            if sa.subset_of(&sb) && a.matches(&Scalar::Int(v)) {
                prop_assert!(b.matches(&Scalar::Int(v)),
                    "{:?} ⊆ {:?} claimed but {} separates them", a, b, v);
            }
        }

        /// disjoint_from is sound: no value matches both.
        #[test]
        fn disjoint_is_sound(a in int_atom(), b in int_atom(), v in -60i64..60) {
            let sa = SatSet::of_atom(&a);
            let sb = SatSet::of_atom(&b);
            if sa.disjoint_from(&sb) {
                prop_assert!(!(a.matches(&Scalar::Int(v)) && b.matches(&Scalar::Int(v))),
                    "{:?} ∥ {:?} claimed but {} matches both", a, b, v);
            }
        }

        /// Morton encode/decode round-trips.
        #[test]
        fn morton_round_trip(x in 0u32..256, y in 0u32..256, z in 0u32..256) {
            let code = morton_encode(&[x, y, z], 8);
            prop_assert_eq!(morton_decode(code, 3, 8), vec![x, y, z]);
        }

        /// Every generator produces a spec whose assignment is total,
        /// in-range, and deterministic.
        #[test]
        fn generators_produce_valid_assignments(
            n in 50usize..200,
            k in 1usize..9,
            seed in 0u64..20,
        ) {
            use rand::SeedableRng;
            let schema = Arc::new(Schema::from_pairs([
                ("ts", ColumnType::Timestamp),
                ("v", ColumnType::Int),
            ]));
            let mut b = TableBuilder::new(Arc::clone(&schema));
            for i in 0..n as i64 {
                b.push_row(&[Scalar::Int(i), Scalar::Int((i * 37) % 100)]);
            }
            let t = b.finish();
            let qs: Vec<oreo_query::Query> = (0..6)
                .map(|i| oreo_query::QueryBuilder::new(&schema)
                    .between("v", i * 10, i * 10 + 15)
                    .build())
                .collect();
            let generators: Vec<Box<dyn LayoutGenerator>> = vec![
                Box::new(RangeGenerator::new(0)),
                Box::new(ZOrderGenerator::new(2, 4, vec![0, 1])),
                Box::new(QdTreeGenerator::new()),
            ];
            for g in &generators {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let spec = g.generate(&t, &qs, k, &mut rng);
                let a = spec.assign(&t);
                prop_assert_eq!(a.len(), n);
                prop_assert!(a.iter().all(|&bid| (bid as usize) < spec.k()));
                let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed);
                let spec2 = g.generate(&t, &qs, k, &mut rng2);
                prop_assert_eq!(spec2.assign(&t), a, "non-deterministic {}", g.name());
            }
        }
    }
}
