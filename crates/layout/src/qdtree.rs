//! Qd-tree layouts (Yang et al., SIGMOD 2020), greedy construction.
//!
//! A Qd-tree is a binary decision tree whose inner nodes hold predicates
//! drawn from the query workload (Fig. 2 of the paper). Records route to
//! leaves (= partitions) by evaluating the predicates top-down. Our builder
//! matches the paper's evaluation setup: "the greedy construction algorithm
//! … does not include any advanced cuts", built on a 0.1–1% data sample.
//!
//! **Greedy benefit.** For a candidate cut `a` at a node holding sample rows
//! `R` (split into `R_yes`/`R_no`), each workload query `q` contributes:
//! `|R_no|` if `q`'s satisfying set on `a`'s column is contained in `a`'s
//! (the query never needs the no-side), `|R_yes|` if it is disjoint from
//! `a`'s (never needs the yes-side), 0 otherwise. Frequent query shapes
//! appear repeatedly in the workload sample, so benefits are naturally
//! frequency-weighted.

use crate::satset::{predicate_satset, SatSet};
use crate::spec::{LayoutGenerator, LayoutSpec, SharedSpec};
use oreo_query::{Atom, ColId, CompareOp, Query};
use oreo_storage::{atom_matches_ref, Table};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// A built Qd-tree.
#[derive(Clone, Debug)]
pub struct QdTree {
    root: Node,
    k: usize,
    name: String,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(u32),
    Inner {
        atom: Atom,
        yes: Box<Node>,
        no: Box<Node>,
    },
}

impl QdTree {
    /// Height of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Inner { yes, no, .. } => 1 + d(yes).max(d(no)),
            }
        }
        d(&self.root)
    }

    /// The cut predicates in DFS order (diagnostics).
    pub fn cuts(&self) -> Vec<&Atom> {
        fn walk<'a>(n: &'a Node, out: &mut Vec<&'a Atom>) {
            if let Node::Inner { atom, yes, no } = n {
                out.push(atom);
                walk(yes, out);
                walk(no, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

impl LayoutSpec for QdTree {
    fn k(&self) -> usize {
        self.k
    }

    fn route(&self, table: &Table, row: usize) -> u32 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(bid) => return *bid,
                Node::Inner { atom, yes, no } => {
                    let v = table.get(row, atom.col());
                    node = if atom_matches_ref(atom, v) { yes } else { no };
                }
            }
        }
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// Configurable greedy builder.
#[derive(Clone, Debug)]
pub struct QdTreeBuilder {
    /// Target number of leaves (partitions).
    pub k: usize,
    /// Minimum rows (of the *sample*) per leaf; splits producing a smaller
    /// side are rejected. Defaults to `sample_rows / (4k)` when `None` — a
    /// quarter of the target partition size, loose enough that a narrow
    /// workload region (e.g. a one-month window over seven years) can still
    /// be isolated into its own partition.
    pub min_leaf_rows: Option<usize>,
    /// Tag appended to the layout name for provenance (e.g. the window
    /// position that produced the workload sample).
    pub tag: String,
}

impl QdTreeBuilder {
    /// A builder targeting at most `k` leaf partitions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            min_leaf_rows: None,
            tag: String::new(),
        }
    }

    /// Attaches a provenance tag to the built tree's name.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Overrides the minimum sample rows a leaf may hold.
    pub fn with_min_leaf_rows(mut self, rows: usize) -> Self {
        self.min_leaf_rows = Some(rows);
        self
    }

    /// Greedily build a Qd-tree from a data sample and workload sample.
    pub fn build(&self, sample: &Table, workload: &[Query]) -> QdTree {
        let nrows = sample.num_rows();
        let min_leaf = self
            .min_leaf_rows
            .unwrap_or_else(|| (nrows / (4 * self.k)).max(1));

        // Candidate cuts: deduplicated atoms from the workload, plus their
        // half-range / equality decompositions — a narrow `BETWEEN lo AND
        // hi` rarely makes a feasible cut by itself (its yes-side is tiny),
        // but its component bounds `>= lo` / `<= hi` split well and compose
        // hierarchically, which is how Qd-tree uses workload predicates.
        let mut seen: HashSet<Atom> = HashSet::new();
        let mut candidates: Vec<Atom> = Vec::new();
        let push = |atom: Atom, seen: &mut HashSet<Atom>, out: &mut Vec<Atom>| {
            if seen.insert(atom.clone()) {
                out.push(atom);
            }
        };
        for q in workload {
            for a in q.predicate.atoms() {
                push(a.clone(), &mut seen, &mut candidates);
                match a {
                    Atom::Between { col, low, high } => {
                        push(
                            Atom::Compare {
                                col: *col,
                                op: CompareOp::Ge,
                                value: low.clone(),
                            },
                            &mut seen,
                            &mut candidates,
                        );
                        push(
                            Atom::Compare {
                                col: *col,
                                op: CompareOp::Le,
                                value: high.clone(),
                            },
                            &mut seen,
                            &mut candidates,
                        );
                    }
                    Atom::InSet { col, set } if set.len() <= 4 => {
                        for v in set {
                            push(
                                Atom::Compare {
                                    col: *col,
                                    op: CompareOp::Eq,
                                    value: v.clone(),
                                },
                                &mut seen,
                                &mut candidates,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        let cand_sats: Vec<SatSet> = candidates.iter().map(SatSet::of_atom).collect();

        // Per-query, per-column satisfying sets (computed lazily, cached).
        let mut query_sats: Vec<HashMap<ColId, Option<SatSet>>> =
            vec![HashMap::new(); workload.len()];

        // Arena of tree slots.
        enum Slot {
            Leaf(Vec<u32>),
            Inner { atom: Atom, yes: usize, no: usize },
        }
        let mut slots: Vec<Slot> = vec![Slot::Leaf((0..nrows as u32).collect())];
        let mut leaf_count = 1usize;

        // (benefit, tiebreak, slot, candidate) — max-heap by benefit, then
        // *older* entries first for determinism.
        let mut heap: BinaryHeap<(u64, Reverse<u64>, usize, usize)> = BinaryHeap::new();
        let mut counter: u64 = 0;

        let push_best = |slot_idx: usize,
                         rows: &[u32],
                         heap: &mut BinaryHeap<(u64, Reverse<u64>, usize, usize)>,
                         query_sats: &mut Vec<HashMap<ColId, Option<SatSet>>>,
                         counter: &mut u64| {
            let mut best: Option<(u64, usize)> = None;
            for (ci, atom) in candidates.iter().enumerate() {
                let yes = rows
                    .iter()
                    .filter(|&&r| atom_matches_ref(atom, sample.get(r as usize, atom.col())))
                    .count();
                let no = rows.len() - yes;
                if yes < min_leaf || no < min_leaf {
                    continue;
                }
                let cut_sat = &cand_sats[ci];
                let col = atom.col();
                let mut benefit: u64 = 0;
                for (qi, q) in workload.iter().enumerate() {
                    let entry = query_sats[qi]
                        .entry(col)
                        .or_insert_with(|| predicate_satset(&q.predicate, col));
                    let Some(qsat) = entry else { continue };
                    if qsat.subset_of(cut_sat) {
                        benefit += no as u64;
                    } else if qsat.disjoint_from(cut_sat) {
                        benefit += yes as u64;
                    }
                }
                if benefit > 0 && best.is_none_or(|(b, _)| benefit > b) {
                    best = Some((benefit, ci));
                }
            }
            if let Some((benefit, ci)) = best {
                *counter += 1;
                heap.push((benefit, Reverse(*counter), slot_idx, ci));
            }
        };

        {
            let rows: Vec<u32> = (0..nrows as u32).collect();
            push_best(0, &rows, &mut heap, &mut query_sats, &mut counter);
        }

        while leaf_count < self.k {
            let Some((_, _, slot_idx, cand_idx)) = heap.pop() else {
                break; // no more beneficial cuts
            };
            let rows = match &slots[slot_idx] {
                Slot::Leaf(rows) => rows.clone(),
                Slot::Inner { .. } => continue, // stale entry
            };
            let atom = candidates[cand_idx].clone();
            let (yes_rows, no_rows): (Vec<u32>, Vec<u32>) = rows
                .iter()
                .partition(|&&r| atom_matches_ref(&atom, sample.get(r as usize, atom.col())));
            if yes_rows.len() < min_leaf || no_rows.len() < min_leaf {
                continue; // shouldn't happen; guard anyway
            }
            let yes_idx = slots.len();
            slots.push(Slot::Leaf(yes_rows));
            let no_idx = slots.len();
            slots.push(Slot::Leaf(no_rows));
            slots[slot_idx] = Slot::Inner {
                atom,
                yes: yes_idx,
                no: no_idx,
            };
            leaf_count += 1;

            for idx in [yes_idx, no_idx] {
                if let Slot::Leaf(rows) = &slots[idx] {
                    let rows = rows.clone();
                    push_best(idx, &rows, &mut heap, &mut query_sats, &mut counter);
                }
            }
        }

        // Assign leaf bids in DFS order and materialize the final tree.
        fn freeze(slots: &[Slot], idx: usize, next_bid: &mut u32) -> Node {
            match &slots[idx] {
                Slot::Leaf(_) => {
                    let bid = *next_bid;
                    *next_bid += 1;
                    Node::Leaf(bid)
                }
                Slot::Inner { atom, yes, no } => Node::Inner {
                    atom: atom.clone(),
                    yes: Box::new(freeze(slots, *yes, next_bid)),
                    no: Box::new(freeze(slots, *no, next_bid)),
                },
            }
        }
        let mut next_bid = 0;
        let root = freeze(&slots, 0, &mut next_bid);
        let name = if self.tag.is_empty() {
            format!("qdtree(k={})", next_bid)
        } else {
            format!("qdtree(k={},{})", next_bid, self.tag)
        };
        QdTree {
            root,
            k: next_bid as usize,
            name,
        }
    }
}

/// Generator wrapper for the LAYOUT MANAGER.
#[derive(Clone, Debug, Default)]
pub struct QdTreeGenerator {
    /// Minimum leaf rows override (`None` → `sample_rows / 2k`).
    pub min_leaf_rows: Option<usize>,
}

impl QdTreeGenerator {
    /// A generator with the default (unconstrained) leaf size.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LayoutGenerator for QdTreeGenerator {
    fn name(&self) -> &str {
        "qdtree"
    }

    fn generate(
        &self,
        sample: &Table,
        workload: &[Query],
        k: usize,
        _rng: &mut StdRng,
    ) -> SharedSpec {
        let mut builder = QdTreeBuilder::new(k);
        if let Some(m) = self.min_leaf_rows {
            builder = builder.with_min_leaf_rows(m);
        }
        Arc::new(builder.build(sample, workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_exact_model;
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
    use oreo_storage::TableBuilder;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("cpu", ColumnType::Int),
            ("mem", ColumnType::Int),
            ("user", ColumnType::Str),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i % 100),
                Scalar::Int((i * 13) % 100),
                Scalar::from(if i % 5 == 0 { "root" } else { "user" }),
            ]);
        }
        b.finish()
    }

    fn workload(t: &Table) -> Vec<Query> {
        let mut qs = Vec::new();
        for _ in 0..10 {
            qs.push(QueryBuilder::new(t.schema()).lt("cpu", 10).build());
            qs.push(QueryBuilder::new(t.schema()).gt("mem", 80).build());
            qs.push(QueryBuilder::new(t.schema()).eq("user", "root").build());
        }
        qs
    }

    #[test]
    fn builds_k_leaves_and_routes_total() {
        let t = table(1000);
        let qs = workload(&t);
        let tree = QdTreeBuilder::new(4).build(&t, &qs);
        assert!(tree.k() >= 2 && tree.k() <= 4, "k = {}", tree.k());
        let a = tree.assign(&t);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&b| (b as usize) < tree.k()));
        // every leaf receives at least one row
        let mut hit = vec![false; tree.k()];
        for &b in &a {
            hit[b as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn workload_queries_skip_partitions() {
        let t = table(2000);
        let qs = workload(&t);
        let tree = QdTreeBuilder::new(8).build(&t, &qs);
        let model = build_exact_model(&tree, 1, &t);
        // each of the three workload shapes should read a minority of rows
        let cpu_q = QueryBuilder::new(t.schema()).lt("cpu", 10).build();
        assert!(model.cost(&cpu_q) < 0.5, "cpu cost {}", model.cost(&cpu_q));
        let root_q = QueryBuilder::new(t.schema()).eq("user", "root").build();
        assert!(
            model.cost(&root_q) < 0.5,
            "user cost {}",
            model.cost(&root_q)
        );
    }

    #[test]
    fn no_workload_means_single_leaf() {
        let t = table(100);
        let tree = QdTreeBuilder::new(8).build(&t, &[]);
        assert_eq!(tree.k(), 1);
        assert_eq!(tree.depth(), 1);
        assert!(tree.assign(&t).iter().all(|&b| b == 0));
    }

    #[test]
    fn min_leaf_bound_respected() {
        let t = table(1000);
        let qs = workload(&t);
        let tree = QdTreeBuilder::new(16)
            .with_min_leaf_rows(100)
            .build(&t, &qs);
        let a = tree.assign(&t);
        let mut counts = vec![0usize; tree.k()];
        for &b in &a {
            counts[b as usize] += 1;
        }
        for (leaf, c) in counts.iter().enumerate() {
            assert!(*c >= 100, "leaf {leaf} has only {c} rows");
        }
    }

    #[test]
    fn cuts_come_from_workload() {
        let t = table(500);
        let qs = workload(&t);
        let tree = QdTreeBuilder::new(4).build(&t, &qs);
        // every cut constrains a workload-referenced column with a literal
        // drawn from the workload (possibly as a Between/InSet component)
        let mut cols = HashSet::new();
        let mut literals = HashSet::new();
        for q in &qs {
            for a in q.predicate.atoms() {
                cols.insert(a.col());
                match a {
                    Atom::Compare { value, .. } => {
                        literals.insert(value.clone());
                    }
                    Atom::Between { low, high, .. } => {
                        literals.insert(low.clone());
                        literals.insert(high.clone());
                    }
                    Atom::InSet { set, .. } => literals.extend(set.iter().cloned()),
                }
            }
        }
        for cut in tree.cuts() {
            assert!(cols.contains(&cut.col()), "foreign column {cut:?}");
            match cut {
                Atom::Compare { value, .. } => {
                    assert!(literals.contains(value), "foreign literal {cut:?}")
                }
                Atom::Between { low, high, .. } => {
                    assert!(literals.contains(low) && literals.contains(high));
                }
                Atom::InSet { set, .. } => {
                    assert!(set.iter().all(|v| literals.contains(v)));
                }
            }
        }
    }

    #[test]
    fn deterministic_construction() {
        let t = table(800);
        let qs = workload(&t);
        let t1 = QdTreeBuilder::new(8).build(&t, &qs);
        let t2 = QdTreeBuilder::new(8).build(&t, &qs);
        assert_eq!(t1.assign(&t), t2.assign(&t));
    }

    #[test]
    fn routes_unseen_rows() {
        // build on a sample, route a superset
        let t = table(1000);
        let qs = workload(&t);
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let sample = t.sample(&mut rng, 100);
        let tree = QdTreeBuilder::new(4).build(&sample, &qs);
        let a = tree.assign(&t);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&b| (b as usize) < tree.k()));
    }
}
