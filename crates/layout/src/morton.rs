//! Morton (Z-order) codes: bit interleaving of multi-dimensional bucket
//! coordinates, the space-filling curve behind Z-ordering [Morton 1966].

/// Interleave `coords` (each using the low `bits` bits) into one Morton
/// code. Dimension 0 occupies the least-significant position of each bit
/// group.
///
/// # Panics
/// Panics when `bits * coords.len() > 64` or a coordinate overflows `bits`.
pub fn morton_encode(coords: &[u32], bits: u32) -> u64 {
    let ndims = coords.len() as u32;
    assert!(ndims > 0, "need at least one dimension");
    assert!(bits * ndims <= 64, "{bits} bits × {ndims} dims exceeds u64");
    for &c in coords {
        assert!(
            bits == 32 || u64::from(c) < (1u64 << bits),
            "coordinate {c} does not fit in {bits} bits"
        );
    }
    let mut out: u64 = 0;
    for b in 0..bits {
        for (d, &c) in coords.iter().enumerate() {
            let bit = (u64::from(c) >> b) & 1;
            out |= bit << (b * ndims + d as u32);
        }
    }
    out
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(code: u64, ndims: usize, bits: u32) -> Vec<u32> {
    assert!(ndims > 0);
    assert!(bits as usize * ndims <= 64);
    let mut coords = vec![0u32; ndims];
    for b in 0..bits {
        for (d, coord) in coords.iter_mut().enumerate() {
            let bit = (code >> (b * ndims as u32 + d as u32)) & 1;
            *coord |= (bit as u32) << b;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_2d() {
        // classic 2-D morton: (x=1, y=0) -> 0b01, (x=0, y=1) -> 0b10,
        // (x=1, y=1) -> 0b11, (x=3, y=1) -> x bits at even, y at odd
        assert_eq!(morton_encode(&[1, 0], 2), 0b01);
        assert_eq!(morton_encode(&[0, 1], 2), 0b10);
        assert_eq!(morton_encode(&[1, 1], 2), 0b11);
        assert_eq!(morton_encode(&[3, 1], 2), 0b0111);
    }

    #[test]
    fn round_trip_3d() {
        for (x, y, z) in [(0u32, 0, 0), (1, 2, 3), (7, 0, 5), (6, 6, 6)] {
            let code = morton_encode(&[x, y, z], 3);
            assert_eq!(morton_decode(code, 3, 3), vec![x, y, z]);
        }
    }

    #[test]
    fn monotone_along_each_axis() {
        // fixing other coordinates, the code grows with one coordinate
        for fixed in 0u32..8 {
            let mut prev = None;
            for x in 0..8 {
                let code = morton_encode(&[x, fixed], 3);
                if let Some(p) = prev {
                    assert!(code > p, "x={x} fixed={fixed}");
                }
                prev = Some(code);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u64")]
    fn too_many_bits_rejected() {
        morton_encode(&[0, 0, 0], 22);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflowing_coordinate_rejected() {
        morton_encode(&[8, 0], 3);
    }

    #[test]
    fn locality_small_boxes_have_close_codes() {
        // points in the same 2x2 cell share all but the lowest 2 bits
        let a = morton_encode(&[4, 4], 4);
        let b = morton_encode(&[5, 5], 4);
        assert_eq!(a >> 2, b >> 2);
    }
}
