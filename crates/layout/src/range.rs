//! Range (sort-based) partitioning: the "default layout, such as
//! partitioning by time" the system starts from before any workload has
//! been observed (§IV-A).

use crate::spec::{LayoutGenerator, LayoutSpec, SharedSpec};
use oreo_query::{ColId, Query, Scalar};
use oreo_storage::Table;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Sorts records by one column and splits them into `k` contiguous ranges.
/// The boundaries are the (k-1) sample quantiles of the sort column; a row
/// routes to the number of boundaries strictly below its value.
#[derive(Clone, Debug)]
pub struct RangeLayout {
    col: ColId,
    /// Ascending boundary values; `len == k - 1`.
    boundaries: Vec<Scalar>,
    name: String,
}

impl RangeLayout {
    /// Build from a data sample: boundaries are the equi-depth quantiles of
    /// `col` within `sample`.
    pub fn from_sample(sample: &Table, col: ColId, k: usize) -> Self {
        assert!(k >= 1, "need at least one partition");
        let mut values: Vec<Scalar> = (0..sample.num_rows())
            .map(|r| sample.scalar(r, col))
            .collect();
        values.sort();
        let boundaries = equi_depth_boundaries(&values, k);
        let name = format!("range({})", sample.schema().column(col).name);
        Self {
            col,
            boundaries,
            name,
        }
    }

    /// The column this layout ranges over.
    pub fn col(&self) -> ColId {
        self.col
    }

    /// The sorted split points between consecutive partitions.
    pub fn boundaries(&self) -> &[Scalar] {
        &self.boundaries
    }
}

/// `k-1` equi-depth boundaries from sorted values (may repeat when the data
/// is skewed; routing still works, some partitions just stay empty).
pub(crate) fn equi_depth_boundaries(sorted: &[Scalar], k: usize) -> Vec<Scalar> {
    let mut out = Vec::with_capacity(k.saturating_sub(1));
    if sorted.is_empty() {
        return out;
    }
    for i in 1..k {
        let idx = (i * sorted.len()) / k;
        out.push(sorted[idx.min(sorted.len() - 1)].clone());
    }
    out
}

/// Number of boundaries strictly ≤ `v` — i.e. `partition_point` over the
/// ascending boundary list. Shared by range and Z-order routing.
pub(crate) fn bucket_of(boundaries: &[Scalar], v: &Scalar) -> u32 {
    boundaries.partition_point(|b| b <= v) as u32
}

impl LayoutSpec for RangeLayout {
    fn k(&self) -> usize {
        self.boundaries.len() + 1
    }

    fn route(&self, table: &Table, row: usize) -> u32 {
        let v = table.scalar(row, self.col);
        bucket_of(&self.boundaries, &v)
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// Generator wrapper: always ranges on a fixed column (e.g. arrival time).
#[derive(Clone, Debug)]
pub struct RangeGenerator {
    col: ColId,
}

impl RangeGenerator {
    /// A generator producing equi-depth range layouts on `col`.
    pub fn new(col: ColId) -> Self {
        Self { col }
    }
}

impl LayoutGenerator for RangeGenerator {
    fn name(&self) -> &str {
        "range"
    }

    fn generate(
        &self,
        sample: &Table,
        _workload: &[Query],
        k: usize,
        _rng: &mut StdRng,
    ) -> SharedSpec {
        Arc::new(RangeLayout::from_sample(sample, self.col, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{ColumnType, QueryBuilder, Schema};
    use oreo_storage::TableBuilder;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("v", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i), Scalar::Int(i * 7 % n)]);
        }
        b.finish()
    }

    #[test]
    fn uniform_data_splits_evenly() {
        let t = table(100);
        let layout = RangeLayout::from_sample(&t, 0, 4);
        assert_eq!(layout.k(), 4);
        let assignment = layout.assign(&t);
        let mut counts = [0usize; 4];
        for &b in &assignment {
            counts[b as usize] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
        // contiguity: assignment is monotone in ts
        assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn routing_is_deterministic_on_unseen_rows() {
        let t = table(100);
        let sample = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            t.sample(&mut rng, 20)
        };
        let layout = RangeLayout::from_sample(&sample, 0, 4);
        // full-table routing stays monotone in ts even for unsampled rows
        let a = layout.assign(&t);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn single_partition_routes_everything_to_zero() {
        let t = table(10);
        let layout = RangeLayout::from_sample(&t, 0, 1);
        assert_eq!(layout.k(), 1);
        assert!(layout.assign(&t).iter().all(|&b| b == 0));
    }

    #[test]
    fn skewed_data_degrades_gracefully() {
        // all identical values: every boundary equals the value; all rows
        // land in the last bucket, but routing never panics
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for _ in 0..50 {
            b.push_row(&[Scalar::Int(42)]);
        }
        let t = b.finish();
        let layout = RangeLayout::from_sample(&t, 0, 4);
        let a = layout.assign(&t);
        assert!(a.iter().all(|&bid| (bid as usize) < layout.k()));
    }

    #[test]
    fn generated_layout_skips_for_range_queries() {
        let t = table(1000);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let spec = RangeGenerator::new(0).generate(&t, &[], 10, &mut rng);
        let model = crate::spec::build_exact_model(spec.as_ref(), 1, &t);
        let q = QueryBuilder::new(t.schema()).between("ts", 0, 99).build();
        assert!(model.cost(&q) <= 0.2, "cost {}", model.cost(&q));
    }
}
