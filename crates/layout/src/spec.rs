//! The layout abstraction: a deterministic record → partition routing
//! function, plus the generator interface the LAYOUT MANAGER drives.
//!
//! Mirrors the paper's two required functionalities (§III-B):
//!
//! * `generate_layout(D, Q, k)` → [`LayoutGenerator::generate`] builds a
//!   [`LayoutSpec`] from a dataset *sample* and a workload sample;
//! * `eval_skipped(s, Q)` → routing a sample through the spec yields
//!   estimated partition metadata ([`build_model`]), whose
//!   [`LayoutModel::cost`] is the skipping estimate.

use oreo_storage::{build_metadata, LayoutModel, Table};
use rand::rngs::StdRng;
use std::sync::Arc;

/// A data layout: a pure function assigning every record to one of `k`
/// partitions. Implementations must be deterministic — the same row must
/// always route to the same partition — so that a spec generated from a
/// sample can later materialize the full table identically.
pub trait LayoutSpec: Send + Sync {
    /// Number of partitions this layout produces.
    fn k(&self) -> usize;

    /// Partition id (`0..k`) for row `row` of `table`.
    fn route(&self, table: &Table, row: usize) -> u32;

    /// Human-readable description, e.g. `"zorder(qty,ship_date)"`.
    fn describe(&self) -> String;

    /// Route every row of `table`.
    fn assign(&self, table: &Table) -> Vec<u32> {
        (0..table.num_rows())
            .map(|row| {
                let bid = self.route(table, row);
                debug_assert!((bid as usize) < self.k(), "route out of range");
                bid
            })
            .collect()
    }
}

/// A shareable layout spec.
pub type SharedSpec = Arc<dyn LayoutSpec>;

/// Build the metadata-only [`LayoutModel`] of a spec by routing `sample`
/// and scaling partition row counts to `full_rows` — the paper's
/// "sample-estimated" costing of candidate layouts.
pub fn build_model(spec: &dyn LayoutSpec, id: u64, sample: &Table, full_rows: f64) -> LayoutModel {
    let assignment = spec.assign(sample);
    let mut meta = build_metadata(sample, &assignment, spec.k());
    if sample.num_rows() > 0 && full_rows > 0.0 {
        let factor = full_rows / sample.num_rows() as f64;
        for m in &mut meta {
            m.scale_rows(factor);
        }
    }
    LayoutModel::new(id, spec.describe(), meta)
}

/// Build the *exact* model by routing the full table (what materialization
/// produces; service costs in the simulator are charged against this).
pub fn build_exact_model(spec: &dyn LayoutSpec, id: u64, table: &Table) -> LayoutModel {
    build_model(spec, id, table, table.num_rows() as f64)
}

/// A layout generation technique (Z-ordering, Qd-tree, range…).
///
/// The manager passes a dataset sample, a workload sample, and the target
/// partition count; the generator returns a routing spec. Generators are
/// deliberately *workload-agnostic in interface*: OREO treats them as black
/// boxes (§III-B).
pub trait LayoutGenerator: Send + Sync {
    /// Technique name, e.g. `"qdtree"`.
    fn name(&self) -> &str;

    /// Build a layout for the given data and workload samples.
    fn generate(
        &self,
        sample: &Table,
        workload: &[oreo_query::Query],
        k: usize,
        rng: &mut StdRng,
    ) -> SharedSpec;
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_query::{ColumnType, Scalar, Schema};
    use oreo_storage::TableBuilder;

    /// Trivial spec for testing: routes by `v mod k`.
    struct ModSpec {
        k: usize,
    }

    impl LayoutSpec for ModSpec {
        fn k(&self) -> usize {
            self.k
        }
        fn route(&self, table: &Table, row: usize) -> u32 {
            (table
                .scalar(row, 0)
                .as_int()
                .unwrap()
                .rem_euclid(self.k as i64)) as u32
        }
        fn describe(&self) -> String {
            format!("mod({})", self.k)
        }
    }

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i)]);
        }
        b.finish()
    }

    #[test]
    fn assign_routes_all_rows() {
        let t = table(10);
        let spec = ModSpec { k: 3 };
        let a = spec.assign(&t);
        assert_eq!(a.len(), 10);
        assert_eq!(a[4], 1);
    }

    #[test]
    fn model_scales_sample_rows() {
        let _full = table(100);
        let sample = table(10); // pretend 10% sample
        let spec = ModSpec { k: 2 };
        let model = build_model(&spec, 1, &sample, 100.0);
        assert!((model.total_rows() - 100.0).abs() < 1e-9);
        assert_eq!(model.num_partitions(), 2);
    }

    #[test]
    fn exact_model_uses_all_rows() {
        let t = table(60);
        let spec = ModSpec { k: 4 };
        let model = build_exact_model(&spec, 2, &t);
        assert_eq!(model.total_rows(), 60.0);
        assert_eq!(model.name(), "mod(4)");
    }
}
