//! Workload-aware Z-ordering (§VI-A1).
//!
//! Each chosen column is quantile-bucketed on a data sample, bucket indices
//! are Morton-interleaved, and the code space is split into `k` equi-depth
//! partitions. To make it workload-aware, the generator picks "the top three
//! most queried columns in the sliding window, which can change over the
//! course of the query stream".

use crate::morton::morton_encode;
use crate::range::{bucket_of, equi_depth_boundaries};
use crate::spec::{LayoutGenerator, LayoutSpec, SharedSpec};
use oreo_query::{ColId, Query, Scalar};
use oreo_sampling::top_queried_columns;
use oreo_storage::Table;
use rand::rngs::StdRng;
use std::sync::Arc;

/// A Z-order layout: per-column quantile grids + Morton-code boundaries.
#[derive(Clone, Debug)]
pub struct ZOrderLayout {
    cols: Vec<ColId>,
    /// Per-column ascending bucket boundaries (length `buckets − 1`).
    grids: Vec<Vec<Scalar>>,
    /// Bits per dimension (`buckets == 1 << bits`).
    bits: u32,
    /// Ascending Morton-code partition boundaries (length `k − 1`).
    code_boundaries: Vec<u64>,
    name: String,
}

impl ZOrderLayout {
    /// Build from a data sample over the given columns.
    ///
    /// `bits` bits per dimension (e.g. 8 → 256 buckets per column); the
    /// sample's Morton codes are split equi-depth into `k` partitions.
    pub fn from_sample(sample: &Table, cols: &[ColId], bits: u32, k: usize) -> Self {
        assert!(!cols.is_empty(), "Z-order needs at least one column");
        assert!(k >= 1);
        assert!(bits * cols.len() as u32 <= 64, "morton overflow");

        let mut grids = Vec::with_capacity(cols.len());
        for &col in cols {
            let mut values: Vec<Scalar> = (0..sample.num_rows())
                .map(|r| sample.scalar(r, col))
                .collect();
            values.sort();
            grids.push(equi_depth_boundaries(&values, 1usize << bits));
        }

        let mut this = Self {
            cols: cols.to_vec(),
            grids,
            bits,
            code_boundaries: Vec::new(),
            name: String::new(),
        };

        let mut codes: Vec<u64> = (0..sample.num_rows())
            .map(|row| this.code_of(sample, row))
            .collect();
        codes.sort_unstable();
        let mut bounds = Vec::with_capacity(k.saturating_sub(1));
        if !codes.is_empty() {
            for i in 1..k {
                let idx = (i * codes.len()) / k;
                bounds.push(codes[idx.min(codes.len() - 1)]);
            }
        } else {
            // degenerate: no sample — split the code space uniformly
            let max_code = 1u128 << (bits * cols.len() as u32);
            for i in 1..k {
                bounds.push(((max_code * i as u128) / k as u128) as u64);
            }
        }
        this.code_boundaries = bounds;

        let col_names: Vec<&str> = cols
            .iter()
            .map(|&c| sample.schema().column(c).name.as_str())
            .collect();
        this.name = format!("zorder({})", col_names.join(","));
        this
    }

    /// Morton code of one row.
    fn code_of(&self, table: &Table, row: usize) -> u64 {
        let mut coords = Vec::with_capacity(self.cols.len());
        for (dim, &col) in self.cols.iter().enumerate() {
            let v = table.scalar(row, col);
            coords.push(bucket_of(&self.grids[dim], &v));
        }
        morton_encode(&coords, self.bits)
    }

    /// The columns interleaved into the Z-order key.
    pub fn cols(&self) -> &[ColId] {
        &self.cols
    }
}

impl LayoutSpec for ZOrderLayout {
    fn k(&self) -> usize {
        self.code_boundaries.len() + 1
    }

    fn route(&self, table: &Table, row: usize) -> u32 {
        let code = self.code_of(table, row);
        self.code_boundaries.partition_point(|&b| b <= code) as u32
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// Workload-aware Z-order generator: columns = top-`num_cols` most queried
/// in the workload sample, with `default_cols` as fallback/padding when the
/// workload references fewer columns.
#[derive(Clone, Debug)]
pub struct ZOrderGenerator {
    num_cols: usize,
    bits: u32,
    default_cols: Vec<ColId>,
}

impl ZOrderGenerator {
    /// `num_cols` Z-order dimensions (the paper uses 3), `bits` bucket bits
    /// per dimension, and fallback columns for cold starts.
    pub fn new(num_cols: usize, bits: u32, default_cols: Vec<ColId>) -> Self {
        assert!(num_cols >= 1);
        assert!(!default_cols.is_empty(), "need fallback columns");
        Self {
            num_cols,
            bits,
            default_cols,
        }
    }

    /// Paper defaults: 3 columns, 256 buckets each.
    pub fn with_defaults(default_cols: Vec<ColId>) -> Self {
        Self::new(3, 8, default_cols)
    }

    /// The columns that would be chosen for a given workload sample: the
    /// top-`num_cols` most queried. When the workload constrains *fewer*
    /// columns, only those are used — interleaving unqueried dimensions
    /// would dilute the curve's resolution on the queried ones. Defaults
    /// only apply on a cold start (empty workload).
    pub fn choose_columns(&self, workload: &[Query]) -> Vec<ColId> {
        let mut cols = top_queried_columns(workload, self.num_cols);
        if cols.is_empty() {
            cols = self.default_cols.clone();
        }
        cols.truncate(self.num_cols);
        cols
    }
}

impl LayoutGenerator for ZOrderGenerator {
    fn name(&self) -> &str {
        "zorder"
    }

    fn generate(
        &self,
        sample: &Table,
        workload: &[Query],
        k: usize,
        _rng: &mut StdRng,
    ) -> SharedSpec {
        let cols = self.choose_columns(workload);
        Arc::new(ZOrderLayout::from_sample(sample, &cols, self.bits, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_exact_model;
    use oreo_query::{ColumnType, QueryBuilder, Schema};
    use oreo_storage::TableBuilder;
    use rand::SeedableRng;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("x", ColumnType::Int),
            ("y", ColumnType::Int),
            ("z", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        // pseudo-random but deterministic grid data
        for i in 0..n {
            b.push_row(&[
                Scalar::Int((i * 31) % 1000),
                Scalar::Int((i * 17) % 1000),
                Scalar::Int(i),
            ]);
        }
        b.finish()
    }

    #[test]
    fn partitions_are_balanced() {
        let t = table(2000);
        let layout = ZOrderLayout::from_sample(&t, &[0, 1], 8, 8);
        let a = layout.assign(&t);
        let mut counts = vec![0usize; 8];
        for &b in &a {
            counts[b as usize] += 1;
        }
        for c in counts {
            assert!((200..=300).contains(&c), "unbalanced: {c}");
        }
    }

    #[test]
    fn zorder_skips_on_both_columns() {
        let t = table(2000);
        let layout = ZOrderLayout::from_sample(&t, &[0, 1], 8, 16);
        let model = build_exact_model(&layout, 1, &t);
        // narrow box query on both columns touches few partitions
        let q = QueryBuilder::new(t.schema())
            .between("x", 0, 120)
            .between("y", 0, 120)
            .build();
        assert!(
            model.cost(&q) < 0.5,
            "2-D box should skip most partitions, cost = {}",
            model.cost(&q)
        );
        // single-column query also benefits (less)
        let qx = QueryBuilder::new(t.schema()).between("x", 0, 120).build();
        assert!(model.cost(&qx) < 1.0);
    }

    #[test]
    fn generator_picks_top_queried_columns() {
        let t = table(100);
        let gen = ZOrderGenerator::new(2, 4, vec![2]);
        let qs: Vec<Query> = (0..10)
            .map(|i| {
                QueryBuilder::new(t.schema())
                    .between("y", i, i + 10)
                    .between("z", 0, 50)
                    .build()
            })
            .collect();
        assert_eq!(gen.choose_columns(&qs), vec![1, 2]);
        // empty workload → defaults padded
        assert_eq!(gen.choose_columns(&[]), vec![2]);
    }

    #[test]
    fn generated_spec_is_deterministic() {
        let t = table(500);
        let gen = ZOrderGenerator::with_defaults(vec![0, 1, 2]);
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let s1 = gen.generate(&t, &[], 8, &mut rng1);
        let s2 = gen.generate(&t, &[], 8, &mut rng2);
        assert_eq!(s1.assign(&t), s2.assign(&t));
    }

    #[test]
    fn single_column_zorder_equals_range_ordering() {
        let t = table(1000);
        let layout = ZOrderLayout::from_sample(&t, &[2], 8, 4);
        let a = layout.assign(&t);
        // z == row index, so assignment must be monotone
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
