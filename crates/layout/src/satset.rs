//! Satisfying-set algebra for single-column atoms.
//!
//! The Qd-tree greedy builder needs to reason about *logical relationships*
//! between a query's predicate and a candidate cut: if the query implies the
//! cut, the query never touches the cut's "no" subtree (those rows become
//! skippable); if it contradicts the cut, it skips the "yes" subtree.
//!
//! We represent an atom's set of satisfying values per column as either an
//! interval (ordered comparisons, BETWEEN) or a finite set (`=`, `IN`), and
//! implement conservative subset / disjointness checks. "Conservative" means
//! `subset_of` may return `false` for a true subset (costing only greedy
//! quality, never correctness), but never returns `true` wrongly.

use oreo_query::{Atom, CompareOp, Scalar};
use std::collections::BTreeSet;

/// One end of an interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bound {
    /// No endpoint (−∞ or +∞).
    Unbounded,
    /// Endpoint included.
    Inclusive(Scalar),
    /// Endpoint excluded.
    Exclusive(Scalar),
}

/// The set of values satisfying a single-column atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatSet {
    /// Contiguous range `(low, high)`.
    Interval {
        /// Lower end of the range.
        low: Bound,
        /// Upper end of the range.
        high: Bound,
    },
    /// Finite set of points.
    Points(BTreeSet<Scalar>),
    /// Nothing satisfies (e.g. the intersection of disjoint atoms).
    Empty,
}

impl SatSet {
    /// The satisfying set of a single atom.
    pub fn of_atom(atom: &Atom) -> SatSet {
        match atom {
            Atom::Compare { op, value, .. } => match op {
                CompareOp::Lt => SatSet::Interval {
                    low: Bound::Unbounded,
                    high: Bound::Exclusive(value.clone()),
                },
                CompareOp::Le => SatSet::Interval {
                    low: Bound::Unbounded,
                    high: Bound::Inclusive(value.clone()),
                },
                CompareOp::Gt => SatSet::Interval {
                    low: Bound::Exclusive(value.clone()),
                    high: Bound::Unbounded,
                },
                CompareOp::Ge => SatSet::Interval {
                    low: Bound::Inclusive(value.clone()),
                    high: Bound::Unbounded,
                },
                CompareOp::Eq => SatSet::Points([value.clone()].into_iter().collect()),
            },
            Atom::Between { low, high, .. } => {
                if low > high {
                    SatSet::Empty
                } else {
                    SatSet::Interval {
                        low: Bound::Inclusive(low.clone()),
                        high: Bound::Inclusive(high.clone()),
                    }
                }
            }
            Atom::InSet { set, .. } => {
                if set.is_empty() {
                    SatSet::Empty
                } else {
                    SatSet::Points(set.iter().cloned().collect())
                }
            }
        }
    }

    /// Intersect two satisfying sets (conjunction of atoms on one column).
    pub fn intersect(&self, other: &SatSet) -> SatSet {
        match (self, other) {
            (SatSet::Empty, _) | (_, SatSet::Empty) => SatSet::Empty,
            (SatSet::Points(a), SatSet::Points(b)) => {
                let inter: BTreeSet<Scalar> = a.intersection(b).cloned().collect();
                if inter.is_empty() {
                    SatSet::Empty
                } else {
                    SatSet::Points(inter)
                }
            }
            (SatSet::Points(pts), iv @ SatSet::Interval { .. })
            | (iv @ SatSet::Interval { .. }, SatSet::Points(pts)) => {
                let kept: BTreeSet<Scalar> =
                    pts.iter().filter(|p| iv.contains(p)).cloned().collect();
                if kept.is_empty() {
                    SatSet::Empty
                } else {
                    SatSet::Points(kept)
                }
            }
            (SatSet::Interval { low: l1, high: h1 }, SatSet::Interval { low: l2, high: h2 }) => {
                let low = max_low(l1, l2);
                let high = min_high(h1, h2);
                if interval_empty(&low, &high) {
                    SatSet::Empty
                } else {
                    SatSet::Interval { low, high }
                }
            }
        }
    }

    /// Point membership.
    pub fn contains(&self, v: &Scalar) -> bool {
        match self {
            SatSet::Empty => false,
            SatSet::Points(pts) => pts.contains(v),
            SatSet::Interval { low, high } => {
                let above_low = match low {
                    Bound::Unbounded => true,
                    Bound::Inclusive(b) => v >= b,
                    Bound::Exclusive(b) => v > b,
                };
                let below_high = match high {
                    Bound::Unbounded => true,
                    Bound::Inclusive(b) => v <= b,
                    Bound::Exclusive(b) => v < b,
                };
                above_low && below_high
            }
        }
    }

    /// Conservative subset check: `true` guarantees `self ⊆ other`.
    pub fn subset_of(&self, other: &SatSet) -> bool {
        match (self, other) {
            (SatSet::Empty, _) => true,
            (_, SatSet::Empty) => false,
            (SatSet::Points(a), SatSet::Points(b)) => a.is_subset(b),
            (SatSet::Points(a), iv @ SatSet::Interval { .. }) => a.iter().all(|p| iv.contains(p)),
            // An interval (with a continuum of values) is only inside a
            // finite point set in degenerate cases; stay conservative.
            (SatSet::Interval { .. }, SatSet::Points(_)) => false,
            (SatSet::Interval { low: l1, high: h1 }, SatSet::Interval { low: l2, high: h2 }) => {
                low_geq(l1, l2) && high_leq(h1, h2)
            }
        }
    }

    /// Conservative disjointness check: `true` guarantees no common value.
    pub fn disjoint_from(&self, other: &SatSet) -> bool {
        matches!(self.intersect(other), SatSet::Empty)
    }
}

/// The tighter (larger) of two lower bounds.
fn max_low(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        (Bound::Inclusive(x), Bound::Inclusive(y)) => {
            Bound::Inclusive(if x >= y { x.clone() } else { y.clone() })
        }
        (Bound::Exclusive(x), Bound::Exclusive(y)) => {
            Bound::Exclusive(if x >= y { x.clone() } else { y.clone() })
        }
        (Bound::Inclusive(x), Bound::Exclusive(y)) | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
            if y >= x {
                Bound::Exclusive(y.clone())
            } else {
                Bound::Inclusive(x.clone())
            }
        }
    }
}

/// The tighter (smaller) of two upper bounds.
fn min_high(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        (Bound::Inclusive(x), Bound::Inclusive(y)) => {
            Bound::Inclusive(if x <= y { x.clone() } else { y.clone() })
        }
        (Bound::Exclusive(x), Bound::Exclusive(y)) => {
            Bound::Exclusive(if x <= y { x.clone() } else { y.clone() })
        }
        (Bound::Inclusive(x), Bound::Exclusive(y)) | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
            if y <= x {
                Bound::Exclusive(y.clone())
            } else {
                Bound::Inclusive(x.clone())
            }
        }
    }
}

/// Is the interval `(low, high)` provably empty? Conservative for open
/// bounds over dense domains (treats `(x, x+ε)` as nonempty, which is safe).
fn interval_empty(low: &Bound, high: &Bound) -> bool {
    let (lo, lo_incl) = match low {
        Bound::Unbounded => return false,
        Bound::Inclusive(v) => (v, true),
        Bound::Exclusive(v) => (v, false),
    };
    let (hi, hi_incl) = match high {
        Bound::Unbounded => return false,
        Bound::Inclusive(v) => (v, true),
        Bound::Exclusive(v) => (v, false),
    };
    match lo.cmp(hi) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => !(lo_incl && hi_incl),
        std::cmp::Ordering::Less => false,
    }
}

/// Is lower bound `a` at least as tight as `b` (i.e. a ≥ b)?
fn low_geq(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Inclusive(x), Bound::Inclusive(y)) => x >= y,
        (Bound::Exclusive(x), Bound::Exclusive(y)) => x >= y,
        (Bound::Inclusive(x), Bound::Exclusive(y)) => x > y,
        (Bound::Exclusive(x), Bound::Inclusive(y)) => x >= y,
    }
}

/// Is upper bound `a` at least as tight as `b` (i.e. a ≤ b)?
fn high_leq(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Inclusive(x), Bound::Inclusive(y)) => x <= y,
        (Bound::Exclusive(x), Bound::Exclusive(y)) => x <= y,
        (Bound::Inclusive(x), Bound::Exclusive(y)) => x < y,
        (Bound::Exclusive(x), Bound::Inclusive(y)) => x <= y,
    }
}

/// The combined satisfying set of all atoms a predicate places on `col`
/// (`None` when the predicate does not constrain the column).
pub fn predicate_satset(
    predicate: &oreo_query::Predicate,
    col: oreo_query::ColId,
) -> Option<SatSet> {
    let mut acc: Option<SatSet> = None;
    for atom in predicate.atoms() {
        if atom.col() != col {
            continue;
        }
        let s = SatSet::of_atom(atom);
        acc = Some(match acc {
            None => s,
            Some(prev) => prev.intersect(&s),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom_cmp(op: CompareOp, v: i64) -> Atom {
        Atom::Compare {
            col: 0,
            op,
            value: Scalar::Int(v),
        }
    }

    #[test]
    fn atom_satsets_contain_their_matches() {
        for (atom, inside, outside) in [
            (atom_cmp(CompareOp::Lt, 10), 9, 10),
            (atom_cmp(CompareOp::Le, 10), 10, 11),
            (atom_cmp(CompareOp::Gt, 10), 11, 10),
            (atom_cmp(CompareOp::Ge, 10), 10, 9),
            (atom_cmp(CompareOp::Eq, 10), 10, 9),
        ] {
            let s = SatSet::of_atom(&atom);
            assert!(s.contains(&Scalar::Int(inside)), "{atom:?}");
            assert!(!s.contains(&Scalar::Int(outside)), "{atom:?}");
        }
    }

    #[test]
    fn intersection_of_disjoint_ranges_is_empty() {
        let a = SatSet::of_atom(&atom_cmp(CompareOp::Lt, 5));
        let b = SatSet::of_atom(&atom_cmp(CompareOp::Gt, 10));
        assert_eq!(a.intersect(&b), SatSet::Empty);
        assert!(a.disjoint_from(&b));
    }

    #[test]
    fn touching_open_bounds_are_empty() {
        // x < 5 AND x > 5 → empty; x < 5 AND x >= 5 → empty
        let lt = SatSet::of_atom(&atom_cmp(CompareOp::Lt, 5));
        let gt = SatSet::of_atom(&atom_cmp(CompareOp::Gt, 5));
        let ge = SatSet::of_atom(&atom_cmp(CompareOp::Ge, 5));
        assert_eq!(lt.intersect(&gt), SatSet::Empty);
        assert_eq!(lt.intersect(&ge), SatSet::Empty);
        // x <= 5 AND x >= 5 → {5}-ish interval, not empty
        let le = SatSet::of_atom(&atom_cmp(CompareOp::Le, 5));
        assert_ne!(le.intersect(&ge), SatSet::Empty);
    }

    #[test]
    fn subset_checks() {
        let narrow = SatSet::of_atom(&Atom::Between {
            col: 0,
            low: Scalar::Int(3),
            high: Scalar::Int(7),
        });
        let wide = SatSet::of_atom(&Atom::Between {
            col: 0,
            low: Scalar::Int(0),
            high: Scalar::Int(10),
        });
        assert!(narrow.subset_of(&wide));
        assert!(!wide.subset_of(&narrow));

        let pts = SatSet::of_atom(&Atom::InSet {
            col: 0,
            set: vec![Scalar::Int(4), Scalar::Int(5)],
        });
        assert!(pts.subset_of(&narrow));
        assert!(!pts.subset_of(&SatSet::of_atom(&atom_cmp(CompareOp::Lt, 5))));
    }

    #[test]
    fn exclusive_vs_inclusive_subsets() {
        let lt = SatSet::of_atom(&atom_cmp(CompareOp::Lt, 10)); // (-inf, 10)
        let le = SatSet::of_atom(&atom_cmp(CompareOp::Le, 10)); // (-inf, 10]
        assert!(lt.subset_of(&le));
        assert!(!le.subset_of(&lt));
    }

    #[test]
    fn predicate_satset_intersects_atoms() {
        let p = oreo_query::Predicate::new(vec![
            atom_cmp(CompareOp::Ge, 5),
            atom_cmp(CompareOp::Lt, 10),
        ]);
        let s = predicate_satset(&p, 0).unwrap();
        assert!(s.contains(&Scalar::Int(5)));
        assert!(s.contains(&Scalar::Int(9)));
        assert!(!s.contains(&Scalar::Int(10)));
        assert!(predicate_satset(&p, 1).is_none());
    }

    #[test]
    fn contradictory_predicate_is_empty() {
        let p = oreo_query::Predicate::new(vec![
            atom_cmp(CompareOp::Lt, 0),
            atom_cmp(CompareOp::Gt, 10),
        ]);
        assert_eq!(predicate_satset(&p, 0).unwrap(), SatSet::Empty);
    }

    #[test]
    fn points_filtered_by_interval() {
        let pts = SatSet::of_atom(&Atom::InSet {
            col: 0,
            set: vec![Scalar::Int(1), Scalar::Int(6), Scalar::Int(20)],
        });
        let iv = SatSet::of_atom(&Atom::Between {
            col: 0,
            low: Scalar::Int(5),
            high: Scalar::Int(10),
        });
        match pts.intersect(&iv) {
            SatSet::Points(p) => {
                assert_eq!(p.len(), 1);
                assert!(p.contains(&Scalar::Int(6)));
            }
            other => panic!("expected points, got {other:?}"),
        }
    }
}
