//! The bounded structured event journal: every policy decision and query
//! lifecycle transition as a sequence-stamped event in a fixed-capacity,
//! per-thread-sharded ring.
//!
//! Design constraints, in order:
//!
//! * **Zero cost when disabled.** Instrumented code holds an
//!   `Arc<dyn EventSink>`; the [`NullSink`] reports `enabled() == false`,
//!   so call sites skip even *constructing* the event. The serving engine
//!   runs with the null sink unless a journal was asked for.
//! * **Bounded.** Each shard is a ring of fixed capacity; when full, the
//!   oldest events are overwritten and counted in
//!   [`Journal::events_dropped`]. Memory is `shards × capacity` events,
//!   forever.
//! * **Ordered.** Every event is stamped from one global atomic sequence
//!   at emit time, so a drained journal sorts into a single total order —
//!   which is what lets a FIFO run's policy events replay the
//!   `CostLedger` bit-for-bit: events are emitted *under the core mutex*
//!   at the exact ledger-operation sites, so seq order is ledger order.
//! * **Low contention.** Threads are assigned round-robin to a small set
//!   of shard mutexes; with one thread per shard an emit is an
//!   uncontended lock plus a vector write.
//!
//! Layout identifiers are carried as raw `u64` (the workspace's
//! `LayoutId` type alias) so this crate stays dependency-free.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which phase of a background reorganization a
/// [`EventKind::ReorgPhase`] event measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorgPhaseKind {
    /// Materializing the target layout aside (routing + partition build).
    Build,
    /// Persisting the aside rewrite (write + fsync + atomic rename).
    Write,
    /// Swapping the served snapshot pointer.
    Publish,
    /// Dropping the superseded generation's buffer-pool pages.
    Invalidate,
}

impl ReorgPhaseKind {
    /// Lower-case label (`"build"`, `"write"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            ReorgPhaseKind::Build => "build",
            ReorgPhaseKind::Write => "write",
            ReorgPhaseKind::Publish => "publish",
            ReorgPhaseKind::Invalidate => "invalidate",
        }
    }
}

/// The event vocabulary: query lifecycle spans, policy decisions,
/// reorganization phases, and storage-layer incidents.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A query entered the work queue (span start).
    QueryEnqueued {
        /// Submission order assigned by the engine front end.
        submit_id: u64,
    },
    /// A worker claimed the query and pinned a snapshot.
    QueryPickup {
        /// Submission order assigned by the engine front end.
        submit_id: u64,
    },
    /// The snapshot scan finished (still before bookkeeping).
    QueryScanned {
        /// Submission order assigned by the engine front end.
        submit_id: u64,
        /// Rows read after pruning.
        rows_read: u64,
        /// Bytes read by the scan.
        bytes: u64,
        /// Rows matching the predicate.
        matched: u64,
    },
    /// The query's result was fulfilled (span end).
    QueryCompleted {
        /// Submission order assigned by the engine front end.
        submit_id: u64,
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
        /// Pickup → completion latency in microseconds.
        latency_us: u64,
    },
    /// `Oreo` settled one query: the service cost charged to the ledger,
    /// plus the D-UMTS view after the step. Replaying these (with
    /// [`EventKind::SwitchDecided`]) in seq order reproduces the
    /// `CostLedger` exactly.
    QueryObserved {
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
        /// Service cost charged (fraction of table read).
        service_cost: f64,
        /// Physical layout the cost was billed against.
        physical: u64,
        /// The reorganizer's logical current state.
        logical: u64,
        /// The logical state's D-UMTS work-function counter after the
        /// step (the quantity Algorithm 4 spends toward α).
        counter: f64,
    },
    /// The D-UMTS phase ended this step (all counters exhausted).
    PhaseReset {
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
    },
    /// The reorganizer decided to switch — α entered the ledger *now*;
    /// the physical swap lands later (after Δ, or at publish).
    SwitchDecided {
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
        /// Logical state before the switch.
        from: u64,
        /// Switch target.
        target: u64,
        /// Reorganization cost charged (the ledger's cost delta).
        alpha: f64,
        /// Depth of the pending-switch queue after this decision.
        pending: u64,
    },
    /// The layout manager admitted a candidate to the state space.
    StateAdmitted {
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
        /// The admitted layout.
        layout: u64,
    },
    /// Pruning removed a state from the state space.
    StateRemoved {
        /// Stream position assigned by the bookkeeping core.
        stream_seq: u64,
        /// The removed layout.
        layout: u64,
    },
    /// A pending switch landed: queries are physically served on
    /// `target` from here on.
    ReorgApplied {
        /// The layout that became physical.
        target: u64,
    },
    /// One timed phase of a background reorganization window.
    ReorgPhase {
        /// The switch target being built.
        target: u64,
        /// Which phase.
        phase: ReorgPhaseKind,
        /// Phase wall-clock in microseconds.
        micros: u64,
        /// Bytes written by the phase (0 outside `Write`).
        bytes: u64,
    },
    /// A tiered publish failed and the switch degraded to a memory-only
    /// publish.
    TieredDegraded {
        /// The switch target whose persist failed.
        target: u64,
    },
    /// Ingest compaction work (delta-run merges or a background fold)
    /// entered the ledger. Replayed by `CostLedger::replay` alongside
    /// query and switch events.
    CompactionCharged {
        /// Stream position of the charge (the next query's position for
        /// charges between queries).
        stream_seq: u64,
        /// Rows rewritten by the merge/fold.
        rows_written: u64,
        /// Cost charged (same logical unit as α: full-table-scan
        /// equivalents).
        cost: f64,
    },
    /// The buffer pool evicted one page to make room.
    PoolEvicted {
        /// Generation the page belonged to.
        generation: u64,
        /// Partition-file index within the generation.
        file: u32,
        /// Page number within the file.
        page: u32,
    },
    /// A superseded generation's pages were dropped from the pool.
    PoolInvalidated {
        /// The retired generation.
        generation: u64,
        /// Pages dropped.
        pages: u64,
    },
}

/// One journal entry: a globally ordered sequence number, a relative
/// timestamp, and the event payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global emit order (dense per journal, unique across shards).
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_us: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Where instrumented code sends events. Implementations must be cheap
/// to query: call sites guard event *construction* behind
/// [`EventSink::enabled`].
pub trait EventSink: Send + Sync {
    /// Whether emitted events go anywhere. Call sites skip building the
    /// event when this is `false`.
    fn enabled(&self) -> bool;
    /// Record one event.
    fn emit(&self, kind: EventKind);
}

/// The disabled sink: `enabled()` is `false`, `emit` is a no-op. This is
/// what instrumented code holds when no journal was configured.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&self, _kind: EventKind) {}
}

struct Ring {
    buf: Vec<Event>,
    /// Overwrite position once the ring is full.
    next: usize,
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, capacity: usize, event: Event) {
        if self.buf.len() < capacity {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % capacity;
            self.overwritten += 1;
        }
    }
}

/// Process-wide thread ordinal assignment for shard selection.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// The bounded, sharded event journal. See the [module docs](self).
pub struct Journal {
    shards: Vec<Mutex<Ring>>,
    capacity: usize,
    seq: AtomicU64,
    origin: Instant,
}

impl Journal {
    /// A journal of `shards` rings holding `capacity` events each.
    /// Memory is fixed at `shards × capacity` events.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: Vec::new(),
                        next: 0,
                        overwritten: 0,
                    })
                })
                .collect(),
            capacity,
            seq: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// Per-shard ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because a shard's ring was full. A journal
    /// sized for its run keeps this at 0 — the replay-parity assertions
    /// require it.
    pub fn events_dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("journal shard poisoned").overwritten)
            .sum()
    }

    /// All retained events, merged across shards and sorted into the
    /// global emit order (non-destructive).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .expect("journal shard poisoned")
                    .buf
                    .iter()
                    .cloned(),
            );
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// As [`Journal::events`], but clears the rings (drop counters are
    /// preserved).
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock().expect("journal shard poisoned");
            out.append(&mut ring.buf);
            ring.next = 0;
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

impl EventSink for Journal {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        let shard = thread_ordinal() % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("journal shard poisoned")
            .push(self.capacity, Event { seq, at_us, kind });
    }
}

/// Render a drained journal as a human-readable decision trace — the
/// `dump_trace` view: one line per event, seq-ordered, with relative
/// timestamps.
pub fn render_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    out.push_str("seq        t(µs)        event\n");
    for e in events {
        let _ = writeln!(out, "{:<10} {:<12} {}", e.seq, e.at_us, describe(&e.kind));
    }
    out
}

/// One event as a trace line body.
fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::QueryEnqueued { submit_id } => format!("query {submit_id} enqueued"),
        EventKind::QueryPickup { submit_id } => format!("query {submit_id} picked up"),
        EventKind::QueryScanned {
            submit_id,
            rows_read,
            bytes,
            matched,
        } => format!("query {submit_id} scanned: {rows_read} rows / {bytes} B, {matched} matched"),
        EventKind::QueryCompleted {
            submit_id,
            stream_seq,
            latency_us,
        } => format!("query {submit_id} completed (stream seq {stream_seq}, {latency_us} µs)"),
        EventKind::QueryObserved {
            stream_seq,
            service_cost,
            physical,
            logical,
            counter,
        } => format!(
            "observe seq {stream_seq}: service {service_cost:.6} on layout {physical} \
             (logical {logical}, counter {counter:.4})"
        ),
        EventKind::PhaseReset { stream_seq } => {
            format!("phase reset at seq {stream_seq} (all counters exhausted)")
        }
        EventKind::SwitchDecided {
            stream_seq,
            from,
            target,
            alpha,
            pending,
        } => format!(
            "SWITCH at seq {stream_seq}: {from} -> {target} (charged α = {alpha}, \
             {pending} pending)"
        ),
        EventKind::StateAdmitted { stream_seq, layout } => {
            format!("state {layout} admitted at seq {stream_seq}")
        }
        EventKind::StateRemoved { stream_seq, layout } => {
            format!("state {layout} pruned at seq {stream_seq}")
        }
        EventKind::ReorgApplied { target } => {
            format!("reorg applied: physical layout is now {target}")
        }
        EventKind::ReorgPhase {
            target,
            phase,
            micros,
            bytes,
        } => format!(
            "reorg {} of layout {target}: {micros} µs, {bytes} B",
            phase.label()
        ),
        EventKind::TieredDegraded { target } => {
            format!("tiered publish of layout {target} FAILED (memory-only degradation)")
        }
        EventKind::CompactionCharged {
            stream_seq,
            rows_written,
            cost,
        } => {
            format!("compaction at seq {stream_seq}: {rows_written} rows rewritten, cost {cost:.6}")
        }
        EventKind::PoolEvicted {
            generation,
            file,
            page,
        } => format!("pool evicted page gen {generation} / file {file} / page {page}"),
        EventKind::PoolInvalidated { generation, pages } => {
            format!("pool invalidated generation {generation} ({pages} pages)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_seq_ordered_across_shards() {
        let j = Journal::new(4, 64);
        for i in 0..10 {
            j.emit(EventKind::QueryEnqueued { submit_id: i });
        }
        let events = j.events();
        assert_eq!(events.len(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(j.events_dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let j = Journal::new(1, 4);
        for i in 0..10 {
            j.emit(EventKind::QueryEnqueued { submit_id: i });
        }
        assert_eq!(j.events_dropped(), 6);
        let events = j.events();
        assert_eq!(events.len(), 4, "ring keeps exactly its capacity");
        // the survivors are the newest four
        let ids: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::QueryEnqueued { submit_id } => submit_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_clears_but_keeps_drop_counter() {
        let j = Journal::new(2, 2);
        for i in 0..6 {
            j.emit(EventKind::PhaseReset { stream_seq: i });
        }
        let drained = j.drain();
        assert!(!drained.is_empty());
        assert!(j.events().is_empty(), "drain clears the rings");
        assert!(j.events_dropped() > 0, "drop counter survives drain");
    }

    #[test]
    fn concurrent_emits_keep_unique_seqs() {
        let j = std::sync::Arc::new(Journal::new(4, 10_000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let j = std::sync::Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    j.emit(EventKind::QueryEnqueued {
                        submit_id: t * 1000 + i,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = j.events();
        assert_eq!(events.len(), 4000);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000, "seqs unique and sorted");
        assert_eq!(j.events_dropped(), 0);
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.emit(EventKind::PhaseReset { stream_seq: 0 });
    }

    #[test]
    fn trace_renders_one_line_per_event() {
        let j = Journal::new(1, 16);
        j.emit(EventKind::SwitchDecided {
            stream_seq: 7,
            from: 1,
            target: 9,
            alpha: 80.0,
            pending: 1,
        });
        j.emit(EventKind::ReorgPhase {
            target: 9,
            phase: ReorgPhaseKind::Write,
            micros: 1500,
            bytes: 4096,
        });
        let trace = render_trace(&j.events());
        assert_eq!(trace.lines().count(), 3, "header + 2 events");
        assert!(trace.contains("SWITCH at seq 7: 1 -> 9"));
        assert!(trace.contains("reorg write of layout 9: 1500 µs, 4096 B"));
    }
}
