//! Snapshot exporters: JSON (one object per snapshot, JSONL-friendly)
//! and Prometheus text exposition, plus a [`SnapshotWriter`] that
//! appends timestamped snapshot lines to a file from a background
//! exporter thread.
//!
//! Both renderers are hand-rolled on `std::fmt` — this crate is
//! deliberately dependency-free. Gauges that were never set (or hold a
//! non-finite value) render as JSON `null` and are omitted from the
//! Prometheus dump: "not measurable" is a first-class state, not 0.0.

use crate::registry::{MetricValue, MetricsSnapshot};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value (`null` when non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl MetricsSnapshot {
    /// Render the snapshot as one flat JSON object keyed by metric name.
    /// Counters are integers, gauges are numbers (or `null` when never
    /// set), histograms are nested objects with
    /// `count/sum/min/max/mean/p50/p95/p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 48);
        out.push('{');
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => out.push_str(&json_f64(*v)),
                MetricValue::Histogram(s) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                         \"p50\":{},\"p95\":{},\"p99\":{}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        json_f64(s.mean),
                        json_f64(s.p50),
                        json_f64(s.p95),
                        json_f64(s.p99),
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Render the snapshot in Prometheus text exposition format. Metric
    /// names are prefixed `oreo_` and sanitized to `[a-zA-Z0-9_:]`;
    /// histograms render as summaries (`{quantile="…"}` series plus
    /// `_sum` and `_count`); never-set gauges are omitted.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 64);
        for (name, value) in &self.entries {
            let prom = prom_name(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {prom} counter");
                    let _ = writeln!(out, "{prom} {v}");
                }
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        let _ = writeln!(out, "# TYPE {prom} gauge");
                        let _ = writeln!(out, "{prom} {v}");
                    }
                }
                MetricValue::Histogram(s) => {
                    let _ = writeln!(out, "# TYPE {prom} summary");
                    if s.count > 0 {
                        let _ = writeln!(out, "{prom}{{quantile=\"0.5\"}} {}", s.p50);
                        let _ = writeln!(out, "{prom}{{quantile=\"0.95\"}} {}", s.p95);
                        let _ = writeln!(out, "{prom}{{quantile=\"0.99\"}} {}", s.p99);
                    }
                    let _ = writeln!(out, "{prom}_sum {}", s.sum);
                    let _ = writeln!(out, "{prom}_count {}", s.count);
                }
            }
        }
        out
    }
}

/// `engine.latency_us` → `oreo_engine_latency_us`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("oreo_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Appends one JSON line per snapshot to a file:
/// `{"snapshot_seq":N,"cell":"…","elapsed_s":X,"metrics":{…}}`.
/// The line-per-snapshot framing (JSONL) lets a run append periodic
/// snapshots from several serving cells into a single file that tools
/// can stream.
#[derive(Debug)]
pub struct SnapshotWriter {
    file: File,
    next_seq: u64,
}

impl SnapshotWriter {
    /// Open `path` for appending (created if missing).
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file, next_seq: 0 })
    }

    /// Append one snapshot line and flush it.
    pub fn append(&mut self, cell: &str, elapsed_s: f64, snap: &MetricsSnapshot) -> io::Result<()> {
        let line = format!(
            "{{\"snapshot_seq\":{},\"cell\":\"{}\",\"elapsed_s\":{},\"metrics\":{}}}\n",
            self.next_seq,
            json_escape(cell),
            json_f64(elapsed_s),
            snap.to_json(),
        );
        self.next_seq += 1;
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// Snapshot lines appended so far.
    pub fn written(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("engine.queries_completed").add(42);
        r.gauge("pool.hit_rate").set(0.875);
        r.gauge("alpha.hat"); // registered, never set -> NaN
        let h = r.histogram("engine.latency_us");
        for v in [100, 200, 300] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_has_all_kinds_and_null_for_unset_gauge() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"engine.queries_completed\":42"));
        assert!(json.contains("\"pool.hit_rate\":0.875"));
        assert!(json.contains("\"alpha.hat\":null"));
        assert!(json.contains("\"engine.latency_us\":{\"count\":3,\"sum\":600,"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn prometheus_skips_unset_gauges_and_renders_summaries() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE oreo_engine_queries_completed counter"));
        assert!(prom.contains("oreo_engine_queries_completed 42"));
        assert!(prom.contains("oreo_pool_hit_rate 0.875"));
        assert!(!prom.contains("oreo_alpha_hat"), "never-set gauge omitted");
        assert!(prom.contains("oreo_engine_latency_us{quantile=\"0.5\"}"));
        assert!(prom.contains("oreo_engine_latency_us_count 3"));
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn snapshot_writer_appends_one_line_per_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "oreo-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let snap = sample();
        {
            let mut w = SnapshotWriter::create(&path).unwrap();
            w.append("w1-reorg_on", 0.25, &snap).unwrap();
            w.append("w1-reorg_on", 0.5, &snap).unwrap();
            assert_eq!(w.written(), 2);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"snapshot_seq\":0,\"cell\":\"w1-reorg_on\""));
        assert!(lines[1].starts_with("{\"snapshot_seq\":1,"));
        assert!(lines[0].contains("\"metrics\":{"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
