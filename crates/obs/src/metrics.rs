//! The three metric primitives: [`Counter`], [`Gauge`], and a fixed-size
//! log-bucketed [`Histogram`] (HdrHistogram-style) that streams
//! p50/p95/p99 without retaining samples.
//!
//! All three are updated with plain atomic operations — no locks on the
//! record path — so workers can publish into them from the hottest loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
///
/// A gauge that has never been set — or was set to a non-finite value —
/// renders as `null` in the JSON exporter, which is how "not measurable
/// yet" values (e.g. α̂ before the first persisted rewrite) appear in
/// snapshots.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }
}

impl Gauge {
    /// An unset gauge (reads as NaN).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (NaN when never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Octave groups above the exact range (`2^5 ..= 2^63`).
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total bucket count: 32 exact unit buckets + 59 groups of 32.
pub const NUM_BUCKETS: usize = SUB_COUNT * (GROUPS + 1);

/// The histogram's documented accuracy: any reported quantile is within
/// one bucket width of the exact nearest-rank value, and bucket widths are
/// at most `value / 32` — a relative error of `1/32` ≈ **3.125%** (values
/// below 32 are exact).
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_COUNT as f64;

/// Bucket index of `v`: exact below 32, then `(exponent, sub-bucket)`
/// log-bucketing with 32 sub-buckets per octave.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // 5..=63
        let shift = e - SUB_BITS;
        let sub = ((v >> shift) as usize) - SUB_COUNT;
        (e - SUB_BITS + 1) as usize * SUB_COUNT + sub
    }
}

/// Inclusive value range `[low, high]` covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_COUNT {
        (i as u64, i as u64)
    } else {
        let group = (i / SUB_COUNT) as u32; // >= 1
        let sub = (i % SUB_COUNT) as u64;
        let shift = group - 1;
        let low = (SUB_COUNT as u64 + sub) << shift;
        let width = 1u64 << shift;
        // `low + (width - 1)`: the top bucket's high bound is u64::MAX, so
        // adding the full width before subtracting would overflow.
        (low, low + (width - 1))
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramStats {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (wraps only past `u64::MAX`).
    pub sum: u64,
    /// Exact minimum sample (0 when empty).
    pub min: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
    /// Exact mean (`sum / count`; 0 when empty).
    pub mean: f64,
    /// Streaming median (bucket midpoint; see [`RELATIVE_ERROR`]).
    pub p50: f64,
    /// Streaming 95th percentile.
    pub p95: f64,
    /// Streaming 99th percentile.
    pub p99: f64,
}

/// A fixed-size, mergeable, log-bucketed histogram over `u64` samples.
///
/// * **Fixed memory**: [`NUM_BUCKETS`] (= 1920) atomic bucket counters —
///   15 KiB — regardless of how many samples are recorded. This is what
///   lets the serving engine stream latency percentiles for arbitrarily
///   long runs instead of retaining one `u64` per query until shutdown.
/// * **Lock-free**: `record` is one `fetch_add` on the bucket plus
///   count/sum/min/max updates, all `Relaxed` atomics.
/// * **Bounded error**: quantiles return the midpoint of the bucket
///   containing the exact nearest-rank sample, so they are within one
///   bucket width — relative error ≤ [`RELATIVE_ERROR`] (1/32 ≈ 3.125%);
///   `count`, `sum`, `mean`, `min`, and `max` are exact.
/// * **Mergeable**: [`Histogram::merge`] adds bucket counts, and equals
///   histogramming the concatenation of the two sample sets exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u64; NUM_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile `q ∈ [0, 1]` (0.0 when empty): the midpoint
    /// of the bucket holding the exact rank-`⌈q·count⌉` sample.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2) as f64;
            }
        }
        // Racing writers can make the bucket sum lag `count` briefly.
        self.max.load(Ordering::Relaxed) as f64
    }

    /// Summary snapshot (count/sum/min/max/mean exact; quantiles within
    /// [`RELATIVE_ERROR`]).
    pub fn stats(&self) -> HistogramStats {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramStats::default();
        }
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramStats {
            count,
            sum,
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            mean: sum as f64 / count as f64,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Fold `other`'s samples into `self`. Equivalent — bucket for bucket
    /// and in every exact statistic — to having recorded both sample sets
    /// into one histogram.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        let other_count = other.count.load(Ordering::Relaxed);
        if other_count == 0 {
            return;
        }
        self.count.fetch_add(other_count, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Raw bucket counts (index order; see [`NUM_BUCKETS`]). Exposed for
    /// exporters and the merge-equivalence tests.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Consecutive buckets abut: high(i) + 1 == low(i + 1).
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        // Every probed value maps into a bucket that contains it.
        for v in [0, 1, 31, 32, 33, 63, 64, 1000, 123_456, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUB_COUNT..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = (hi - lo + 1) as f64;
            assert!(
                width / lo as f64 <= RELATIVE_ERROR + 1e-12,
                "bucket {i}: width {width} over low {lo}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        assert!(g.get().is_nan(), "unset gauge reads NaN");
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn exact_stats_and_streaming_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // Exact nearest-rank values are 50 / 95 / 99; the stream stays
        // within one bucket's relative error.
        for (got, exact) in [(s.p50, 50.0), (s.p95, 95.0), (s.p99, 99.0)] {
            assert!(
                (got - exact).abs() <= exact * RELATIVE_ERROR + 1e-9,
                "got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.stats(), HistogramStats::default());
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 7, 31, 32, 900, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 5, 64, 70_000, 900, u64::MAX] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert_eq!(a.stats(), both.stats());
    }
}
