//! `oreo-obs` — live observability for the OREO serving stack.
//!
//! Three pieces, each usable alone:
//!
//! * [`metrics`] — a lock-free [`Registry`] of named atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-size log-bucketed
//!   [`Histogram`]s. Histograms stream p50/p95/p99 without storing
//!   samples: 15 KiB of buckets per histogram, quantiles within
//!   [`RELATIVE_ERROR`] (one sub-bucket width, 1/32 ≈ 3.1%) of the
//!   exact sorted-sample answer, and mergeable across threads.
//! * [`journal`] — a bounded, seq-stamped structured [`Journal`] of
//!   [`EventKind`]s covering the query lifecycle (enqueue → pickup →
//!   scan → complete) and every policy decision (observe outcomes,
//!   switch decisions with cost deltas, reorg window phases, pool
//!   evictions, tiered degradations). Instrumented code holds an
//!   `Arc<dyn EventSink>`; the [`NullSink`] makes instrumentation free
//!   when disabled. A FIFO run's journal replays to exactly the
//!   engine's `CostLedger`.
//! * [`export`] — JSON / Prometheus-text renderings of a
//!   [`MetricsSnapshot`], a [`SnapshotWriter`] for periodic JSONL
//!   snapshot files, and [`render_trace`] for the human-readable
//!   decision trace.
//!
//! The crate is deliberately dependency-free (std only) so every layer
//! of the workspace — core, storage, engine, bench — can publish into
//! it without cycles.

pub mod export;
pub mod journal;
pub mod metrics;
pub mod registry;

pub use export::SnapshotWriter;
pub use journal::{render_trace, Event, EventKind, EventSink, Journal, NullSink, ReorgPhaseKind};
pub use metrics::{Counter, Gauge, Histogram, HistogramStats, NUM_BUCKETS, RELATIVE_ERROR};
pub use registry::{MetricValue, MetricsSnapshot, Registry};
