//! The metrics registry: named [`Counter`]s, [`Gauge`]s, and
//! [`Histogram`]s behind `Arc` handles.
//!
//! Registration (name → metric) takes a mutex, but it happens once per
//! metric at startup; the handles it returns are plain `Arc`s whose
//! updates are lock-free atomics. [`Registry::snapshot`] walks the name
//! map once and reads every metric's current value — safe to call from a
//! background exporter while workers keep publishing.

use crate::metrics::{Counter, Gauge, Histogram, HistogramStats};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A name → metric map. See the [module docs](self).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Read every registered metric's current value, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("registry poisoned");
        MetricsSnapshot {
            entries: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.stats()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading (NaN = never set / not measurable).
    Gauge(f64),
    /// A histogram summary.
    Histogram(HistogramStats),
}

/// A point-in-time reading of every metric in a [`Registry`], in name
/// order. Render with [`MetricsSnapshot::to_json`] or
/// [`MetricsSnapshot::to_prometheus`] (see [`crate::export`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (`None` when absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name (`None` when absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<HistogramStats> {
        match self.get(name) {
            Some(MetricValue::Histogram(s)) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshots_read_them() {
        let r = Registry::new();
        let c = r.counter("engine.queries_completed");
        r.counter("engine.queries_completed").add(2);
        c.inc();
        r.gauge("pool.hit_rate").set(0.9);
        r.histogram("engine.latency_us").record(250);
        let snap = r.snapshot();
        assert_eq!(snap.counter("engine.queries_completed"), Some(3));
        assert_eq!(snap.gauge("pool.hit_rate"), Some(0.9));
        assert_eq!(snap.histogram("engine.latency_us").unwrap().count, 1);
        assert_eq!(snap.get("missing"), None);
        // name order
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
