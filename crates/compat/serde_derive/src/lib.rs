//! Offline no-op stand-in for the `serde_derive` proc-macros.
//!
//! The build environment for this workspace has no access to crates.io, so
//! `#[derive(Serialize, Deserialize)]` is satisfied by these macros, which
//! expand to nothing. That is sound here because no code in the workspace
//! takes a `T: Serialize`/`T: Deserialize` bound or actually serializes —
//! the derives exist so the types are *ready* for the real serde once the
//! registry dependency is restored. Registering `serde` as a helper
//! attribute keeps field annotations like `#[serde(skip)]` compiling.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
