//! Offline, API-compatible subset of the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `serde 1.x` items the OREO codebase names — the [`Serialize`] and
//! [`Deserialize`] traits and their derive macros — are stubbed here behind
//! the same paths. No code in the workspace performs actual serialization
//! (the derives mark config/query types as serialization-*ready*), so the
//! traits are empty markers and the derives expand to nothing.
//!
//! Swapping the real `serde` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module (owned-deserialization marker).
pub mod de {
    pub use super::DeserializeOwned;
}
