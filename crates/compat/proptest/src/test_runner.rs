//! Test-runner configuration and seeding, mirroring
//! `proptest::test_runner`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many random cases each property test runs, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Same default and same override knob as the real crate.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic 64-bit seed for a test, derived from its name (FNV-1a).
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The RNG for one generated case of one test.
pub fn case_rng(name_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(name_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_name_and_case() {
        assert_ne!(name_seed("a"), name_seed("b"));
        use rand::RngCore;
        let mut r0 = case_rng(name_seed("a"), 0);
        let mut r1 = case_rng(name_seed("a"), 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    #[test]
    fn config_with_cases_overrides() {
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }
}
