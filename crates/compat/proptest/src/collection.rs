//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{Shrinkable, Strategy};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A range of collection sizes, mirroring `proptest::collection::SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone + 'static,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        let n = self.size.sample(rng);
        let elems: Vec<Shrinkable<S::Value>> = (0..n)
            .map(|_| self.element.generate_shrinkable(rng))
            .collect();
        vec_shrinkable(elems, self.size.lo)
    }
}

/// Vector shrinking: drop to the minimum length first (the most aggressive
/// candidate), then remove single elements, then shrink elements in place.
fn vec_shrinkable<T: Clone + 'static>(
    elems: Vec<Shrinkable<T>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Shrinkable::with_children(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        if n > min_len {
            // Halve toward the minimum, keeping the prefix…
            let keep = min_len.max(n / 2);
            if keep < n {
                out.push(vec_shrinkable(elems[..keep].to_vec(), min_len));
            }
            // …then drop one element at a time.
            for i in 0..n {
                let mut fewer = elems.clone();
                fewer.remove(i);
                out.push(vec_shrinkable(fewer, min_len));
            }
        }
        for i in 0..n {
            for child in elems[i].children() {
                let mut simpler = elems.clone();
                simpler[i] = child;
                out.push(vec_shrinkable(simpler, min_len));
            }
        }
        out
    })
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set below the requested size; a bounded
        // number of extra draws keeps generation total on narrow domains.
        let mut attempts = 0;
        while set.len() < n && attempts < n.saturating_mul(10) + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates ordered sets whose elements come from `element` and whose size
/// is drawn from `size`, mirroring `proptest::collection::btree_set`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0i64..100, 2..5);
        let mut rng = case_rng(5, 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        let s = vec(0i64..100, 2..8);
        let mut rng = case_rng(7, 0);
        let mut node = s.generate_shrinkable(&mut rng);
        // Greedy first-child descent must bottom out at the minimal
        // length with every element at the range origin.
        while let Some(k) = node.children().into_iter().next() {
            node = k;
        }
        assert_eq!(node.value, vec![0i64, 0]);
    }

    #[test]
    fn btree_set_is_bounded_and_distinct() {
        let s = btree_set(0i64..8, 0..20);
        let mut rng = case_rng(6, 0);
        for _ in 0..50 {
            // The domain has only 8 values, so the set can never exceed 8;
            // generation must still terminate.
            assert!(s.generate(&mut rng).len() <= 8);
        }
    }
}
