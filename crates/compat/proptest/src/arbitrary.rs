//! The [`Arbitrary`] trait and [`any`] entry point, mirroring
//! `proptest::arbitrary`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )+};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! impl_arbitrary_for_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_for_tuple!(A);
impl_arbitrary_for_tuple!(A, B);
impl_arbitrary_for_tuple!(A, B, C);
impl_arbitrary_for_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn any_i64_covers_both_signs() {
        let s = any::<i64>();
        let mut rng = case_rng(3, 0);
        let mut pos = false;
        let mut neg = false;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            pos |= v > 0;
            neg |= v < 0;
        }
        assert!(pos && neg, "full-domain i64 should produce both signs");
    }

    #[test]
    fn any_tuple_generates() {
        let s = any::<(usize, u8)>();
        let mut rng = case_rng(4, 0);
        let (_a, _b) = s.generate(&mut rng);
    }
}
