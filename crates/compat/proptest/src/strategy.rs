//! The [`Strategy`] trait and its combinators: composable generators of
//! random test inputs, mirroring `proptest::strategy`.
//!
//! Strategies produce [`Shrinkable`] values — a lazy tree whose root is
//! the generated value and whose children are progressively simpler
//! candidates. On failure the test runner walks the tree greedily
//! (binary-search steps toward the origin for integers, componentwise for
//! tuples, length-then-element for vectors), so the reported
//! counterexample is locally minimal rather than the first random hit.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// One generated value plus a lazy tree of simpler candidates, mirroring
/// `proptest::strategy::ValueTree`.
pub struct Shrinkable<T> {
    /// The generated (or shrunk-to) value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// A value with no simpler candidates.
    pub fn leaf(value: T) -> Self {
        Shrinkable {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value whose simpler candidates are produced on demand by
    /// `children` (ordered most-aggressive first — the shrinker takes the
    /// first child that still fails).
    pub fn with_children(value: T, children: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Shrinkable {
            value,
            children: Rc::new(children),
        }
    }

    /// The simpler candidates, most aggressive first.
    pub fn children(&self) -> Vec<Shrinkable<T>> {
        (self.children)()
    }
}

impl<T: Clone + 'static> Shrinkable<T> {
    /// Maps the whole tree through `f` (children lazily).
    pub fn map<O: 'static>(&self, f: Rc<dyn Fn(T) -> O>) -> Shrinkable<O> {
        let value = f(self.value.clone());
        let inner = self.clone();
        Shrinkable::with_children(value, move || {
            inner
                .children()
                .iter()
                .map(|c| c.map(Rc::clone(&f)))
                .collect()
        })
    }
}

/// Values that know how to take binary-search steps toward a simplest
/// point of their domain. Implemented for every [`SampleUniform`] type so
/// range strategies shrink; the float impls are no-ops (float bisection
/// rarely converges to anything more readable than the original).
pub trait Shrink: Clone + 'static {
    /// Candidate replacements between `origin` and `self`, most aggressive
    /// (closest to `origin`) first. Empty when already at the origin.
    fn shrink_candidates(&self, origin: &Self) -> Vec<Self>;
    /// The simplest value inside the `[lo, hi)` domain: zero when the
    /// domain contains it, the low bound otherwise.
    fn shrink_origin(lo: &Self, hi: &Self) -> Self;
}

macro_rules! impl_shrink_int {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self, origin: &Self) -> Vec<Self> {
                let v = *self as i128;
                let o = *origin as i128;
                if v == o {
                    return Vec::new();
                }
                // origin first, then the binary-search ladder back toward
                // the current value: o, v - (v-o)/2, v - (v-o)/4, …, v ± 1.
                let mut out = vec![o];
                let mut diff = v - o;
                loop {
                    diff /= 2;
                    if diff == 0 {
                        break;
                    }
                    let c = v - diff;
                    if c != o {
                        out.push(c);
                    }
                }
                out.into_iter().map(|c| c as $t).collect()
            }

            fn shrink_origin(lo: &Self, hi: &Self) -> Self {
                let zero: $t = 0;
                if *lo <= zero && zero < *hi {
                    zero
                } else {
                    *lo
                }
            }
        }
    )+};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_shrink_noop {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self, _origin: &Self) -> Vec<Self> {
                Vec::new()
            }
            fn shrink_origin(lo: &Self, _hi: &Self) -> Self {
                lo.clone()
            }
        }
    )+};
}

impl_shrink_noop!(f32, f64);

/// A shrinkable anchored at `origin`: every child re-anchors so the
/// binary search recurses until the step size reaches zero.
fn shrink_toward<T: Shrink>(value: T, origin: T) -> Shrinkable<T> {
    let v = value.clone();
    Shrinkable::with_children(value, move || {
        v.shrink_candidates(&origin)
            .into_iter()
            .map(|c| shrink_toward(c, origin.clone()))
            .collect()
    })
}

/// A generator of random values of one type, mirroring
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Draws one value together with its shrink tree. The default wraps
    /// [`Strategy::generate`] in a leaf (no shrinking) — combinators that
    /// know better override this.
    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        Shrinkable::leaf(self.generate(rng))
    }

    /// Transforms every generated value through `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            strategy: self,
            f: Rc::new(f),
        }
    }

    /// Erases the concrete strategy type, mirroring `boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate_shrinkable(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        (**self).generate_shrinkable(rng)
    }
}

/// The erased generator a [`BoxedStrategy`] wraps.
type BoxedGenerator<T> = Rc<dyn Fn(&mut StdRng) -> Shrinkable<T>>;

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(BoxedGenerator<T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng).value
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T> {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    strategy: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy + Clone, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            strategy: self.strategy.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O> Strategy for Map<S, O>
where
    S: Strategy,
    S::Value: Clone + 'static,
    O: 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<O> {
        self.strategy
            .generate_shrinkable(rng)
            .map(Rc::clone(&self.f))
    }
}

/// Picks uniformly among several strategies of one value type; the
/// expansion of [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`, which must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T> {
        // Shrinks stay inside the chosen arm (cross-arm shrinking would
        // change the shape of the counterexample, not simplify it).
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate_shrinkable(rng)
    }
}

impl<T: SampleUniform + Shrink> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T> {
        let v = self.generate(rng);
        let origin = T::shrink_origin(&self.start, &self.end);
        shrink_toward(v, origin)
    }
}

impl<T: SampleUniform + Shrink> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }

    fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T> {
        let v = self.generate(rng);
        // The half-open origin rule is still correct for the inclusive
        // domain: zero if `lo <= 0 <= hi`, else `lo`.
        let origin = T::shrink_origin(self.start(), self.end());
        shrink_toward(v, origin)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($combine:ident: $($s:ident/$part:ident/$idx:tt),+) => {
        /// Componentwise shrink of one tuple arity: each child shrinks
        /// exactly one component, earliest components first.
        fn $combine<$($s: Clone + 'static),+>(
            parts: ($(Shrinkable<$s>,)+),
        ) -> Shrinkable<($($s,)+)> {
            let value = ($(parts.$idx.value.clone(),)+);
            Shrinkable::with_children(value, move || {
                let mut out = Vec::new();
                $(
                    for child in parts.$idx.children() {
                        let mut next = parts.clone();
                        next.$idx = child;
                        out.push($combine(next));
                    }
                )+
                out
            })
        }

        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone + 'static),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn generate_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value> {
                $(let $part = self.$idx.generate_shrinkable(rng);)+
                $combine(($($part,)+))
            }
        }
    };
}

impl_strategy_for_tuple!(combine1: A / a / 0);
impl_strategy_for_tuple!(combine2: A / a / 0, B / b / 1);
impl_strategy_for_tuple!(combine3: A / a / 0, B / b / 1, C / c / 2);
impl_strategy_for_tuple!(combine4: A / a / 0, B / b / 1, C / c / 2, D / d / 3);
impl_strategy_for_tuple!(combine5: A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
impl_strategy_for_tuple!(combine6: A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5);
impl_strategy_for_tuple!(combine7: A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5, G / g / 6);
impl_strategy_for_tuple!(combine8: A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5, G / g / 6, H / h / 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = ((0i64..10), (5u32..6)).prop_map(|(a, b)| a + b as i64);
        let mut rng = case_rng(1, 1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = case_rng(2, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn integer_shrink_walks_a_binary_search_toward_zero() {
        // From 96 with origin 0 the candidates open with the origin and
        // then climb the bisection ladder back toward the value.
        let cands = 96i64.shrink_candidates(&0);
        assert_eq!(cands[0], 0);
        assert!(cands.contains(&48));
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "{cands:?}");
        // Negative values shrink toward zero from below.
        let neg = (-96i64).shrink_candidates(&0);
        assert_eq!(neg[0], 0);
        assert!(neg.contains(&-48));
        // At the origin there is nothing left.
        assert!(0i64.shrink_candidates(&0).is_empty());
    }

    #[test]
    fn range_origin_prefers_zero_when_in_domain() {
        assert_eq!(i64::shrink_origin(&-50, &50), 0);
        assert_eq!(i64::shrink_origin(&10, &50), 10);
        assert_eq!(u64::shrink_origin(&3, &9), 3);
    }

    #[test]
    fn shrink_tree_reaches_the_origin_of_a_range() {
        let strat = 10i64..1000;
        let mut rng = case_rng(8, 0);
        let mut node = strat.generate_shrinkable(&mut rng);
        // Greedily follow first children (most aggressive shrink): must
        // terminate at the range's low bound.
        while let Some(k) = node.children().into_iter().next() {
            node = k;
        }
        assert_eq!(node.value, 10);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let strat = (1i64..100, 1i64..100);
        let mut rng = case_rng(9, 3);
        let node = strat.generate_shrinkable(&mut rng);
        let (a, b) = node.value;
        let kids = node.children();
        assert!(!kids.is_empty(), "non-origin tuple must offer shrinks");
        for child in kids {
            let (ca, cb) = child.value;
            assert!(
                (ca == a) ^ (cb == b),
                "each child shrinks exactly one component: ({a},{b}) -> ({ca},{cb})"
            );
        }
    }

    #[test]
    fn map_shrinks_through_the_transform() {
        let strat = (0i64..1000).prop_map(|v| v * 2);
        let mut rng = case_rng(10, 0);
        let mut node = strat.generate_shrinkable(&mut rng);
        while let Some(k) = node.children().into_iter().next() {
            node = k;
        }
        assert_eq!(node.value, 0, "mapped shrink must bottom out at f(origin)");
    }
}
