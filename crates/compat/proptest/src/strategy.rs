//! The [`Strategy`] trait and its combinators: composable generators of
//! random test inputs, mirroring `proptest::strategy`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type, mirroring
/// `proptest::strategy::Strategy`.
///
/// Unlike the real crate there is no shrinking: a strategy is just a
/// function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value through `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Erases the concrete strategy type, mirroring `boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Picks uniformly among several strategies of one value type; the
/// expansion of [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`, which must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / 0);
impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = ((0i64..10), (5u32..6)).prop_map(|(a, b)| a + b as i64);
        let mut rng = case_rng(1, 1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = case_rng(2, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
