//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `proptest 1.x` surface the OREO property tests use — the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec()`]/[`collection::btree_set()`],
//! [`arbitrary::any`], and the [`proptest!`]/[`prop_assert!`] macros — is
//! reimplemented here behind the same paths.
//!
//! The semantics are deliberately simplified: each test runs
//! [`test_runner::ProptestConfig::cases`] random cases from a seed derived
//! deterministically from the test's name (so failures reproduce across
//! runs). Failing cases are **shrunk**: strategies return a lazy
//! [`strategy::Shrinkable`] tree (binary-search steps toward the domain
//! origin for integers, componentwise for tuples, length-then-element for
//! vectors) and the runner greedily walks it before re-running the minimal
//! failing input unprotected, so the reported panic comes from the
//! simplest known counterexample. Set the `PROPTEST_CASES` environment
//! variable to change the case count without touching code.
//!
//! Swapping the real `proptest` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property-test functions, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `fn name()` (keeping attributes such as `#[test]`) that evaluates the
/// body on `cases` freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
///
/// All argument strategies are bundled into one tuple strategy (so at most
/// eight `arg in strategy` bindings per test — the tuple arities the
/// [`strategy::Strategy`] impls cover). On a failing case the runner
/// greedily walks the tuple's shrink tree — taking the first child that
/// still fails, up to a bounded number of attempts — and then re-runs the
/// minimal failing input *outside* `catch_unwind` so the test reports the
/// shrunk counterexample's own panic message.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let base = $crate::test_runner::name_seed(stringify!($name));
                let __strategy = ($(($strat),)+);
                // Anchors the closure's input to the tuple strategy's value
                // type so inference inside the body is unaffected by the
                // shrink machinery.
                fn __anchor<S, F>(_: &S, f: F) -> F
                where
                    S: $crate::strategy::Strategy,
                    F: Fn(&S::Value),
                {
                    f
                }
                let __run = __anchor(&__strategy, |__vals| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                    $body
                });
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(base, case);
                    let mut __tree = $crate::strategy::Strategy::generate_shrinkable(
                        &__strategy,
                        &mut rng,
                    );
                    let __fails = |__vals: &_| {
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            || __run(__vals),
                        ))
                        .is_err()
                    };
                    if __fails(&__tree.value) {
                        let mut __attempts = 0usize;
                        'shrinking: loop {
                            for __child in __tree.children() {
                                __attempts += 1;
                                if __attempts > 400 {
                                    break 'shrinking;
                                }
                                if __fails(&__child.value) {
                                    __tree = __child;
                                    continue 'shrinking;
                                }
                            }
                            break;
                        }
                        eprintln!(
                            "proptest: {} failed on case {case}; re-running the \
                             shrunk minimal input ({__attempts} shrink attempts)",
                            stringify!($name),
                        );
                        __run(&__tree.value);
                        unreachable!(
                            "proptest: {} — shrunk input stopped failing on the \
                             final re-run (flaky non-determinism in the test body?)",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks uniformly among several strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod shrink_driver_tests {
    // The macro expansions refer to `$crate`, so no alias is needed; this
    // module exercises the failure path end to end.
    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(16))]
        // Deliberately failing property (no #[test] attribute — driven
        // manually below): fails for every v >= 10, so the minimal
        // counterexample the shrinker must land on is exactly 10.
        fn fails_from_ten_up(v in 0i64..1000) {
            crate::prop_assert!(v < 10, "minimal failing value {v}");
        }
    }

    #[test]
    fn driver_reports_the_minimal_counterexample() {
        let err = std::panic::catch_unwind(fails_from_ten_up)
            .expect_err("property fails for v >= 10 somewhere in 16 cases");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("minimal failing value 10"),
            "binary-search shrinking must land on exactly 10, got: {msg}"
        );
    }
}
