//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `proptest 1.x` surface the OREO property tests use — the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec()`]/[`collection::btree_set()`],
//! [`arbitrary::any`], and the [`proptest!`]/[`prop_assert!`] macros — is
//! reimplemented here behind the same paths.
//!
//! The semantics are deliberately simplified: each test runs
//! [`test_runner::ProptestConfig::cases`] random cases from a seed derived
//! deterministically from the test's name (so failures reproduce across
//! runs), and there is **no shrinking** — a failing case reports the
//! assertion message only. Set the `PROPTEST_CASES` environment variable to
//! change the case count without touching code.
//!
//! Swapping the real `proptest` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property-test functions, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `fn name()` (keeping attributes such as `#[test]`) that evaluates the
/// body on `cases` freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let base = $crate::test_runner::name_seed(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(base, case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks uniformly among several strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
