//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand 0.9` APIs the OREO codebase actually uses are
//! reimplemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::index::sample`,
//! `rand::random`). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, statistically solid for simulation and
//! test workloads, and explicitly **not** cryptographically secure.
//!
//! Swapping the real `rand` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

/// A source of random 64-bit words; the base trait every generator
/// implements.
pub trait RngCore {
    /// Returns the next pseudo-random `u64` and advances the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::random_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                // Width in the unsigned domain; wrapping arithmetic keeps
                // signed ranges like -50..50 correct.
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                // `lo + (hi - lo) * u` with u just below 1 can round up to
                // exactly `hi`; clamp to the largest value below it so the
                // half-open contract holds (real rand guarantees this too).
                let v = lo + (hi - lo) * <$t>::from_rng(rng);
                if v < hi {
                    v
                } else {
                    hi.next_down()
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty inclusive range");
                (lo + (hi - lo) * <$t>::from_rng(rng)).min(hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 64-bit range) via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly-distributed value of type `T`
    /// (`[0, 1)` for floats, the full domain for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns a value uniformly distributed over `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Returns a single random value from a thread-local generator, mirroring
/// the free function `rand::random`.
pub fn random<T: Standard>() -> T {
    use std::cell::RefCell;
    thread_local! {
        static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new({
            use std::time::{SystemTime, UNIX_EPOCH};
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x5EED);
            <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
        });
    }
    THREAD_RNG.with(|r| T::from_rng(&mut *r.borrow_mut()))
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    /// Index-sampling helpers, mirroring `rand::seq::index`.
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices (thin wrapper over `Vec<usize>`).
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set, returning the indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let idx = super::seq::index::sample(&mut rng, 100, 40).into_vec();
        assert_eq!(idx.len(), 40);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }
}
