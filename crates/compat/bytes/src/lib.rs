//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `bytes 1.x` surface the OREO storage codec actually uses —
//! [`Buf`], [`BufMut`], [`Bytes`], and [`BytesMut`] with the little-endian
//! integer accessors — is reimplemented here behind the same paths. The
//! implementation is a plain `Vec<u8>` with a read cursor; it trades the
//! real crate's zero-copy slicing for simplicity, which is fine for the
//! partition-sized buffers this workspace moves around.
//!
//! Swapping the real `bytes` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

use std::sync::Arc;

/// Read access to a buffer of bytes, mirroring `bytes::Buf`.
///
/// Getter methods consume from the front of the buffer and panic when
/// fewer than the required bytes remain, exactly like the real crate.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes from the front of the buffer into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable buffer of bytes, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// An immutable, cheaply clonable byte buffer with a read cursor,
/// mirroring `bytes::Bytes`.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            pos: 0,
        }
    }

    /// Builds a buffer owning a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unread region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes copied into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// A copy of the sub-range `range` of the unread bytes, mirroring
    /// `Bytes::slice` (which is zero-copy in the real crate).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes::copy_from_slice(&self.data[self.pos + lo..self.pos + hi])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice (alias kept for `bytes` API parity).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(0.25);
        b.put_slice(b"abc");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 0.25);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        s.advance(1);
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.chunk(), &[3, 4]);
    }

    #[test]
    fn bytes_cursor_and_views_agree() {
        let mut b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.to_vec(), vec![8, 7]);
        assert_eq!(AsRef::<[u8]>::as_ref(&b), &[8, 7]);
        assert_eq!(b.len(), 2);
    }
}
