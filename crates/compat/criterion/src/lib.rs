//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `criterion 0.5` surface the OREO microbenchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — is reimplemented here
//! behind the same paths. Instead of criterion's bootstrapped statistics it
//! runs a calibrated wall-clock loop (warm-up, then `sample_size` samples)
//! and prints min/median/mean per-iteration times, which is enough to
//! compare hot-path changes between commits.
//!
//! Swapping the real `criterion` crate back in requires no source changes
//! anywhere else in the workspace: delete this stub from the workspace
//! dependency table and restore the registry dependency.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; accepted for API parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: many iterations per setup batch.
    SmallInput,
    /// Large routine inputs: few iterations per setup batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing loop handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly with no per-call setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample lasts roughly a millisecond.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        self.iters_per_sample = per_sample;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

/// Criterion CLI flags that take a value as the *next* argument; the value
/// must not be mistaken for a benchmark name filter.
const VALUE_FLAGS: &[&str] = &[
    "--sample-size",
    "--measurement-time",
    "--warm-up-time",
    "--profile-time",
    "--save-baseline",
    "--baseline",
    "--load-baseline",
    "--output-format",
    "--color",
    "--significance-level",
    "--noise-threshold",
    "--confidence-level",
    "--nresamples",
    // oreo-bench extension: JSON report output path (see
    // `oreo_bench::common::json_path_arg`).
    "--json",
];

impl Default for Criterion {
    fn default() -> Self {
        // The real crate filters benchmarks by any free argument; cargo also
        // passes flags like `--bench`, which must be ignored — as must the
        // values of flags like `--sample-size 100`.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                args.next();
            } else if !a.starts_with('-') {
                filter = Some(a);
                break;
            }
        }
        Criterion {
            sample_size: 60,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            iters_per_sample: 1,
        };
        f(&mut b);
        let iters = b.iters_per_sample;
        samples.sort_unstable();
        let min = samples.first().copied().unwrap_or_default();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        let mean = samples
            .iter()
            .sum::<Duration>()
            .checked_div(samples.len().max(1) as u32)
            .unwrap_or_default();
        println!(
            "{id:<40} min {:>12} med {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples.len(),
            iters,
        );
        self
    }

    /// Marks the end of a group (no-op; reports are printed eagerly).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Benchmark group assembled by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark `main` entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 5,
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 5, "routine should run once per sample at minimum");
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut c = Criterion {
            sample_size: 4,
            filter: None,
        };
        let mut setups = 0u64;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("only_this".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
