//! The serving engine: a worker pool executing snapshot-isolated scans, a
//! mutex-serialized OREO bookkeeping core, and a dedicated background
//! reorganizer thread that never blocks readers.
//!
//! Data path per query (Fig. 1, made concurrent):
//!
//! 1. a worker pins the current [`TableSnapshot`] and scans it — the only
//!    expensive phase, and it runs with **no lock held**;
//! 2. the worker feeds the query to [`oreo_core::Oreo::observe`] (or its
//!    decide/settle halves in measured-Δ mode) under the core mutex, so
//!    D-UMTS and layout-manager bookkeeping stay *identical* to the
//!    sequential simulator;
//! 3. a switch decision is handed to the reorganizer thread, which
//!    materializes the target layout aside and atomically publishes it —
//!    queries keep running on the old snapshot for the whole window, which
//!    is exactly the paper's reorganization delay Δ, now measured.
//!
//! # Multi-tenant serving
//!
//! The engine serves N tenants (tables) from one process: a tenant map of
//! [`SnapshotCell`]s and per-tenant write-path state, one shared worker
//! pool consuming a unified query stream tagged by tenant, one shared
//! [`BufferPool`] whose page keys carry the tenant's table id, and one
//! [`oreo_core::MultiTableOreo`] policy brain behind the core mutex so
//! each tenant's D-UMTS bookkeeping stays byte-identical to an independent
//! single-tenant run. The single reorganizer becomes a *scheduler*: switch
//! decisions queue per tenant (FIFO within a tenant — the order
//! `Oreo::pending` expects) and are admitted under an optional global α
//! budget ([`ReorgBudget`]): total reorganization spend may not outrun a
//! configured fraction of the fleet's cumulative query cost. A deferred
//! tenant keeps accruing D-UMTS pressure — its counters and ledger are
//! untouched by deferral — and a hard deferral bound force-admits its
//! switch so no tenant is starved. Single-tenant construction
//! ([`Engine::start`]) is the N = 1 special case and behaves exactly as
//! before.

use crate::ingest::{build_fold_snapshot, FoldBuild, IngestState};
use crate::metrics::{as_micros_u64, LatencyStats};
use crate::queue::ShardedQueue;
use crate::reorg::{materialize, ReorgRequest, ReorgWindow};
use oreo_core::{AlphaEstimator, CostLedger, MultiTableOreo, OreoConfig};
use oreo_layout::{LayoutGenerator, SharedSpec};
use oreo_obs::{
    Counter, Event, EventKind, EventSink, Gauge, Histogram, Journal, NullSink, Registry,
    ReorgPhaseKind, SnapshotWriter,
};
use oreo_query::Query;
use oreo_storage::{
    ApplyReceipt, BufferPool, BufferPoolConfig, DeltaBuffer, IngestOp, LayoutId, MergePolicy,
    PoolStats, SnapshotCell, SnapshotScan, Table, TableSnapshot, TieredStore, Wal,
};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When does the *logical* (cost-accounted) layout switch land?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DelaySemantics {
    /// The sequential simulator's semantics: Δ = `OreoConfig::reorg_delay`
    /// queries after the decision, regardless of the physical build. Gives
    /// exact ledger parity with `oreo-sim` on the same stream.
    Configured,
    /// Δ is measured: the switch lands when the background reorganization
    /// publishes its snapshot. The engine's default.
    #[default]
    Measured,
}

/// Where snapshots live between publishes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Snapshots are memory-only: the reorganizer materializes and
    /// publishes without touching disk. Fastest; nothing survives a
    /// restart.
    #[default]
    Memory,
    /// Snapshots are backed by an [`oreo_storage::TieredStore`] under
    /// `root`: every publish persists a `gen-N/` directory (write + fsync +
    /// atomic rename) *before* the snapshot-pointer swap, readers pin the
    /// old generation until released, and the engine reports the rewrite's
    /// bytes + wall-clock as an empirical α alongside the measured Δ.
    Tiered {
        /// Root directory for the generation subdirectories.
        root: PathBuf,
    },
}

impl ServeMode {
    /// Short label for reports (`"memory"` / `"tiered"`).
    pub fn label(&self) -> &'static str {
        match self {
            ServeMode::Memory => "memory",
            ServeMode::Tiered { .. } => "tiered",
        }
    }
}

/// Observability configuration: the event journal and the metrics
/// exporters. The metrics *registry* itself is always on — workers
/// publish counters and histograms unconditionally (a handful of relaxed
/// atomics per query, bounded memory) — this struct controls what is
/// *recorded* (journal) and *exported* (snapshot files).
#[derive(Clone, Debug, Default)]
pub struct ObsConfig {
    /// Per-shard event-journal capacity; `0` (the default) disables the
    /// journal entirely — instrumented code then holds a null sink and
    /// skips even constructing events. Size it at several events per
    /// expected query for replay-parity runs (drops void the replay).
    pub journal_capacity: usize,
    /// Append periodic JSONL metric snapshots to this file (one line per
    /// snapshot; see `oreo_obs::SnapshotWriter`). `None` = no exporter
    /// thread.
    pub metrics_json: Option<PathBuf>,
    /// Interval between periodic snapshots (`None` = 250 ms). The
    /// exporter also writes one snapshot immediately at start and one at
    /// shutdown, so any run emits ≥ 2.
    pub metrics_interval: Option<Duration>,
    /// Write a Prometheus text-exposition dump of the final registry
    /// state to this file at shutdown.
    pub metrics_prom: Option<PathBuf>,
    /// Cell label stamped on every snapshot line (distinguishes serving
    /// cells appending to a shared file).
    pub label: String,
}

impl ObsConfig {
    /// Snapshot cadence with the default applied.
    pub fn interval(&self) -> Duration {
        self.metrics_interval.unwrap_or(Duration::from_millis(250))
    }
}

/// The global α budget the reorganization scheduler admits switches
/// under: across all tenants, cumulative reorganization spend (each
/// admitted switch bills its tenant's α into the global budget ledger)
/// may not exceed `fraction` of the fleet's cumulative query cost plus a
/// `burst` allowance. A switch that fails admission stays queued — its
/// tenant's D-UMTS counters and ledger keep accruing exactly as if it had
/// run, so no guarantee is lost — and is force-admitted once it has waited
/// `max_defer_queries` bookkeeping steps, which bounds every tenant's
/// deferral window (starvation freedom).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorgBudget {
    /// Admissible reorg spend as a fraction of cumulative query cost.
    pub fraction: f64,
    /// Flat allowance on top of the fraction, in cost units — lets the
    /// first switches through before any query cost has accumulated.
    pub burst: f64,
    /// Hard deferral bound: a queued switch is admitted unconditionally
    /// once this many queries completed bookkeeping since its decision.
    pub max_defer_queries: u64,
}

impl Default for ReorgBudget {
    fn default() -> Self {
        Self {
            fraction: 0.5,
            burst: 1.0,
            max_defer_queries: 10_000,
        }
    }
}

/// One tenant of a multi-tenant engine: its table, initial layout,
/// candidate generator, and OREO configuration (see
/// [`Engine::start_tenants`]).
pub struct TenantSpec {
    /// Tenant name — the key queries and reports are routed by. Tiered
    /// serving stores the tenant under `root/tenant-<name>/`, so names
    /// should be filesystem-safe.
    pub name: String,
    /// The tenant's table.
    pub table: Arc<Table>,
    /// Initial layout specification.
    pub initial_spec: SharedSpec,
    /// Candidate layout generator.
    pub generator: Arc<dyn LayoutGenerator>,
    /// Per-tenant OREO (D-UMTS) configuration.
    pub oreo: OreoConfig,
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Scan worker threads.
    pub workers: usize,
    /// Work-queue shards (0 = one per worker).
    pub shards: usize,
    /// Max queries a worker claims per queue pop (bookkeeping is one core
    /// lock per batch).
    pub batch: usize,
    /// Run the background reorganizer thread. When `false`, switch
    /// decisions still enter the ledger but the served snapshot never
    /// changes — the "no concurrent reorganization" baseline. Without a
    /// reorganizer nothing can complete a measured-Δ switch, so
    /// [`Engine::start`] forces [`DelaySemantics::Configured`] in this mode
    /// (otherwise `Oreo`'s pending queue — and the states it protects from
    /// pruning — would grow for the engine's lifetime).
    pub background_reorg: bool,
    /// Logical switch semantics.
    pub delay: DelaySemantics,
    /// Snapshot persistence: memory-only or disk-tiered.
    pub mode: ServeMode,
    /// Buffer-pool capacity for [`ServeMode::Tiered`] scans, in bytes.
    /// Tiered scans read partition pages through a pool of this size
    /// (cold misses hit the disk, warm hits are served from memory);
    /// ignored in [`ServeMode::Memory`].
    pub buffer_pool_bytes: u64,
    /// How [`Engine::ingest`] batches merge into delta runs. The default,
    /// `KBinomial { k: 2 }`, keeps at most 2 runs with amortized write
    /// amplification O(2·√m) over m batches (arXiv:2011.02615);
    /// [`MergePolicy::NaiveFullMerge`] is the one-run baseline the
    /// `dynamization` bench compares against.
    pub merge_policy: MergePolicy,
    /// Observability: event journal + metric exporters.
    pub obs: ObsConfig,
    /// Global α budget for the reorganization scheduler. `None` (the
    /// default) admits every switch immediately in decision order —
    /// exactly the single-reorganizer behavior, and what ledger-parity
    /// runs use.
    pub budget: Option<ReorgBudget>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            shards: 0,
            batch: 16,
            background_reorg: true,
            delay: DelaySemantics::Measured,
            mode: ServeMode::Memory,
            buffer_pool_bytes: oreo_storage::bufpool::DEFAULT_CAPACITY_BYTES,
            merge_policy: MergePolicy::KBinomial { k: 2 },
            obs: ObsConfig::default(),
            budget: None,
        }
    }
}

impl EngineConfig {
    /// Configuration whose bookkeeping replays the sequential simulator
    /// exactly: one worker, one FIFO shard, configured Δ.
    pub fn sequential_parity() -> Self {
        Self {
            workers: 1,
            shards: 1,
            delay: DelaySemantics::Configured,
            ..Self::default()
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables the background reorganizer.
    pub fn with_background_reorg(mut self, on: bool) -> Self {
        self.background_reorg = on;
        self
    }

    /// Sets the serve mode (memory-only or disk-tiered).
    pub fn with_mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for [`ServeMode::Tiered`] rooted at `root`.
    pub fn tiered(self, root: impl Into<PathBuf>) -> Self {
        self.with_mode(ServeMode::Tiered { root: root.into() })
    }

    /// Sets the tiered-scan buffer-pool capacity in bytes.
    pub fn with_buffer_pool_bytes(mut self, bytes: u64) -> Self {
        self.buffer_pool_bytes = bytes;
        self
    }

    /// Sets the delta-run merge policy for [`Engine::ingest`].
    pub fn with_merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Enables the event journal with the given per-shard capacity.
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.obs.journal_capacity = capacity;
        self
    }

    /// Sets the full observability configuration.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the global α budget for the reorganization scheduler.
    pub fn with_budget(mut self, budget: ReorgBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            self.workers.max(1)
        } else {
            self.shards
        }
    }
}

/// Everything the engine observed for one query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Stream position assigned by the bookkeeping core (observe order).
    pub seq: u64,
    /// The snapshot scan (matching global row ids, rows read, pruning).
    pub scan: SnapshotScan,
    /// Layout of the snapshot the scan ran against.
    pub served_layout: LayoutId,
    /// Epoch of the snapshot the scan ran against.
    pub served_epoch: u64,
    /// Switch decided while observing this query, if any.
    pub decision: Option<LayoutId>,
    /// Service cost charged to the ledger for this query.
    pub service_cost: f64,
    /// Service latency: worker pickup → completion (scan + bookkeeping,
    /// including core-mutex wait; excludes time queued behind other
    /// queries, which a closed-loop harness would otherwise dominate with).
    pub latency: Duration,
}

struct Slot {
    value: Mutex<Option<QueryOutcome>>,
    ready: Condvar,
}

/// Handle to one tracked query's outcome (see [`Engine::submit_tracked`]).
pub struct ResultHandle {
    slot: Arc<Slot>,
}

impl ResultHandle {
    /// Block until the query completes.
    pub fn wait(self) -> QueryOutcome {
        let mut v = self.slot.value.lock().expect("result slot poisoned");
        loop {
            if let Some(out) = v.take() {
                return out;
            }
            v = self.slot.ready.wait(v).expect("result slot poisoned");
        }
    }
}

struct Job {
    query: Query,
    slot: Option<Arc<Slot>>,
    /// Submission order (assigned at enqueue) — the span id tying this
    /// query's journal events together.
    submit_id: u64,
    /// Index into the engine's tenant map.
    tenant: u32,
}

/// Pre-resolved registry handles for everything the serving hot path
/// publishes — resolved once at startup so workers touch only atomics.
/// Scan times are accumulated in nanoseconds (counters are integers; a
/// sub-µs scan would otherwise vanish).
struct LiveMetrics {
    queries_submitted: Arc<Counter>,
    queries_completed: Arc<Counter>,
    rows_scanned: Arc<Counter>,
    rows_matched: Arc<Counter>,
    bytes_scanned: Arc<Counter>,
    scan_ns: Arc<Counter>,
    cold_scans: Arc<Counter>,
    cold_scan_bytes: Arc<Counter>,
    cold_scan_ns: Arc<Counter>,
    warm_scan_bytes: Arc<Counter>,
    warm_scan_ns: Arc<Counter>,
    io_cold_bytes: Arc<Counter>,
    io_cached_bytes: Arc<Counter>,
    scan_io_errors: Arc<Counter>,
    chunks_evaluated: Arc<Counter>,
    rows_short_circuited: Arc<Counter>,
    latency_us: Arc<Histogram>,
    scan_us: Arc<Histogram>,
    switches: Arc<Counter>,
    snapshots_published: Arc<Counter>,
    reorg_windows: Arc<Counter>,
    reorg_build_ns: Arc<Counter>,
    reorg_bytes_written: Arc<Counter>,
    reorg_delta_queries: Arc<Counter>,
    persisted: Arc<Counter>,
    persist_ns: Arc<Counter>,
    tiered_errors: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    ingest_rows: Arc<Counter>,
    ingest_deletes: Arc<Counter>,
    ingest_rows_written: Arc<Counter>,
    delta_bytes_scanned: Arc<Counter>,
    folds: Arc<Counter>,
    folded_rows: Arc<Counter>,
    delta_rows: Arc<Gauge>,
    wal_bytes: Arc<Gauge>,
    ledger_query_cost: Arc<Gauge>,
    ledger_reorg_cost: Arc<Gauge>,
    ledger_total: Arc<Gauge>,
    num_states: Arc<Gauge>,
    max_states_seen: Arc<Gauge>,
    qps: Arc<Gauge>,
    table_bytes: Arc<Gauge>,
    alpha_hat: Arc<Gauge>,
    alpha_cold: Arc<Gauge>,
    alpha_warm: Arc<Gauge>,
    pool_hit_rate: Arc<Gauge>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_evictions: Arc<Gauge>,
    pool_pages_resident: Arc<Gauge>,
}

impl LiveMetrics {
    /// The aggregate (unprefixed) series — always registered, so the
    /// fleet-wide schema is identical whether the engine serves 1 tenant
    /// or N.
    fn new(r: &Registry) -> Self {
        Self::with_prefix(r, "")
    }

    /// Resolve the same series under `prefix` (e.g. `tenant.0.`) — the
    /// per-tenant namespace of a multi-tenant engine. Workers publish into
    /// both the aggregate and the tenant's prefixed handles.
    fn with_prefix(r: &Registry, prefix: &str) -> Self {
        let c = |name: &str| r.counter(&format!("{prefix}{name}"));
        let g = |name: &str| r.gauge(&format!("{prefix}{name}"));
        let h = |name: &str| r.histogram(&format!("{prefix}{name}"));
        Self {
            queries_submitted: c("engine.queries_submitted"),
            queries_completed: c("engine.queries_completed"),
            rows_scanned: c("engine.rows_scanned"),
            rows_matched: c("engine.rows_matched"),
            bytes_scanned: c("engine.bytes_scanned"),
            scan_ns: c("engine.scan_ns"),
            cold_scans: c("engine.cold_scans"),
            cold_scan_bytes: c("engine.cold_scan_bytes"),
            cold_scan_ns: c("engine.cold_scan_ns"),
            warm_scan_bytes: c("engine.warm_scan_bytes"),
            warm_scan_ns: c("engine.warm_scan_ns"),
            io_cold_bytes: c("engine.io_cold_bytes"),
            io_cached_bytes: c("engine.io_cached_bytes"),
            scan_io_errors: c("engine.scan_io_errors"),
            chunks_evaluated: c("engine.chunks_evaluated"),
            rows_short_circuited: c("engine.rows_short_circuited"),
            latency_us: h("engine.latency_us"),
            scan_us: h("engine.scan_us"),
            switches: c("reorg.switches"),
            snapshots_published: c("reorg.snapshots_published"),
            reorg_windows: c("reorg.windows"),
            reorg_build_ns: c("reorg.build_ns"),
            reorg_bytes_written: c("reorg.bytes_written"),
            reorg_delta_queries: c("reorg.delta_queries_total"),
            persisted: c("reorg.persisted"),
            persist_ns: c("reorg.persist_ns"),
            tiered_errors: c("reorg.tiered_errors"),
            ingest_batches: c("ingest.batches"),
            ingest_rows: c("ingest.rows_appended"),
            ingest_deletes: c("ingest.rows_deleted"),
            ingest_rows_written: c("ingest.rows_written"),
            delta_bytes_scanned: c("engine.delta_bytes_scanned"),
            folds: c("reorg.folds"),
            folded_rows: c("reorg.folded_rows"),
            delta_rows: g("ingest.delta_rows"),
            wal_bytes: g("ingest.wal_bytes"),
            ledger_query_cost: g("ledger.query_cost"),
            ledger_reorg_cost: g("ledger.reorg_cost"),
            ledger_total: g("ledger.total"),
            num_states: g("core.num_states"),
            max_states_seen: g("core.max_states_seen"),
            qps: g("engine.qps"),
            table_bytes: g("alpha.table_bytes"),
            alpha_hat: g("alpha.hat"),
            alpha_cold: g("alpha.cold"),
            alpha_warm: g("alpha.warm"),
            pool_hit_rate: g("pool.hit_rate"),
            pool_hits: g("pool.hits"),
            pool_misses: g("pool.misses"),
            pool_evictions: g("pool.evictions"),
            pool_pages_resident: g("pool.pages_resident"),
        }
    }
}

/// One tenant's serving state: its write path, snapshot cell, disk tier,
/// and the counters its per-tenant report is assembled from. The policy
/// state lives in the shared [`MultiTableOreo`] behind the core mutex,
/// keyed by `name`; the tenant's *index* is the table id stamped on pool
/// page keys and tiered generations.
struct Tenant {
    /// Tenant name — the `MultiTableOreo` key and the report label.
    name: String,
    /// The tenant's write path: delta buffer, WAL, and base identity. Lock
    /// order is strictly ingest → core; every snapshot publish (ingest
    /// overlay updates *and* reorganizer folds) happens under this lock so
    /// overlay attachments can never be lost to a racing publish.
    ingest: Mutex<IngestState>,
    /// The tenant's served snapshot.
    cell: SnapshotCell,
    /// The tenant's disk tier, in [`ServeMode::Tiered`] runs.
    tiered: Option<TieredStore>,
    /// Queries whose bookkeeping completed for this tenant.
    observed: AtomicU64,
    /// Queries fully served for this tenant.
    completed: AtomicU64,
    /// Snapshots the scheduler published for this tenant.
    snapshots_published: AtomicU64,
    /// This tenant's switches the budget scheduler deferred at least once.
    deferrals: AtomicU64,
    /// Largest deferral window (bookkeeping steps, decision → admission)
    /// any of this tenant's switches waited.
    max_deferred_queries: AtomicU64,
    /// Page bytes this tenant's pooled scans read from disk / served from
    /// the shared pool.
    io_cold_bytes: AtomicU64,
    io_cached_bytes: AtomicU64,
    /// The tenant's namespaced metric handles (`tenant.<index>.<metric>`)
    /// — only in multi-tenant runs, so a single-tenant registry stays
    /// byte-identical to the pre-tenancy schema.
    metrics: Option<LiveMetrics>,
}

/// The aggregate metrics plus `tenant`'s namespaced copy, when present.
/// Hot paths publish through this so the per-tenant series stay consistent
/// with the fleet-wide ones by construction.
fn metric_views<'a>(
    shared: &'a Shared,
    tenant: &'a Tenant,
) -> impl Iterator<Item = &'a LiveMetrics> {
    std::iter::once(&shared.metrics).chain(tenant.metrics.as_ref())
}

struct Shared {
    /// The policy brain: one OREO instance per tenant behind one lock, so
    /// each tenant's D-UMTS bookkeeping stays byte-identical to an
    /// independent single-tenant run.
    core: Mutex<MultiTableOreo>,
    /// The tenant map, indexed by the `tenant` tag jobs carry.
    tenants: Vec<Tenant>,
    /// Page cache shared by every tenant's tiered scans (page keys carry
    /// the owning tenant's table id), in [`ServeMode::Tiered`] runs.
    pool: Option<Arc<BufferPool>>,
    queue: ShardedQueue<Job>,
    config: EngineConfig,
    /// Queries whose bookkeeping completed across all tenants (drives
    /// measured-Δ windows and the scheduler's force-admit bound).
    observed: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    snapshots_published: AtomicU64,
    /// Cumulative service cost across all tenants, in micro-cost-units —
    /// the budget scheduler's admission denominator.
    query_cost_micros: AtomicU64,
    drain_lock: Mutex<()>,
    drain_cv: Condvar,
    /// The live metrics registry (always on).
    registry: Arc<Registry>,
    /// Pre-resolved handles into `registry` for the hot paths.
    metrics: LiveMetrics,
    /// The bounded event journal, when configured.
    journal: Option<Arc<Journal>>,
    /// `journal` as a sink (or [`NullSink`]) for span events.
    sink: Arc<dyn EventSink>,
    /// Engine birth — the exporter's qps/elapsed origin.
    started: Instant,
}

#[derive(Default)]
struct WorkerStats {
    rows_scanned: u64,
    rows_matched: u64,
    bytes_scanned: u64,
    scan_seconds: f64,
    /// Scans whose bytes came mostly from disk (pool misses), and their
    /// byte/second volumes — the cold α̂ calibration bucket.
    cold_scans: u64,
    cold_scan_bytes: u64,
    cold_scan_seconds: f64,
    /// Memory-resident or pool-hit scans — the warm bucket.
    warm_scan_bytes: u64,
    warm_scan_seconds: f64,
    /// Page bytes read from disk / served from the pool across scans.
    io_cold_bytes: u64,
    io_cached_bytes: u64,
    /// Pooled scans that failed (I/O or corruption) and fell back to the
    /// in-memory snapshot scan.
    scan_io_errors: u64,
    /// Vectorized-kernel work: 1024-row chunks evaluated and rows the
    /// adaptive AND order skipped later kernels for.
    chunks_evaluated: u64,
    rows_short_circuited: u64,
    /// Bytes scanned in delta runs (a subset of `bytes_scanned`).
    delta_bytes_scanned: u64,
}

/// One tenant's slice of a run, returned inside [`EngineStats::tenants`].
/// The ledger is the tenant's own OREO instance's — byte-identical to an
/// independent single-tenant run over the same substream.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Tenant name (the routing key).
    pub name: String,
    /// Queries fully served for this tenant.
    pub queries: u64,
    /// Per-query service latency summary for this tenant. In a
    /// single-tenant run this is the aggregate histogram.
    pub latency: LatencyStats,
    /// The tenant's own D-UMTS cost ledger.
    pub ledger: CostLedger,
    /// Switch decisions this tenant's instance made.
    pub switches: u64,
    /// Snapshots the scheduler published for this tenant.
    pub snapshots_published: u64,
    /// Switches of this tenant the budget scheduler deferred at least
    /// once before admitting.
    pub reorg_deferrals: u64,
    /// Largest deferral window (bookkeeping steps, decision → admission)
    /// any of this tenant's switches waited.
    pub max_deferred_queries: u64,
    /// Page bytes this tenant's pooled scans read from disk.
    pub io_cold_bytes: u64,
    /// Page bytes this tenant's pooled scans served from the shared pool.
    pub io_cached_bytes: u64,
    /// Physical layout when the engine stopped.
    pub final_physical: LayoutId,
    /// Logical (D-UMTS) layout when the engine stopped.
    pub final_logical: LayoutId,
}

impl TenantStats {
    /// The tenant's share of the shared pool's hit rate: cached page bytes
    /// over all page bytes its scans requested (0.0 without pooled I/O).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.io_cold_bytes + self.io_cached_bytes;
        if total == 0 {
            0.0
        } else {
            self.io_cached_bytes as f64 / total as f64
        }
    }
}

/// Aggregate statistics returned by [`Engine::shutdown`].
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Worker threads the engine ran with.
    pub workers: usize,
    /// Queries fully served.
    pub queries: u64,
    /// Wall-clock from engine start to shutdown.
    pub elapsed: Duration,
    /// Queries per second over `elapsed`.
    pub qps: f64,
    /// Per-query service latency summary (worker pickup → completion).
    pub latency: LatencyStats,
    /// The bookkeeping core's cost ledger (identical semantics to the
    /// sequential simulator).
    pub ledger: CostLedger,
    /// Switch decisions made.
    pub switches: u64,
    /// Snapshots the background reorganizer published.
    pub snapshots_published: u64,
    /// Measured reorganization windows, in decision order.
    pub windows: Vec<ReorgWindow>,
    /// Disk-tier publish failures the reorganizer survived (the affected
    /// switches degraded to memory-only publishes and their windows carry
    /// `bytes_written == 0`). Always empty in [`ServeMode::Memory`].
    pub tiered_errors: Vec<String>,
    /// Per-tenant breakdowns, in tenant-index order (exactly one entry
    /// for a single-tenant engine).
    pub tenants: Vec<TenantStats>,
    /// Cumulative α the scheduler billed into the global budget ledger —
    /// one charge per admitted switch (0.0 without a reorganizer).
    pub reorg_budget_spent: f64,
    /// Rows read across all scans (after pruning).
    pub rows_scanned: u64,
    /// Rows matched across all scans.
    pub rows_matched: u64,
    /// Bytes read across all scans: in-memory partition bytes in
    /// [`ServeMode::Memory`], page bytes actually fetched through the
    /// buffer pool in [`ServeMode::Tiered`].
    pub bytes_scanned: u64,
    /// Wall-clock seconds spent inside snapshot scans, summed across
    /// workers.
    pub scan_seconds: f64,
    /// Cold-classified scans (bytes mostly from disk), with their byte and
    /// wall-clock volumes — the disk-throughput calibration for α̂.
    pub cold_scans: u64,
    /// Bytes of cold-classified scans.
    pub cold_scan_bytes: u64,
    /// Wall-clock seconds of cold-classified scans.
    pub cold_scan_seconds: f64,
    /// Bytes of warm-classified scans (memory-resident or pool-served).
    pub warm_scan_bytes: u64,
    /// Wall-clock seconds of warm-classified scans.
    pub warm_scan_seconds: f64,
    /// Page bytes read from disk across all pooled scans.
    pub io_cold_bytes: u64,
    /// Page bytes served from the buffer pool across all pooled scans.
    pub io_cached_bytes: u64,
    /// Buffer-pool counters at shutdown (`None` in [`ServeMode::Memory`]).
    pub pool: Option<PoolStats>,
    /// Pooled scans that failed and fell back to the in-memory path.
    pub scan_io_errors: u64,
    /// 1024-row chunks the vectorized scan kernels evaluated across all
    /// scans.
    pub chunks_evaluated: u64,
    /// Rows for which the adaptive AND order skipped at least one later
    /// kernel (already filtered out by a cheaper atom).
    pub rows_short_circuited: u64,
    /// Bytes scanned in delta runs across all scans (subset of
    /// [`Self::bytes_scanned`]; 0 when nothing was ingested).
    pub delta_bytes_scanned: u64,
    /// Ingest batches accepted by [`Engine::ingest`].
    pub ingest_batches: u64,
    /// Rows appended (including the re-append half of updates).
    pub rows_appended: u64,
    /// Rows tombstoned (deletes + the tombstone half of updates).
    pub rows_deleted: u64,
    /// Rows written building and merging delta runs — the
    /// write-amplification numerator over [`Self::rows_appended`].
    pub ingest_rows_written: u64,
    /// Delta rows still unfolded at shutdown.
    pub delta_rows: u64,
    /// Tombstones still unfolded at shutdown.
    pub tombstones: u64,
    /// WAL size at shutdown (0 in memory serving or after degradation).
    pub wal_bytes: u64,
    /// Bytes a full (unpruned) scan of the final snapshot reads — the α
    /// denominator's table size.
    pub table_bytes: u64,
    /// The serve mode the engine ran in.
    pub mode: ServeMode,
    /// Physical layout when the engine stopped.
    pub final_physical: LayoutId,
    /// Logical (D-UMTS) layout when the engine stopped.
    pub final_logical: LayoutId,
    /// Live state-space size at shutdown.
    pub num_states: usize,
    /// |S_max| of the competitive bound.
    pub max_states_seen: usize,
    /// The drained event journal, seq-ordered (empty unless
    /// [`ObsConfig::journal_capacity`] was set). For a sequential FIFO
    /// run, `CostLedger::replay(&events)` reproduces [`Self::ledger`]
    /// bit-for-bit.
    pub events: Vec<Event>,
    /// Events the journal overwrote because a ring filled. Replay parity
    /// requires 0.
    pub events_dropped: u64,
}

impl EngineStats {
    /// Mean measured Δ in queries (`None` without completed windows).
    pub fn mean_delta_queries(&self) -> Option<f64> {
        if self.windows.is_empty() {
            return None;
        }
        Some(
            self.windows
                .iter()
                .map(|w| w.queries_during as f64)
                .sum::<f64>()
                / self.windows.len() as f64,
        )
    }

    /// Mean measured Δ in seconds (`None` without completed windows).
    pub fn mean_delta_seconds(&self) -> Option<f64> {
        if self.windows.is_empty() {
            return None;
        }
        Some(
            self.windows
                .iter()
                .map(|w| w.wall.as_secs_f64())
                .sum::<f64>()
                / self.windows.len() as f64,
        )
    }

    /// Total bytes written by aside rewrites (0 in memory-only serving).
    pub fn reorg_bytes_written(&self) -> u64 {
        self.windows.iter().map(|w| w.bytes_written).sum()
    }

    /// Folds completed (reorganizations that merged deltas into the base).
    pub fn folds(&self) -> u64 {
        self.windows.iter().filter(|w| w.folded_rows > 0).count() as u64
    }

    /// Delta rows folded into the base across all reorganizations.
    pub fn folded_rows(&self) -> u64 {
        self.windows.iter().map(|w| w.folded_rows).sum()
    }

    /// Measured write amplification of the ingest path: delta-run rows
    /// written per row appended. `None` before any append. Folds are
    /// *excluded* — the fold rewrite is the layout switch the α charge
    /// already bills; this ratio isolates the merge policy the
    /// `dynamization` bench bounds.
    pub fn write_amplification(&self) -> Option<f64> {
        if self.rows_appended == 0 {
            return None;
        }
        Some(self.ingest_rows_written as f64 / self.rows_appended as f64)
    }

    /// The run's measurements assembled into the cost-model accumulator:
    /// every scan calibrates the substrate's read throughput — cold
    /// (disk-dominated) and warm (memory/pool-served) scans feed separate
    /// buckets, so α̂ extrapolates a full *disk* scan from the cold
    /// throughput instead of from memory bandwidth — and every *persisted*
    /// rewrite contributes its bytes + wall-clock (build + write).
    /// Memory-only rewrites (`bytes_written == 0`) are excluded — Table
    /// I's α is the cost of the physical rewrite, and a build-only ratio
    /// would silently under-report it by the whole disk persist.
    pub fn alpha_estimator(&self) -> AlphaEstimator {
        let mut est = AlphaEstimator::new(self.table_bytes);
        // Workers aggregate; feed each temperature bucket as one sample —
        // the estimator only uses the byte/second ratios.
        if self.cold_scan_seconds > 0.0 {
            est.record_cold_scan(self.cold_scan_bytes, self.cold_scan_seconds);
        }
        if self.warm_scan_seconds > 0.0 {
            est.record_scan(self.warm_scan_bytes, self.warm_scan_seconds);
        }
        for w in self.windows.iter().filter(|w| w.bytes_written > 0) {
            est.record_reorg(w.bytes_written, (w.build + w.write).as_secs_f64());
        }
        est
    }

    /// The empirical α of this serving run: mean aside-rewrite wall-clock
    /// over the extrapolated full-scan wall-clock, both measured on the
    /// same query stream. `None` until the run has both persisted rewrites
    /// and non-pruned scans — in particular, always `None` in
    /// [`ServeMode::Memory`] (no physical rewrite to bill), and `None`
    /// when any tiered publish or pooled scan failed mid-run: the degraded
    /// scans serve with in-memory byte accounting, so the scan-throughput
    /// calibration would mix units and the ratio would be wrong.
    pub fn empirical_alpha(&self) -> Option<f64> {
        if !self.tiered_errors.is_empty() || self.scan_io_errors > 0 {
            return None;
        }
        self.alpha_estimator().alpha()
    }

    /// α̂ from the cold (disk) scan throughput only; `None` without cold
    /// scans or under the degradations that void [`Self::empirical_alpha`].
    pub fn alpha_cold(&self) -> Option<f64> {
        if !self.tiered_errors.is_empty() || self.scan_io_errors > 0 {
            return None;
        }
        self.alpha_estimator().alpha_cold()
    }

    /// α̂ from the warm (pool-hit / memory) scan throughput only.
    pub fn alpha_warm(&self) -> Option<f64> {
        if !self.tiered_errors.is_empty() || self.scan_io_errors > 0 {
            return None;
        }
        self.alpha_estimator().alpha_warm()
    }

    /// Buffer-pool hit rate over the run (0.0 without a pool).
    pub fn pool_hit_rate(&self) -> f64 {
        self.pool.map_or(0.0, |p| p.hit_rate())
    }
}

/// What the reorganization scheduler thread returns at join: every
/// completed window, the disk-tier degradation messages, and the
/// cumulative α billed into the global budget ledger.
type SchedulerOutcome = (Vec<ReorgWindow>, Vec<String>, f64);

/// The concurrent serving engine. See the [module docs](self) for the data
/// path; construct with [`Engine::start`], feed with [`Engine::submit`] /
/// [`Engine::submit_tracked`] from any number of threads, finish with
/// [`Engine::drain`] + [`Engine::shutdown`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerStats>>,
    reorg: Option<JoinHandle<SchedulerOutcome>>,
    exporter: Option<JoinHandle<()>>,
    /// Tells the exporter thread to write its final snapshot and exit.
    exporter_stop: Arc<(Mutex<bool>, Condvar)>,
    started: Instant,
}

impl Engine {
    /// Boot a single-tenant engine: build the bookkeeping core,
    /// materialize the initial snapshot, and spawn the worker pool plus
    /// (optionally) the background reorganizer. This is the N = 1 special
    /// case of [`Engine::start_tenants`], with the tenant named
    /// `"default"` and its disk tier rooted *directly* at the configured
    /// root (no `tenant-*/` subdirectory).
    pub fn start(
        table: Arc<Table>,
        initial_spec: SharedSpec,
        generator: Arc<dyn LayoutGenerator>,
        oreo_config: OreoConfig,
        config: EngineConfig,
    ) -> Self {
        Self::start_tenants(
            vec![TenantSpec {
                name: "default".into(),
                table,
                initial_spec,
                generator,
                oreo: oreo_config,
            }],
            config,
        )
    }

    /// Boot an N-tenant engine: one OREO instance, snapshot cell, and
    /// write path per tenant; one shared worker pool, buffer pool, and
    /// reorganization scheduler. Tenant *index* (position in `specs`) is
    /// the table id on pool page keys and tiered generations, and the id
    /// queries are routed by ([`Engine::submit_to`]). With more than one
    /// tenant, tiered serving stores tenant `i` under
    /// `root/tenant-<name>/`.
    ///
    /// # Panics
    /// Panics on an empty tenant list or duplicate tenant names.
    pub fn start_tenants(specs: Vec<TenantSpec>, mut config: EngineConfig) -> Self {
        assert!(!specs.is_empty(), "engine needs at least one tenant");
        {
            let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), specs.len(), "tenant names must be unique");
        }
        if !config.background_reorg {
            // No reorganizer means nothing ever calls complete_reorg; fall
            // back to the simulator's configured-delay application so the
            // pending queue drains (see `background_reorg` docs).
            config.delay = DelaySemantics::Configured;
        }
        let registry = Arc::new(Registry::new());
        let metrics = LiveMetrics::new(&registry);
        let journal = (config.obs.journal_capacity > 0).then(|| {
            // Shard per thread that emits: workers + reorganizer + the
            // submitting front end, capped to keep per-journal memory sane.
            let shards = (config.workers.max(1) + 2).min(16);
            Arc::new(Journal::new(shards, config.obs.journal_capacity))
        });
        let sink: Arc<dyn EventSink> = match &journal {
            Some(j) => Arc::clone(j) as Arc<dyn EventSink>,
            None => Arc::new(NullSink),
        };
        let multi_tenant = specs.len() > 1;
        let mut core = MultiTableOreo::new();
        let mut tenants = Vec::with_capacity(specs.len());
        let mut any_tiered = false;
        for (index, spec) in specs.into_iter().enumerate() {
            core.register(
                spec.name.clone(),
                Arc::clone(&spec.table),
                Arc::clone(&spec.initial_spec),
                Arc::clone(&spec.generator),
                spec.oreo,
            );
            let oreo = core
                .instance_mut(&spec.name)
                .expect("just-registered tenant");
            oreo.set_event_sink(Arc::clone(&sink));
            let initial_id = oreo.physical_layout();
            let mut initial_snapshot = materialize(&spec.table, &spec.initial_spec, initial_id);
            // A single tenant keeps the pre-tenancy flat layout (store +
            // wal.log directly at the root); N tenants get subdirectories.
            let tenant_root = match &config.mode {
                ServeMode::Memory => None,
                ServeMode::Tiered { root } => Some(if multi_tenant {
                    root.join(format!("tenant-{}", spec.name))
                } else {
                    root.clone()
                }),
            };
            let tiered = tenant_root.as_ref().map(|root| {
                let (store, _receipt) =
                    TieredStore::create_for_table(root, index as u32, &mut initial_snapshot)
                        .expect("create tiered store");
                store
            });
            any_tiered |= tiered.is_some();
            // The write path. In tiered serving every accepted batch is
            // WAL-logged (append + fsync = the ack point) before it mutates
            // the delta buffer; a WAL failure degrades ingestion to
            // memory-only instead of failing writes or killing the engine.
            // The engine starts from the boot table, so any WAL left on the
            // root belongs to a previous process: storage-level recovery
            // (`Wal::open` + `DeltaBuffer::resume`) is the crash path, the
            // engine starts clean.
            let mut ingest_errors = Vec::new();
            let wal = tenant_root.as_ref().and_then(|root| {
                let path = root.join("wal.log");
                let _ = std::fs::remove_file(&path);
                match Wal::open(&path) {
                    Ok((wal, _recovery)) => Some(wal),
                    Err(e) => {
                        let msg = format!(
                            "wal open at {} failed: {e} (ingestion degraded to memory-only)",
                            path.display()
                        );
                        eprintln!("oreo-ingest: {msg}");
                        ingest_errors.push(msg);
                        metrics.tiered_errors.inc();
                        None
                    }
                }
            });
            let ingest = IngestState::new(
                DeltaBuffer::new(
                    Arc::clone(spec.table.schema()),
                    spec.table.num_rows() as u64,
                    config.merge_policy,
                ),
                wal,
                Arc::clone(&spec.table),
                ingest_errors,
            );
            let tenant_metrics = multi_tenant
                .then(|| LiveMetrics::with_prefix(&registry, &format!("tenant.{index}.")));
            tenants.push(Tenant {
                name: spec.name,
                ingest: Mutex::new(ingest),
                cell: SnapshotCell::new(initial_snapshot),
                tiered,
                observed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                snapshots_published: AtomicU64::new(0),
                deferrals: AtomicU64::new(0),
                max_deferred_queries: AtomicU64::new(0),
                io_cold_bytes: AtomicU64::new(0),
                io_cached_bytes: AtomicU64::new(0),
                metrics: tenant_metrics,
            });
        }
        let pool = any_tiered.then(|| {
            Arc::new(
                BufferPool::new(BufferPoolConfig {
                    capacity_bytes: config.buffer_pool_bytes,
                    ..BufferPoolConfig::default()
                })
                .with_event_sink(Arc::clone(&sink)),
            )
        });
        let effective_shards = config.effective_shards();
        let background_reorg = config.background_reorg;
        let worker_count = config.workers.max(1);
        let started = Instant::now();
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            tenants,
            pool,
            queue: ShardedQueue::new(effective_shards),
            config,
            observed: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            query_cost_micros: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            registry,
            metrics,
            journal,
            sink,
            started,
        });

        let (reorg_tx, reorg) = if background_reorg {
            let (tx, rx) = channel::<ReorgRequest>();
            let shared2 = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("oreo-reorg".into())
                .spawn(move || scheduler_loop(&shared2, &rx))
                .expect("spawn reorganizer");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };

        let workers = (0..worker_count)
            .map(|home| {
                let shared = Arc::clone(&shared);
                let tx = reorg_tx.clone();
                std::thread::Builder::new()
                    .name(format!("oreo-worker-{home}"))
                    .spawn(move || worker_loop(&shared, home, tx))
                    .expect("spawn worker")
            })
            .collect();
        // Workers hold the only senders now; the reorganizer exits when the
        // last worker does.
        drop(reorg_tx);

        let mut fleet_bytes = 0u64;
        for ten in &shared.tenants {
            let bytes = ten.cell.pin().total_bytes();
            fleet_bytes += bytes;
            if let Some(tm) = &ten.metrics {
                tm.table_bytes.set(bytes as f64);
            }
        }
        shared.metrics.table_bytes.set(fleet_bytes as f64);

        let exporter_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let exporter = shared.config.obs.metrics_json.clone().map(|path| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&exporter_stop);
            std::thread::Builder::new()
                .name("oreo-metrics".into())
                .spawn(move || exporter_loop(&shared, &stop, &path))
                .expect("spawn metrics exporter")
        });

        Self {
            shared,
            workers,
            reorg,
            exporter,
            exporter_stop,
            started,
        }
    }

    /// The live metrics registry — every counter/gauge/histogram the
    /// engine publishes, readable at any time.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The event journal, when one was configured.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.shared.journal.as_ref()
    }

    /// Enqueue a query for tenant 0 (fire-and-forget; outcomes land in the
    /// stats). The single-tenant API.
    pub fn submit(&self, query: Query) {
        self.submit_to(0, query);
    }

    /// Enqueue a query for tenant 0 and get a handle to its outcome.
    pub fn submit_tracked(&self, query: Query) -> ResultHandle {
        self.submit_tracked_to(0, query)
    }

    /// Enqueue a query for the tenant at `tenant` (its index in the
    /// [`Engine::start_tenants`] spec list).
    pub fn submit_to(&self, tenant: usize, query: Query) {
        self.enqueue(tenant, query, None);
    }

    /// Enqueue a query for the tenant at `tenant` and get a handle to its
    /// outcome.
    pub fn submit_tracked_to(&self, tenant: usize, query: Query) -> ResultHandle {
        let slot = Arc::new(Slot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        });
        self.enqueue(tenant, query, Some(Arc::clone(&slot)));
        ResultHandle { slot }
    }

    fn enqueue(&self, tenant: usize, query: Query, slot: Option<Arc<Slot>>) {
        let ten = &self.shared.tenants[tenant];
        let submit_id = self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        for m in metric_views(&self.shared, ten) {
            m.queries_submitted.inc();
        }
        if self.shared.sink.enabled() {
            self.shared
                .sink
                .emit(EventKind::QueryEnqueued { submit_id });
        }
        self.shared.queue.push(Job {
            query,
            slot,
            submit_id,
            tenant: tenant as u32,
        });
    }

    /// Apply one batch of write operations: appends land in delta runs,
    /// updates tombstone-and-reappend, deletes tombstone. The batch is
    /// validated, WAL-logged (append + fsync — the durability ack point;
    /// tiered serving only), applied to the delta buffer, and published as
    /// the current snapshot's overlay, all under the ingest lock. The next
    /// background reorganization folds the deltas into the base layout.
    ///
    /// A WAL failure degrades ingestion to memory-only — the batch still
    /// succeeds, the error lands in [`EngineStats::tiered_errors`] — so
    /// the write path has the same degradation contract as tiered
    /// publishes. Validation errors reject the whole batch atomically.
    pub fn ingest(&self, ops: &[IngestOp]) -> oreo_storage::Result<ApplyReceipt> {
        self.ingest_to(0, ops)
    }

    /// [`Engine::ingest`] addressed to the tenant at `tenant`.
    pub fn ingest_to(&self, tenant: usize, ops: &[IngestOp]) -> oreo_storage::Result<ApplyReceipt> {
        let shared = &self.shared;
        let ten = &shared.tenants[tenant];
        let mut ing = ten.ingest.lock().expect("ingest poisoned");
        // Validate before WAL-logging: the log must never hold a record
        // replay would reject.
        ing.buffer.validate(ops)?;
        let seq = ing.buffer.next_seq();
        let mut wal_failure = None;
        if let Some(wal) = ing.wal.as_mut() {
            if let Err(e) = wal.append(seq, ops) {
                wal_failure = Some(format!(
                    "wal append of batch {seq} failed: {e} (ingestion degraded to memory-only)"
                ));
            }
        }
        if let Some(msg) = wal_failure {
            eprintln!("oreo-ingest: {msg}");
            ing.errors.push(msg);
            ing.wal = None;
            for m in metric_views(shared, ten) {
                m.tiered_errors.inc();
            }
        } else {
            let wal_bytes = ing.wal.as_ref().map(Wal::bytes);
            if let Some(b) = wal_bytes {
                ing.wal_bytes = b;
                for m in metric_views(shared, ten) {
                    m.wal_bytes.set(b as f64);
                }
            }
        }
        let receipt = ing.buffer.apply(ops)?;
        ing.batches += 1;
        ing.rows_appended += receipt.appended;
        ing.rows_deleted += receipt.deleted;
        ing.rows_written += receipt.rows_written;
        for m in metric_views(shared, ten) {
            m.ingest_batches.inc();
            m.ingest_rows.add(receipt.appended);
            m.ingest_deletes.add(receipt.deleted);
            m.ingest_rows_written.add(receipt.rows_written);
            m.delta_rows.set(ing.buffer.delta_rows() as f64);
        }
        // Publish the new overlay: readers pin snapshots, so clone the
        // current one and re-attach. Still under the ingest lock — every
        // overlay-bearing publish is — so a racing fold can't lose it.
        let mut snapshot = ten.cell.pin().as_ref().clone();
        snapshot.set_delta(ing.buffer.overlay());
        ten.cell.publish(snapshot);
        // Charge the merge work (lock order ingest → core): rewriting
        // `rows_written` of the table's live rows is that fraction of a
        // full rewrite, which costs α.
        if receipt.rows_written > 0 {
            let live = ing.base.num_rows() as u64 + ing.buffer.delta_rows();
            let mut core = shared.core.lock().expect("core poisoned");
            let oreo = core.instance_mut(&ten.name).expect("tenant registered");
            let alpha = oreo.config().alpha;
            oreo.charge_compaction(
                alpha * receipt.rows_written as f64 / live.max(1) as f64,
                receipt.rows_written,
            );
        }
        Ok(receipt)
    }

    /// Rows a full scan of tenant 0's served snapshot returns right now:
    /// base rows plus delta rows minus tombstones.
    pub fn live_rows(&self) -> u64 {
        self.shared.tenants[0].cell.pin().live_rows()
    }

    /// [`Engine::live_rows`] for the tenant at `tenant`.
    pub fn live_rows_of(&self, tenant: usize) -> u64 {
        self.shared.tenants[tenant].cell.pin().live_rows()
    }

    /// Block until every submitted query has completed.
    pub fn drain(&self) {
        let mut guard = self.shared.drain_lock.lock().expect("drain poisoned");
        while self.shared.completed.load(Ordering::Acquire)
            < self.shared.submitted.load(Ordering::Relaxed)
        {
            let (g, _) = self
                .shared
                .drain_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("drain poisoned");
            guard = g;
        }
    }

    /// Pin tenant 0's currently served snapshot.
    pub fn pin(&self) -> Arc<TableSnapshot> {
        self.shared.tenants[0].cell.pin()
    }

    /// Pin the currently served snapshot of the tenant at `tenant`.
    pub fn pin_of(&self, tenant: usize) -> Arc<TableSnapshot> {
        self.shared.tenants[tenant].cell.pin()
    }

    /// Epoch of tenant 0's currently served snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.tenants[0].cell.epoch()
    }

    /// Number of tenants this engine serves.
    pub fn num_tenants(&self) -> usize {
        self.shared.tenants.len()
    }

    /// The disk tier backing tenant 0's snapshots, in [`ServeMode::Tiered`]
    /// runs.
    pub fn tiered(&self) -> Option<&TieredStore> {
        self.shared.tenants[0].tiered.as_ref()
    }

    /// The disk tier of the tenant at `tenant`, in [`ServeMode::Tiered`]
    /// runs.
    pub fn tiered_of(&self, tenant: usize) -> Option<&TieredStore> {
        self.shared.tenants[tenant].tiered.as_ref()
    }

    /// The shared buffer pool tiered scans read through, in
    /// [`ServeMode::Tiered`] runs.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.shared.pool.as_ref()
    }

    /// Snapshot of the bookkeeping ledger, aggregated across tenants (for
    /// a single-tenant engine this *is* the tenant's ledger).
    pub fn ledger(&self) -> CostLedger {
        self.shared
            .core
            .lock()
            .expect("core poisoned")
            .total_ledger()
    }

    /// Snapshot of one tenant's own ledger.
    pub fn ledger_of(&self, tenant: usize) -> CostLedger {
        let core = self.shared.core.lock().expect("core poisoned");
        *core
            .instance(&self.shared.tenants[tenant].name)
            .expect("tenant registered")
            .ledger()
    }

    /// Queries fully served so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Snapshots published by the reorganization scheduler so far, across
    /// all tenants (a quiesce signal for tests and parity harnesses).
    pub fn snapshots_published(&self) -> u64 {
        self.shared.snapshots_published.load(Ordering::Relaxed)
    }

    /// Stop accepting work, wait for the pipeline (workers + reorganizer)
    /// to finish everything in flight, and return aggregate statistics.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.close();
        let mut totals = WorkerStats::default();
        for handle in self.workers.drain(..) {
            let stats = handle.join().expect("worker panicked");
            totals.rows_scanned += stats.rows_scanned;
            totals.rows_matched += stats.rows_matched;
            totals.bytes_scanned += stats.bytes_scanned;
            totals.scan_seconds += stats.scan_seconds;
            totals.cold_scans += stats.cold_scans;
            totals.cold_scan_bytes += stats.cold_scan_bytes;
            totals.cold_scan_seconds += stats.cold_scan_seconds;
            totals.warm_scan_bytes += stats.warm_scan_bytes;
            totals.warm_scan_seconds += stats.warm_scan_seconds;
            totals.io_cold_bytes += stats.io_cold_bytes;
            totals.io_cached_bytes += stats.io_cached_bytes;
            totals.scan_io_errors += stats.scan_io_errors;
            totals.chunks_evaluated += stats.chunks_evaluated;
            totals.rows_short_circuited += stats.rows_short_circuited;
            totals.delta_bytes_scanned += stats.delta_bytes_scanned;
        }
        let (windows, mut tiered_errors, reorg_budget_spent) = match self.reorg.take() {
            Some(handle) => handle.join().expect("reorganizer panicked"),
            None => (Vec::new(), Vec::new(), 0.0),
        };
        // Fold every tenant's write-path degradations and counters in
        // (lock order: ingest before core).
        let mut ingest_summary = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for ten in &self.shared.tenants {
            let ing = ten.ingest.lock().expect("ingest poisoned");
            tiered_errors.extend(ing.errors.iter().cloned());
            ingest_summary.0 += ing.batches;
            ingest_summary.1 += ing.rows_appended;
            ingest_summary.2 += ing.rows_deleted;
            ingest_summary.3 += ing.rows_written;
            ingest_summary.4 += ing.buffer.delta_rows();
            ingest_summary.5 += ing.buffer.tombstone_count() as u64;
            ingest_summary.6 += ing.wal_bytes;
        }
        // Stop the exporter last among the threads so its final snapshot
        // sees the fully drained counters.
        if let Some(handle) = self.exporter.take() {
            let (lock, cv) = &*self.exporter_stop;
            *lock.lock().expect("exporter stop poisoned") = true;
            cv.notify_all();
            handle.join().expect("metrics exporter panicked");
        }
        if let Some(path) = &self.shared.config.obs.metrics_prom {
            update_derived_gauges(&self.shared);
            let prom = self.shared.registry.snapshot().to_prometheus();
            if let Err(e) = std::fs::write(path, prom) {
                eprintln!("oreo-metrics: prometheus dump to {path:?} failed: {e}");
            }
        }
        let (events, events_dropped) = match &self.shared.journal {
            Some(journal) => (journal.drain(), journal.events_dropped()),
            None => (Vec::new(), 0),
        };
        let elapsed = self.started.elapsed();
        let table_bytes = self
            .shared
            .tenants
            .iter()
            .map(|t| t.cell.pin().total_bytes())
            .sum();
        let core = self.shared.core.lock().expect("core poisoned");
        let queries = self.shared.completed.load(Ordering::Relaxed);
        let tenants: Vec<TenantStats> = self
            .shared
            .tenants
            .iter()
            .map(|ten| {
                let oreo = core.instance(&ten.name).expect("tenant registered");
                let latency_hist = ten
                    .metrics
                    .as_ref()
                    .map(|m| &m.latency_us)
                    .unwrap_or(&self.shared.metrics.latency_us);
                TenantStats {
                    name: ten.name.clone(),
                    queries: ten.completed.load(Ordering::Relaxed),
                    latency: LatencyStats::from_histogram(latency_hist),
                    ledger: *oreo.ledger(),
                    switches: oreo.switches(),
                    snapshots_published: ten.snapshots_published.load(Ordering::Relaxed),
                    reorg_deferrals: ten.deferrals.load(Ordering::Relaxed),
                    max_deferred_queries: ten.max_deferred_queries.load(Ordering::Relaxed),
                    io_cold_bytes: ten.io_cold_bytes.load(Ordering::Relaxed),
                    io_cached_bytes: ten.io_cached_bytes.load(Ordering::Relaxed),
                    final_physical: oreo.physical_layout(),
                    final_logical: oreo.logical_layout(),
                }
            })
            .collect();
        // Single-tenant compatibility: the engine-level layout/state-space
        // readings are tenant 0's.
        let first = core
            .instance(&self.shared.tenants[0].name)
            .expect("tenant registered");
        EngineStats {
            workers: self.shared.config.workers.max(1),
            queries,
            elapsed,
            qps: if elapsed.as_secs_f64() > 0.0 {
                queries as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency: LatencyStats::from_histogram(&self.shared.metrics.latency_us),
            ledger: core.total_ledger(),
            switches: tenants.iter().map(|t| t.switches).sum(),
            snapshots_published: self.shared.snapshots_published.load(Ordering::Relaxed),
            windows,
            tiered_errors,
            reorg_budget_spent,
            rows_scanned: totals.rows_scanned,
            rows_matched: totals.rows_matched,
            bytes_scanned: totals.bytes_scanned,
            scan_seconds: totals.scan_seconds,
            cold_scans: totals.cold_scans,
            cold_scan_bytes: totals.cold_scan_bytes,
            cold_scan_seconds: totals.cold_scan_seconds,
            warm_scan_bytes: totals.warm_scan_bytes,
            warm_scan_seconds: totals.warm_scan_seconds,
            io_cold_bytes: totals.io_cold_bytes,
            io_cached_bytes: totals.io_cached_bytes,
            pool: self.shared.pool.as_ref().map(|p| p.stats()),
            scan_io_errors: totals.scan_io_errors,
            chunks_evaluated: totals.chunks_evaluated,
            rows_short_circuited: totals.rows_short_circuited,
            delta_bytes_scanned: totals.delta_bytes_scanned,
            ingest_batches: ingest_summary.0,
            rows_appended: ingest_summary.1,
            rows_deleted: ingest_summary.2,
            ingest_rows_written: ingest_summary.3,
            delta_rows: ingest_summary.4,
            tombstones: ingest_summary.5,
            wal_bytes: ingest_summary.6,
            table_bytes,
            mode: self.shared.config.mode.clone(),
            final_physical: first.physical_layout(),
            final_logical: first.logical_layout(),
            num_states: first.num_states(),
            max_states_seen: first.max_states_seen(),
            tenants,
            events,
            events_dropped,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Unblock any still-running workers; threads detach and exit on
        // their own if `shutdown` was never called.
        self.shared.queue.close();
        let (lock, cv) = &*self.exporter_stop;
        if let Ok(mut stopped) = lock.lock() {
            *stopped = true;
            cv.notify_all();
        }
    }
}

/// Recompute the derived gauges — qps, α̂ (rebuilt from the monotone
/// scan/rewrite counters via [`AlphaEstimator`], `NaN` when a side has no
/// samples yet), and the buffer-pool readings.
fn update_derived_gauges(shared: &Shared) {
    let m = &shared.metrics;
    let elapsed = shared.started.elapsed().as_secs_f64();
    let completed = shared.completed.load(Ordering::Relaxed);
    if elapsed > 0.0 {
        m.qps.set(completed as f64 / elapsed);
    }
    if let Some(pool) = &shared.pool {
        let stats = pool.stats();
        m.pool_hit_rate.set(stats.hit_rate());
        m.pool_hits.set(stats.hits as f64);
        m.pool_misses.set(stats.misses as f64);
        m.pool_evictions.set(stats.evictions as f64);
        m.pool_pages_resident.set(stats.pages_resident as f64);
    }
    let table_bytes = m.table_bytes.get();
    if table_bytes.is_finite() && table_bytes > 0.0 {
        let mut est = AlphaEstimator::new(table_bytes as u64);
        est.record_cold_scan(m.cold_scan_bytes.get(), m.cold_scan_ns.get() as f64 / 1e9);
        est.record_scan(m.warm_scan_bytes.get(), m.warm_scan_ns.get() as f64 / 1e9);
        est.record_reorgs(
            m.reorg_bytes_written.get(),
            m.persist_ns.get() as f64 / 1e9,
            m.persisted.get(),
        );
        m.alpha_hat.set(est.alpha().unwrap_or(f64::NAN));
        m.alpha_cold.set(est.alpha_cold().unwrap_or(f64::NAN));
        m.alpha_warm.set(est.alpha_warm().unwrap_or(f64::NAN));
    }
}

/// The periodic JSON exporter: one snapshot line immediately, one per
/// interval, and one final line at stop — so even the shortest run emits
/// at least two.
fn exporter_loop(shared: &Shared, stop: &(Mutex<bool>, Condvar), path: &std::path::Path) {
    let mut writer = match SnapshotWriter::create(path) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("oreo-metrics: cannot open {path:?}: {e}");
            return;
        }
    };
    let label = shared.config.obs.label.clone();
    let interval = shared.config.obs.interval();
    let write_one = |shared: &Shared, writer: &mut SnapshotWriter| {
        update_derived_gauges(shared);
        let snap = shared.registry.snapshot();
        if let Err(e) = writer.append(&label, shared.started.elapsed().as_secs_f64(), &snap) {
            eprintln!("oreo-metrics: snapshot append failed: {e}");
        }
    };
    write_one(shared, &mut writer);
    let (lock, cv) = stop;
    let mut stopped = lock.lock().expect("exporter stop poisoned");
    loop {
        if *stopped {
            break;
        }
        let (guard, _) = cv
            .wait_timeout(stopped, interval)
            .expect("exporter stop poisoned");
        stopped = guard;
        if *stopped {
            break;
        }
        drop(stopped);
        write_one(shared, &mut writer);
        stopped = lock.lock().expect("exporter stop poisoned");
    }
    drop(stopped);
    // Final snapshot: the drained end-of-run state.
    write_one(shared, &mut writer);
}

fn worker_loop(
    shared: &Shared,
    home: usize,
    reorg_tx: Option<Sender<ReorgRequest>>,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    while let Some(batch) = shared.queue.pop_batch(home, shared.config.batch) {
        // Phase 1 — scans against the job's tenant's pinned snapshot, no
        // locks held. In tiered serving the scan reads partition pages
        // through the shared buffer pool (real disk I/O on misses); a
        // pooled scan that fails degrades to the in-memory snapshot and is
        // excluded from α̂ calibration.
        let mut scanned = Vec::with_capacity(batch.len());
        for job in batch {
            let picked = Instant::now();
            if shared.sink.enabled() {
                shared.sink.emit(EventKind::QueryPickup {
                    submit_id: job.submit_id,
                });
            }
            let ten = &shared.tenants[job.tenant as usize];
            let snapshot = ten.cell.pin();
            let scan = match (&shared.pool, snapshot.generation()) {
                (Some(pool), Some(_)) => match snapshot.scan_pooled(&job.query.predicate, pool) {
                    Ok(scan) => scan,
                    Err(e) => {
                        stats.scan_io_errors += 1;
                        for m in metric_views(shared, ten) {
                            m.scan_io_errors.inc();
                        }
                        // A persistent fault (unreadable file, bad disk)
                        // would otherwise print once per queued query;
                        // the full count lands in scan_io_errors.
                        if stats.scan_io_errors == 1 {
                            eprintln!(
                                "oreo-worker-{home}: pooled scan failed: {e} (memory \
                                 fallback; further errors counted silently)"
                            );
                        }
                        snapshot.scan(&job.query.predicate)
                    }
                },
                _ => snapshot.scan(&job.query.predicate),
            };
            let scan_wall = picked.elapsed();
            let elapsed = scan_wall.as_secs_f64();
            let scan_ns = scan_wall.as_nanos().min(u128::from(u64::MAX)) as u64;
            stats.scan_seconds += elapsed;
            stats.rows_scanned += scan.rows_read;
            stats.rows_matched += scan.matches.len() as u64;
            stats.bytes_scanned += scan.bytes_scanned;
            stats.io_cold_bytes += scan.io_cold_bytes;
            stats.io_cached_bytes += scan.io_cached_bytes;
            stats.chunks_evaluated += scan.chunks_evaluated;
            stats.rows_short_circuited += scan.rows_short_circuited;
            stats.delta_bytes_scanned += scan.delta_bytes_scanned;
            ten.io_cold_bytes
                .fetch_add(scan.io_cold_bytes, Ordering::Relaxed);
            ten.io_cached_bytes
                .fetch_add(scan.io_cached_bytes, Ordering::Relaxed);
            for m in metric_views(shared, ten) {
                m.rows_scanned.add(scan.rows_read);
                m.rows_matched.add(scan.matches.len() as u64);
                m.bytes_scanned.add(scan.bytes_scanned);
                m.scan_ns.add(scan_ns);
                m.io_cold_bytes.add(scan.io_cold_bytes);
                m.io_cached_bytes.add(scan.io_cached_bytes);
                m.chunks_evaluated.add(scan.chunks_evaluated);
                m.rows_short_circuited.add(scan.rows_short_circuited);
                m.delta_bytes_scanned.add(scan.delta_bytes_scanned);
                m.scan_us.record(as_micros_u64(scan_wall));
            }
            // Temperature classification: a scan is "cold" when the
            // majority of its page bytes came from disk. Memory scans
            // (no pooled I/O at all) are warm by definition.
            if scan.io_cold_bytes > 0 && scan.io_cold_bytes >= scan.io_cached_bytes {
                stats.cold_scans += 1;
                stats.cold_scan_bytes += scan.bytes_scanned;
                stats.cold_scan_seconds += elapsed;
                for m in metric_views(shared, ten) {
                    m.cold_scans.inc();
                    m.cold_scan_bytes.add(scan.bytes_scanned);
                    m.cold_scan_ns.add(scan_ns);
                }
            } else {
                stats.warm_scan_bytes += scan.bytes_scanned;
                stats.warm_scan_seconds += elapsed;
                for m in metric_views(shared, ten) {
                    m.warm_scan_bytes.add(scan.bytes_scanned);
                    m.warm_scan_ns.add(scan_ns);
                }
            }
            if shared.sink.enabled() {
                shared.sink.emit(EventKind::QueryScanned {
                    submit_id: job.submit_id,
                    rows_read: scan.rows_read,
                    bytes: scan.bytes_scanned,
                    matched: scan.matches.len() as u64,
                });
            }
            scanned.push((job, picked, scan, snapshot.layout(), snapshot.epoch()));
        }

        // Phase 2 — bookkeeping for the whole batch under one core lock.
        // Each query flows through its own tenant's OREO instance, so the
        // per-tenant decision stream is exactly the single-tenant one.
        let mut fulfilled = Vec::with_capacity(scanned.len());
        {
            let mut core = shared.core.lock().expect("core poisoned");
            let mut touched = vec![false; shared.tenants.len()];
            for (job, picked, scan, served_layout, served_epoch) in scanned {
                let tenant_index = job.tenant as usize;
                let ten = &shared.tenants[tenant_index];
                touched[tenant_index] = true;
                let oreo = core.instance_mut(&ten.name).expect("tenant registered");
                let report = match shared.config.delay {
                    DelaySemantics::Configured => oreo.observe(&job.query),
                    DelaySemantics::Measured => {
                        let mut r = oreo.decide(&job.query);
                        oreo.settle(&job.query, &mut r);
                        r
                    }
                };
                let observed_now = shared.observed.fetch_add(1, Ordering::Relaxed) + 1;
                let tenant_observed_now = ten.observed.fetch_add(1, Ordering::Relaxed) + 1;
                // Feed the budget scheduler's admission denominator, in
                // micro-cost-units (integer atomics; costs are ≪ 1).
                shared
                    .query_cost_micros
                    .fetch_add((report.service_cost * 1e6) as u64, Ordering::Relaxed);
                if let Some(target) = report.reorg_decision {
                    for m in metric_views(shared, ten) {
                        m.switches.inc();
                    }
                    if let Some(tx) = &reorg_tx {
                        let spec = oreo.spec(target).expect("decided target has a spec");
                        let charge = oreo.config().alpha;
                        // Send while holding the core lock so the build
                        // queue and `Oreo::pending` stay in the same order.
                        let _ = tx.send(ReorgRequest {
                            tenant: job.tenant,
                            target,
                            spec,
                            charge,
                            decided_seq: report.seq,
                            decided_at: Instant::now(),
                            observed_at_decision: observed_now,
                            tenant_observed_at_decision: tenant_observed_now,
                        });
                    }
                }
                fulfilled.push((
                    picked,
                    job.slot,
                    job.submit_id,
                    tenant_index,
                    QueryOutcome {
                        seq: report.seq,
                        scan,
                        served_layout,
                        served_epoch,
                        decision: report.reorg_decision,
                        service_cost: report.service_cost,
                        latency: Duration::ZERO,
                    },
                ));
            }
            // Batch-granular gauges, read while the lock already serializes
            // the core: the live ledger and state-space views, aggregated
            // across tenants plus the namespaced view of each tenant this
            // batch touched.
            let m = &shared.metrics;
            let ledger = core.total_ledger();
            m.ledger_query_cost.set(ledger.query_cost);
            m.ledger_reorg_cost.set(ledger.reorg_cost);
            m.ledger_total.set(ledger.total());
            let mut num_states = 0usize;
            let mut max_states = 0usize;
            for ten in &shared.tenants {
                let oreo = core.instance(&ten.name).expect("tenant registered");
                num_states += oreo.num_states();
                max_states += oreo.max_states_seen();
            }
            m.num_states.set(num_states as f64);
            m.max_states_seen.set(max_states as f64);
            for (tenant_index, ten) in shared.tenants.iter().enumerate() {
                if !touched[tenant_index] {
                    continue;
                }
                if let Some(tm) = &ten.metrics {
                    let oreo = core.instance(&ten.name).expect("tenant registered");
                    let ledger = oreo.ledger();
                    tm.ledger_query_cost.set(ledger.query_cost);
                    tm.ledger_reorg_cost.set(ledger.reorg_cost);
                    tm.ledger_total.set(ledger.total());
                    tm.num_states.set(oreo.num_states() as f64);
                    tm.max_states_seen.set(oreo.max_states_seen() as f64);
                }
            }
        }

        // Phase 3 — fulfill results and wake drainers.
        for (picked, slot, submit_id, tenant_index, mut outcome) in fulfilled {
            let ten = &shared.tenants[tenant_index];
            outcome.latency = picked.elapsed();
            let latency_us = as_micros_u64(outcome.latency);
            for m in metric_views(shared, ten) {
                m.latency_us.record(latency_us);
                m.queries_completed.inc();
            }
            if shared.sink.enabled() {
                shared.sink.emit(EventKind::QueryCompleted {
                    submit_id,
                    stream_seq: outcome.seq,
                    latency_us,
                });
            }
            if let Some(slot) = slot {
                let mut v = slot.value.lock().expect("result slot poisoned");
                *v = Some(outcome);
                drop(v);
                slot.ready.notify_all();
            }
            ten.completed.fetch_add(1, Ordering::Relaxed);
            shared.completed.fetch_add(1, Ordering::Release);
        }
        shared.drain_cv.notify_all();
    }
    stats
}

/// The reorganization scheduler, run on the `oreo-reorg` thread: switch
/// decisions queue per tenant (FIFO within a tenant — the order
/// `Oreo::pending` expects) and the oldest *admissible* request executes
/// next. Without a budget every request is admissible, so the
/// oldest-arrival pick degenerates to the exact global FIFO the single
/// reorganizer ran — ledger-parity runs are untouched.
///
/// Deferral never touches a tenant's D-UMTS state: the switch was decided,
/// its α is already in the tenant's ledger, and the logical switch keeps
/// its configured/measured semantics — the scheduler only delays the
/// *physical* build + publish. A request is force-admitted once
/// [`ReorgBudget::max_defer_queries`] bookkeeping steps have passed since
/// its decision (starvation freedom), and once the channel disconnects
/// (all workers exited) every queued request is flushed regardless of
/// budget, so measured-Δ runs always drain `Oreo::pending`.
///
/// Returns the completed windows, surviving tiered errors, and the total α
/// billed to the global budget ledger.
fn scheduler_loop(shared: &Shared, rx: &Receiver<ReorgRequest>) -> SchedulerOutcome {
    let mut windows = Vec::new();
    let mut tiered_errors = Vec::new();
    let budget = shared.config.budget;
    let mut queues: Vec<VecDeque<(u64, ReorgRequest)>> =
        (0..shared.tenants.len()).map(|_| VecDeque::new()).collect();
    // Whether the current head of each queue has been counted as deferred.
    let mut deferral_counted = vec![false; shared.tenants.len()];
    let mut arrivals = 0u64;
    let mut spent = 0.0f64;
    let mut disconnected = false;
    loop {
        if queues.iter().all(|q| q.is_empty()) {
            if disconnected {
                break;
            }
            match rx.recv() {
                Ok(req) => {
                    queues[req.tenant as usize].push_back((arrivals, req));
                    arrivals += 1;
                }
                Err(_) => {
                    disconnected = true;
                    continue;
                }
            }
        }
        while let Ok(req) = rx.try_recv() {
            queues[req.tenant as usize].push_back((arrivals, req));
            arrivals += 1;
        }
        let observed = shared.observed.load(Ordering::Relaxed);
        let query_cost = shared.query_cost_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let mut pick: Option<(u64, usize)> = None;
        for (tenant_index, queue) in queues.iter().enumerate() {
            if let Some((arrival, req)) = queue.front() {
                let admissible = disconnected
                    || match budget {
                        None => true,
                        Some(b) => {
                            spent + req.charge <= b.fraction * query_cost + b.burst
                                || observed.saturating_sub(req.observed_at_decision)
                                    >= b.max_defer_queries
                        }
                    };
                if admissible && pick.is_none_or(|(best, _)| *arrival < best) {
                    pick = Some((*arrival, tenant_index));
                }
            }
        }
        let Some((_, tenant_index)) = pick else {
            // Every queued switch is over budget: count first-time
            // deferrals, then wait for more query cost to accrue (or for
            // new requests / shutdown).
            for (tenant_index, queue) in queues.iter().enumerate() {
                if !queue.is_empty() && !deferral_counted[tenant_index] {
                    deferral_counted[tenant_index] = true;
                    shared.tenants[tenant_index]
                        .deferrals
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(req) => {
                    queues[req.tenant as usize].push_back((arrivals, req));
                    arrivals += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
            continue;
        };
        let (_, req) = queues[tenant_index]
            .pop_front()
            .expect("picked head exists");
        deferral_counted[tenant_index] = false;
        // Bill the admitted switch into the global budget ledger; the
        // tenant's own ledger was already charged at decision time.
        spent += req.charge;
        let deferred_queries = shared
            .observed
            .load(Ordering::Relaxed)
            .saturating_sub(req.observed_at_decision);
        shared.tenants[tenant_index]
            .max_deferred_queries
            .fetch_max(deferred_queries, Ordering::Relaxed);
        windows.push(execute_reorg(
            shared,
            tenant_index,
            req,
            deferred_queries,
            &mut tiered_errors,
        ));
    }
    (windows, tiered_errors, spent)
}

/// Execute one admitted reorganization for the tenant at `tenant_index`:
/// freeze the tenant's delta prefix (the reorganization is also the
/// compaction), build the target snapshot aside, persist it to the
/// tenant's disk tier, publish, invalidate the superseded generation's
/// pages in the shared pool, and land the logical switch in the tenant's
/// OREO instance. Runs on the scheduler thread; readers never block.
fn execute_reorg(
    shared: &Shared,
    tenant_index: usize,
    req: ReorgRequest,
    deferred_queries: u64,
    tiered_errors: &mut Vec<String>,
) -> ReorgWindow {
    let ten = &shared.tenants[tenant_index];
    let build_start = Instant::now();
    // Freeze the delta prefix: captured runs and tombstones fold into the
    // rewritten base; batches arriving during the build merge only among
    // themselves and surface as the published snapshot's overlay.
    let (mut capture, base, base_ids, ids_identity, prev_folded, prev_next) = {
        let mut ing = ten.ingest.lock().expect("ingest poisoned");
        (
            ing.buffer.freeze_for_fold(),
            Arc::clone(&ing.base),
            Arc::clone(&ing.base_ids),
            ing.ids_identity,
            ing.folded,
            ing.buffer.next_row(),
        )
    };
    let built = build_fold_snapshot(
        &base,
        &base_ids,
        ids_identity,
        capture.as_ref(),
        &req.spec,
        req.target,
    )
    .unwrap_or_else(|e| {
        // The merge failed before anything published: unfreeze (the
        // captured state lives only in the buffer) and fall back to a pure
        // layout rewrite of the current base.
        let msg = format!(
            "fold build for layout {} failed: {e} (deltas kept in memory)",
            req.target
        );
        eprintln!("oreo-reorg: {msg}");
        {
            let mut ing = ten.ingest.lock().expect("ingest poisoned");
            ing.buffer.abort_fold();
            ing.errors.push(msg);
        }
        for m in metric_views(shared, ten) {
            m.tiered_errors.inc();
        }
        capture = None;
        build_fold_snapshot(&base, &base_ids, ids_identity, None, &req.spec, req.target)
            .expect("base-only build is infallible")
    });
    let FoldBuild {
        mut snapshot,
        merged,
    } = built;
    let build = build_start.elapsed();
    if shared.sink.enabled() {
        shared.sink.emit(EventKind::ReorgPhase {
            target: req.target,
            phase: ReorgPhaseKind::Build,
            micros: as_micros_u64(build),
            bytes: 0,
        });
    }
    let rows = snapshot.total_rows();
    let partitions = snapshot.num_partitions();
    let snapshot_bytes = snapshot.total_bytes();
    // The snapshot's metadata *is* the target's exact model; hand it to
    // the core so the next settle() does not rebuild it under the serving
    // mutex.
    let exact = snapshot.model();
    // Disk tier: persist the aside rewrite (write + fsync + atomic rename)
    // *before* the pointer swap — the rename is the durability point. A
    // disk failure (ENOSPC, unwritable root, …) must not kill the serving
    // plane: degrade to a memory-only publish, record the error, and keep
    // going — the window then carries bytes_written = 0 and is excluded
    // from the empirical α.
    let (folded_mark, next_row_mark) = match capture.as_ref() {
        Some(cap) => (cap.watermark, cap.next_row),
        None => (prev_folded, prev_next),
    };
    let mut persist_ok = true;
    let (write, bytes_written, generation) = match &ten.tiered {
        Some(store) => match store.publish_with_fold(&mut snapshot, folded_mark, next_row_mark) {
            Ok(receipt) => (receipt.wall, receipt.bytes_written, receipt.generation),
            Err(e) => {
                persist_ok = false;
                let msg = format!("tiered publish of layout {} failed: {e}", req.target);
                eprintln!("oreo-reorg: {msg} (serving from memory)");
                tiered_errors.push(msg);
                for m in metric_views(shared, ten) {
                    m.tiered_errors.inc();
                }
                if shared.sink.enabled() {
                    shared
                        .sink
                        .emit(EventKind::TieredDegraded { target: req.target });
                }
                (Duration::ZERO, 0, 0)
            }
        },
        None => (Duration::ZERO, 0, 0),
    };
    if bytes_written > 0 {
        for m in metric_views(shared, ten) {
            m.persisted.inc();
            m.persist_ns
                .add((build + write).as_nanos().min(u128::from(u64::MAX)) as u64);
            m.reorg_bytes_written.add(bytes_written);
        }
        if shared.sink.enabled() {
            shared.sink.emit(EventKind::ReorgPhase {
                target: req.target,
                phase: ReorgPhaseKind::Write,
                micros: as_micros_u64(write),
                bytes: bytes_written,
            });
        }
    }
    let publish_start = Instant::now();
    let mut folded_rows = 0u64;
    {
        let mut ing = ten.ingest.lock().expect("ingest poisoned");
        if let (Some(cap), Some((table, ids))) = (capture.as_ref(), merged.as_ref()) {
            ing.buffer.complete_fold();
            ing.base = Arc::clone(table);
            ing.base_ids = Arc::clone(ids);
            ing.ids_identity = ids_identity && cap.tombstones.is_empty();
            ing.folded = cap.watermark;
            folded_rows = cap.delta_rows;
            // The folded base is durable (or this is memory serving): WAL
            // records at or below the watermark are dead weight — GC them.
            // After a failed persist the log must keep them; replay is
            // idempotent, so the truncation just waits for the next
            // successful fold.
            if persist_ok {
                let mut trunc_err = None;
                if let Some(wal) = ing.wal.as_mut() {
                    if let Err(e) = wal.truncate_through(cap.watermark) {
                        trunc_err = Some(format!(
                            "wal truncation through {} failed: {e} \
                             (log kept; replay is idempotent)",
                            cap.watermark
                        ));
                    }
                }
                if let Some(msg) = trunc_err {
                    eprintln!("oreo-reorg: {msg}");
                    ing.errors.push(msg);
                    for m in metric_views(shared, ten) {
                        m.tiered_errors.inc();
                    }
                }
                let wal_bytes = ing.wal.as_ref().map(Wal::bytes);
                if let Some(b) = wal_bytes {
                    ing.wal_bytes = b;
                    for m in metric_views(shared, ten) {
                        m.wal_bytes.set(b as f64);
                    }
                }
            }
        }
        // Re-attach the live overlay (batches ingested during the build)
        // under the same lock every overlay publish takes.
        snapshot.set_delta(ing.buffer.overlay());
        for m in metric_views(shared, ten) {
            m.delta_rows.set(ing.buffer.delta_rows() as f64);
        }
        ten.cell.publish(snapshot);
    }
    if folded_rows > 0 {
        for m in metric_views(shared, ten) {
            m.folds.inc();
            m.folded_rows.add(folded_rows);
        }
    }
    if shared.sink.enabled() {
        shared.sink.emit(EventKind::ReorgPhase {
            target: req.target,
            phase: ReorgPhaseKind::Publish,
            micros: as_micros_u64(publish_start.elapsed()),
            bytes: 0,
        });
    }
    // The superseded generation's pages will never be requested again
    // under a new snapshot (keys carry the tenant's table id and the
    // generation number); drop exactly this tenant's retired pages so they
    // stop occupying shared pool capacity.
    if let (Some(pool), true) = (&shared.pool, generation > 1) {
        let invalidate_start = Instant::now();
        pool.invalidate_generation(tenant_index as u32, generation - 1);
        if shared.sink.enabled() {
            shared.sink.emit(EventKind::ReorgPhase {
                target: req.target,
                phase: ReorgPhaseKind::Invalidate,
                micros: as_micros_u64(invalidate_start.elapsed()),
                bytes: 0,
            });
        }
    }
    shared.snapshots_published.fetch_add(1, Ordering::Relaxed);
    ten.snapshots_published.fetch_add(1, Ordering::Relaxed);
    for m in metric_views(shared, ten) {
        m.snapshots_published.inc();
    }
    if let Some(tm) = &ten.metrics {
        tm.table_bytes.set(snapshot_bytes as f64);
    }
    let fleet_bytes: u64 = shared
        .tenants
        .iter()
        .map(|t| t.cell.pin().total_bytes())
        .sum();
    shared.metrics.table_bytes.set(fleet_bytes as f64);
    let measured = shared.config.delay == DelaySemantics::Measured;
    if measured || merged.is_some() {
        let mut core = shared.core.lock().expect("core poisoned");
        let oreo = core.instance_mut(&ten.name).expect("tenant registered");
        if let Some((table, _)) = merged {
            // Deltas folded in: the tenant's exact models must rebuild
            // against the merged base, and the merge work beyond the
            // α-billed base rewrite is charged as compaction.
            oreo.set_table(table);
            let live = oreo.table().num_rows() as u64;
            if folded_rows > 0 && live > 0 {
                let alpha = oreo.config().alpha;
                oreo.charge_compaction(alpha * folded_rows as f64 / live as f64, folded_rows);
            }
        }
        if measured {
            oreo.complete_reorg_with(req.target, Some(exact));
        }
    }
    let queries_during = ten
        .observed
        .load(Ordering::Relaxed)
        .saturating_sub(req.tenant_observed_at_decision);
    for m in metric_views(shared, ten) {
        m.reorg_windows.inc();
        m.reorg_build_ns
            .add(build.as_nanos().min(u128::from(u64::MAX)) as u64);
        m.reorg_delta_queries.add(queries_during);
    }
    ReorgWindow {
        tenant: ten.name.clone(),
        target: req.target,
        decided_seq: req.decided_seq,
        wall: req.decided_at.elapsed(),
        build,
        write,
        bytes_written,
        generation,
        queries_during,
        deferred_queries,
        rows,
        partitions,
        folded_rows,
    }
}
