//! The background reorganizer: builds the target layout's snapshot aside
//! and publishes it atomically, turning the paper's configured delay Δ into
//! a *measured* reorganization window.

use oreo_layout::SharedSpec;
use oreo_storage::{LayoutId, Table, TableSnapshot};
use std::time::{Duration, Instant};

/// A switch decision handed to the reorganization scheduler.
#[derive(Clone)]
pub struct ReorgRequest {
    /// Index of the deciding tenant in the engine's tenant map.
    pub tenant: u32,
    /// Target layout (a live state of the reorganizer).
    pub target: LayoutId,
    /// Routing spec to materialize.
    pub spec: SharedSpec,
    /// α the scheduler bills into the global budget ledger on admission
    /// (the tenant's configured α — its ledger was already charged at
    /// decision time).
    pub charge: f64,
    /// Stream position of the decision (the tenant's own stream).
    pub decided_seq: u64,
    /// Wall-clock instant of the decision.
    pub decided_at: Instant,
    /// Queries observed engine-wide when the decision was made — the
    /// budget scheduler's deferral clock.
    pub observed_at_decision: u64,
    /// Queries the deciding tenant had observed when the decision was made
    /// — the measured-Δ origin.
    pub tenant_observed_at_decision: u64,
}

/// One completed background reorganization — the measured Δ of §VI-D5,
/// and (in tiered serving) the measured write bill that feeds the
/// empirical α.
#[derive(Clone, Debug)]
pub struct ReorgWindow {
    /// Name of the tenant this window reorganized.
    pub tenant: String,
    /// Layout the engine switched to.
    pub target: LayoutId,
    /// Stream position of the switch decision.
    pub decided_seq: u64,
    /// Wall-clock duration from decision to snapshot publish.
    pub wall: Duration,
    /// Wall-clock duration of the in-memory build (excludes queue wait and
    /// the disk write).
    pub build: Duration,
    /// Wall-clock of persisting the aside rewrite (encode + write + fsync +
    /// atomic rename). Zero in memory-only serving.
    pub write: Duration,
    /// Bytes written by the aside rewrite (partition files, row-id
    /// sidecars, manifest). Zero in memory-only serving.
    pub bytes_written: u64,
    /// On-disk generation number the rewrite committed as (0 in memory-only
    /// serving).
    pub generation: u64,
    /// Queries the tenant's stream served *during* the window — the
    /// measured Δ in queries, the unit `OreoConfig::reorg_delay`
    /// configures in the sequential simulator.
    pub queries_during: u64,
    /// Queries (engine-wide) between the switch decision and the budget
    /// scheduler admitting it — 0 whenever the scheduler was idle and
    /// under budget, bounded by `ReorgBudget::max_defer_queries` plus
    /// scheduling slack otherwise.
    pub deferred_queries: u64,
    /// Rows re-routed into the new snapshot.
    pub rows: u64,
    /// Partitions in the new snapshot.
    pub partitions: usize,
    /// Delta rows this reorganization folded into the base (0 when the
    /// delta buffer was empty — a pure layout rewrite).
    pub folded_rows: u64,
}

/// Materialize the snapshot of `spec` over `table` (route every row, group,
/// and rebuild pruning metadata) — the α-scan-equivalent work the paper
/// charges a reorganization with, executed off the serving path.
pub fn materialize(table: &Table, spec: &SharedSpec, target: LayoutId) -> TableSnapshot {
    let assignment = spec.assign(table);
    TableSnapshot::build(table, &assignment, spec.k(), target, spec.describe())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::RangeLayout;
    use oreo_query::{ColumnType, Scalar, Schema};
    use oreo_storage::TableBuilder;
    use std::sync::Arc;

    #[test]
    fn materialize_builds_full_cover() {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..500i64 {
            b.push_row(&[Scalar::Int((i * 31) % 400)]);
        }
        let table = b.finish();
        let spec: SharedSpec = Arc::new(RangeLayout::from_sample(&table, 0, 8));
        let snap = materialize(&table, &spec, 9);
        assert_eq!(snap.layout(), 9);
        assert_eq!(snap.total_rows(), 500);
        assert_eq!(snap.row_cover(), (0..500u32).collect::<Vec<_>>());
    }
}
