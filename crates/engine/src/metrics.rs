//! Latency bookkeeping for the serving layer: per-worker sample vectors
//! merged into percentile summaries at shutdown (exact percentiles over the
//! full sample set — streams are bounded, so no sketch is needed).

use std::time::Duration;

/// Summary statistics over a set of per-query latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Maximum, microseconds.
    pub max_us: f64,
}

impl LatencyStats {
    /// Compute stats from raw microsecond samples (sorts in place).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        Self {
            count,
            mean_us: sum as f64 / count as f64,
            p50_us: percentile(samples, 0.50),
            p95_us: percentile(samples, 0.95),
            p99_us: percentile(samples, 0.99),
            max_us: *samples.last().expect("non-empty") as f64,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Duration → whole microseconds, saturating.
pub fn as_micros_u64(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(
            LatencyStats::from_samples(&mut Vec::new()),
            LatencyStats::default()
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let st = LatencyStats::from_samples(&mut s);
        assert_eq!(st.count, 100);
        assert_eq!(st.p50_us, 50.0);
        assert_eq!(st.p95_us, 95.0);
        assert_eq!(st.p99_us, 99.0);
        assert_eq!(st.max_us, 100.0);
        assert!((st.mean_us - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = vec![42];
        let st = LatencyStats::from_samples(&mut s);
        assert_eq!(st.p50_us, 42.0);
        assert_eq!(st.p99_us, 42.0);
        assert_eq!(st.max_us, 42.0);
    }
}
