//! Latency bookkeeping for the serving layer, built on `oreo-obs`
//! streaming histograms.
//!
//! Workers record each query's latency into a shared log-bucketed
//! [`Histogram`] as it completes, so percentiles are available **live**
//! (the metrics exporter reads them mid-run) and the engine's memory for
//! latency tracking is a fixed ~15 KiB per histogram — *not* one `u64`
//! per query. The earlier per-worker sample vectors grew without bound
//! on long runs; that path survives only as the exact test oracle
//! ([`LatencyStats::from_samples`]), used by tests to bound the
//! histogram's error on bounded streams.
//!
//! Accuracy: histogram percentiles are within one log-bucket of the
//! exact nearest-rank answer — a relative error of at most
//! `oreo_obs::RELATIVE_ERROR` (1/32 ≈ 3.1%); values below 32 µs are
//! exact. Count, sum, mean, and max are exact in both paths.

use oreo_obs::Histogram;
use std::time::Duration;

/// Summary statistics over a set of per-query latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean, microseconds (exact).
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Maximum, microseconds (exact).
    pub max_us: f64,
}

impl LatencyStats {
    /// Compute exact stats from raw microsecond samples (sorts in place).
    ///
    /// This is the **test oracle** for [`LatencyStats::from_histogram`]:
    /// the engine no longer retains per-query samples (unbounded for
    /// long streams); tests that want exact percentiles collect a
    /// bounded sample vector themselves and compare the two paths.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        Self {
            count,
            mean_us: sum as f64 / count as f64,
            p50_us: percentile(samples, 0.50),
            p95_us: percentile(samples, 0.95),
            p99_us: percentile(samples, 0.99),
            max_us: *samples.last().expect("non-empty") as f64,
        }
    }

    /// Read the summary from a streaming histogram: count/mean/max are
    /// exact, percentiles carry the log-bucket error documented in
    /// [`oreo_obs::RELATIVE_ERROR`].
    pub fn from_histogram(hist: &Histogram) -> Self {
        let s = hist.stats();
        if s.count == 0 {
            return Self::default();
        }
        Self {
            count: s.count,
            mean_us: s.mean,
            p50_us: s.p50,
            p95_us: s.p95,
            p99_us: s.p99,
            max_us: s.max as f64,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Duration → whole microseconds, saturating.
pub fn as_micros_u64(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_obs::RELATIVE_ERROR;
    use proptest::prelude::*;

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(
            LatencyStats::from_samples(&mut Vec::new()),
            LatencyStats::default()
        );
        assert_eq!(
            LatencyStats::from_histogram(&Histogram::new()),
            LatencyStats::default()
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let st = LatencyStats::from_samples(&mut s);
        assert_eq!(st.count, 100);
        assert_eq!(st.p50_us, 50.0);
        assert_eq!(st.p95_us, 95.0);
        assert_eq!(st.p99_us, 99.0);
        assert_eq!(st.max_us, 100.0);
        assert!((st.mean_us - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = vec![42];
        let st = LatencyStats::from_samples(&mut s);
        assert_eq!(st.p50_us, 42.0);
        assert_eq!(st.p99_us, 42.0);
        assert_eq!(st.max_us, 42.0);
        let h = Histogram::new();
        h.record(42);
        assert_eq!(
            LatencyStats::from_histogram(&h),
            st,
            "42 < 32? no — 42 \
            lands in a width-2 bucket; midpoint of [42,43] is 42"
        );
    }

    /// `exact` within one bucket's relative error of `approx`.
    fn close(approx: f64, exact: f64) {
        let tol = exact * RELATIVE_ERROR + 1e-9;
        assert!(
            (approx - exact).abs() <= tol,
            "histogram {approx} vs exact {exact} (tol {tol})"
        );
    }

    /// Mixed-magnitude latency samples: microseconds spanning the sub-µs
    /// exact range through multi-second outliers.
    fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0u64..5_000_000, 1..400)
    }

    proptest! {
        // Satellite: log-bucketed p50/p95/p99 stay within one bucket's
        // relative error of the exact sorted-sample oracle.
        #[test]
        fn histogram_percentiles_match_oracle(samples in samples_strategy()) {
            let mut samples = samples;
            let h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let approx = LatencyStats::from_histogram(&h);
            let exact = LatencyStats::from_samples(&mut samples);
            prop_assert_eq!(approx.count, exact.count);
            prop_assert!((approx.mean_us - exact.mean_us).abs() < 1e-6);
            prop_assert_eq!(approx.max_us, exact.max_us);
            close(approx.p50_us, exact.p50_us);
            close(approx.p95_us, exact.p95_us);
            close(approx.p99_us, exact.p99_us);
        }

        // Satellite: merging two histograms equals histogramming the
        // concatenation — the guarantee that lets per-worker histograms
        // fold into one summary.
        #[test]
        fn merge_equals_concatenation(
            a in samples_strategy(),
            b in samples_strategy(),
        ) {
            let ha = Histogram::new();
            for &v in &a {
                ha.record(v);
            }
            let hb = Histogram::new();
            for &v in &b {
                hb.record(v);
            }
            ha.merge(&hb);
            let concat = Histogram::new();
            for &v in a.iter().chain(&b) {
                concat.record(v);
            }
            prop_assert_eq!(ha.stats(), concat.stats());
            prop_assert_eq!(ha.bucket_counts(), concat.bucket_counts());
        }
    }
}
