//! A sharded multi-producer/multi-consumer work queue with batched pops and
//! work stealing — the front end the serving engine feeds scans through.
//!
//! Producers round-robin pushes across shards so no single mutex serializes
//! admission; each worker preferentially drains its *home* shard in FIFO
//! order and steals from the others when idle. With one shard and one
//! worker the queue degenerates to a strict FIFO, which is what gives the
//! engine's single-threaded mode exact parity with the sequential
//! simulator.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Shard<T> {
    items: Mutex<VecDeque<T>>,
    available: Condvar,
}

/// A fixed-shard MPMC queue. Unbounded; `push` never blocks.
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    cursor: AtomicUsize,
    len: AtomicUsize,
    closed: AtomicBool,
}

impl<T> ShardedQueue<T> {
    /// A queue with `shards` independent lanes (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    items: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            cursor: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Items currently enqueued (racy, for monitoring).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty (racy, for monitoring).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue one item on the next shard (round-robin).
    ///
    /// # Panics
    /// Panics if the queue is closed — producers must stop before close.
    pub fn push(&self, item: T) {
        assert!(!self.closed.load(Ordering::Acquire), "queue closed");
        let shard = &self.shards[self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len()];
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut q = shard.items.lock().expect("queue shard poisoned");
        q.push_back(item);
        drop(q);
        shard.available.notify_one();
    }

    /// Dequeue up to `max` items, preferring the `home` shard and stealing
    /// from the others when it is empty. Blocks while the queue is open and
    /// empty; returns `None` once the queue is closed *and* fully drained.
    pub fn pop_batch(&self, home: usize, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let n = self.shards.len();
        loop {
            // Home shard first (FIFO within a shard), then steal.
            for i in 0..n {
                let shard = &self.shards[(home + i) % n];
                let mut q = shard.items.lock().expect("queue shard poisoned");
                if !q.is_empty() {
                    let take = max.min(q.len());
                    let batch: Vec<T> = q.drain(..take).collect();
                    drop(q);
                    self.len.fetch_sub(batch.len(), Ordering::Relaxed);
                    return Some(batch);
                }
            }
            if self.closed.load(Ordering::Acquire) && self.is_empty() {
                return None;
            }
            // Park on the home shard; the timeout re-checks the steal lanes
            // and the closed flag (a single condvar cannot observe pushes
            // that landed on sibling shards).
            let shard = &self.shards[home % n];
            let guard = shard.items.lock().expect("queue shard poisoned");
            let _unused = shard
                .available
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("queue shard poisoned");
        }
    }

    /// Close the queue: wake all waiters; `pop_batch` returns `None` once
    /// the remaining items drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_shard_is_fifo() {
        let q = ShardedQueue::new(1);
        for i in 0..10 {
            q.push(i);
        }
        q.close();
        let mut got = Vec::new();
        while let Some(batch) = q.pop_batch(0, 3) {
            got.extend(batch);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_spreads_across_shards() {
        let q = ShardedQueue::new(4);
        for i in 0..8 {
            q.push(i);
        }
        assert_eq!(q.len(), 8);
        // each shard holds exactly 2 items
        for home in 0..4 {
            let batch = q.pop_batch(home, 2).unwrap();
            assert_eq!(batch.len(), 2);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn stealing_drains_foreign_shards() {
        let q = ShardedQueue::new(4);
        for i in 0..12 {
            q.push(i);
        }
        q.close();
        // a single consumer homed on shard 0 still sees everything
        let mut got = Vec::new();
        while let Some(batch) = q.pop_batch(0, 64) {
            got.extend(batch);
        }
        got.sort_unstable();
        assert_eq!(got, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(ShardedQueue::new(3));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        q.push(p * 1_000_000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|home| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(home, 16) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        assert_eq!(all.len(), 2_000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2_000, "duplicated or lost items");
    }

    #[test]
    fn pop_on_closed_empty_queue_returns_none() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2);
        q.close();
        assert!(q.pop_batch(0, 8).is_none());
    }
}
