//! # oreo-engine
//!
//! The concurrent serving layer: OREO turned from a one-query-at-a-time
//! simulation into a system where scans and reorganizations *overlap*.
//!
//! * [`queue`] — a sharded, batching MPMC work queue front end;
//! * [`engine`] — the [`Engine`]: a scan worker pool over snapshot-isolated
//!   table state ([`oreo_storage::TableSnapshot`]), a mutex-serialized
//!   [`oreo_core::Oreo`] bookkeeping core, and a dedicated background
//!   reorganizer thread that builds target layouts aside and publishes them
//!   atomically without blocking readers;
//! * [`reorg`] — the background build + the [`ReorgWindow`] measurement:
//!   the paper's reorganization delay Δ (§VI-D5) as a *measured* wall-clock
//!   and query-count window, not a configured constant;
//! * [`metrics`] — latency summaries over `oreo_obs` streaming
//!   histograms (fixed memory, live percentiles), with the exact
//!   sorted-sample path retained as a test oracle.
//!
//! The engine publishes into a live `oreo_obs::Registry` as it runs —
//! query/scan/reorg counters, streaming latency histograms, ledger and
//! α̂ gauges — and can journal every policy decision and query lifecycle
//! span ([`engine::ObsConfig`]): a FIFO run's journal replays to exactly
//! the engine's `CostLedger` (`oreo_core::CostLedger::replay`).
//!
//! With [`ServeMode::Tiered`] the engine backs every snapshot with an
//! [`oreo_storage::TieredStore`] generation directory: the reorganizer
//! persists its aside rewrite (write + fsync + atomic rename) *before* the
//! snapshot-pointer swap, readers pin the old generation until released,
//! and the run reports an empirical α — the measured rewrite cost over the
//! extrapolated full-scan cost ([`EngineStats::empirical_alpha`]) — from
//! the same stream that measures Δ, restoring Table I and §VI-D5 to one
//! experiment. Tiered scans read partition pages through a fixed-capacity
//! [`oreo_storage::BufferPool`] ([`EngineConfig::buffer_pool_bytes`]):
//! pool misses are real disk reads, hits are served from memory, and the
//! cold/warm split feeds [`EngineStats::alpha_cold`] /
//! [`EngineStats::alpha_warm`] so α̂ is extrapolated from measured *disk*
//! throughput instead of memory bandwidth.
//!
//! Bookkeeping (D-UMTS counters, layout-manager admission, the cost ledger)
//! is fed through the same [`oreo_core::Oreo`] code path as the sequential
//! simulator, so on a single-threaded FIFO stream the engine's decisions
//! and ledger match `oreo-sim` exactly
//! ([`EngineConfig::sequential_parity`]).
//!
//! ## Quickstart
//!
//! ```
//! use oreo_engine::{Engine, EngineConfig};
//! use oreo_core::OreoConfig;
//! use oreo_layout::{QdTreeGenerator, RangeLayout};
//! use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
//! use oreo_storage::TableBuilder;
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
//! let mut b = TableBuilder::new(Arc::clone(&schema));
//! for i in 0..2_000i64 {
//!     b.push_row(&[Scalar::Int((i * 17) % 1_000)]);
//! }
//! let table = Arc::new(b.finish());
//!
//! let config = OreoConfig {
//!     alpha: 10.0,
//!     partitions: 8,
//!     window: 50,
//!     generation_interval: 50,
//!     data_sample_rows: 500,
//!     ..Default::default()
//! };
//! let initial = Arc::new(RangeLayout::from_sample(&table, 0, config.partitions));
//! let engine = Engine::start(
//!     Arc::clone(&table),
//!     initial,
//!     Arc::new(QdTreeGenerator::new()),
//!     config,
//!     EngineConfig { workers: 2, ..Default::default() },
//! );
//! for i in 0..200i64 {
//!     let lo = (i * 5) % 900;
//!     let q = QueryBuilder::new(&schema).between("v", lo, lo + 50).build();
//!     engine.submit(q);
//! }
//! engine.drain();
//! let stats = engine.shutdown();
//! assert_eq!(stats.queries, 200);
//! assert_eq!(stats.ledger.queries, 200);
//! ```

pub mod engine;
pub mod ingest;
pub mod metrics;
pub mod queue;
pub mod reorg;

pub use engine::{
    DelaySemantics, Engine, EngineConfig, EngineStats, ObsConfig, QueryOutcome, ReorgBudget,
    ResultHandle, ServeMode, TenantSpec, TenantStats,
};
pub use metrics::LatencyStats;
pub use oreo_storage::{ApplyReceipt, IngestOp, MergePolicy};
pub use queue::ShardedQueue;
pub use reorg::{materialize, ReorgRequest, ReorgWindow};

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_core::{Oreo, OreoConfig};
    use oreo_layout::{QdTreeGenerator, RangeLayout};
    use oreo_query::{ColumnType, Query, QueryBuilder, Scalar, Schema};
    use oreo_storage::{Table, TableBuilder};
    use std::sync::Arc;

    fn table(n: i64) -> Arc<Table> {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int((i * 7) % 1000),
                Scalar::Int((i * 13) % 1000),
            ]);
        }
        Arc::new(b.finish())
    }

    fn drifting_queries(t: &Arc<Table>, n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                let col = if i < n / 2 { "a" } else { "b" };
                let lo = ((i * 37) % 900) as i64;
                QueryBuilder::new(t.schema())
                    .between(col, lo, lo + 60)
                    .build()
                    .with_seq(i as u64)
            })
            .collect()
    }

    fn config() -> OreoConfig {
        OreoConfig {
            alpha: 5.0,
            window: 50,
            generation_interval: 50,
            data_sample_rows: 800,
            partitions: 16,
            seed: 11,
            ..Default::default()
        }
    }

    fn start(t: &Arc<Table>, oreo: OreoConfig, cfg: EngineConfig) -> Engine {
        let initial = Arc::new(RangeLayout::from_sample(t, 0, oreo.partitions));
        Engine::start(
            Arc::clone(t),
            initial,
            Arc::new(QdTreeGenerator::new()),
            oreo,
            cfg,
        )
    }

    #[test]
    fn single_worker_matches_sequential_oreo_exactly() {
        let t = table(3000);
        let queries = drifting_queries(&t, 500);

        // sequential reference
        let initial = Arc::new(RangeLayout::from_sample(&t, 0, config().partitions));
        let mut reference = Oreo::new(
            Arc::clone(&t),
            initial,
            Arc::new(QdTreeGenerator::new()),
            config(),
        );
        for q in &queries {
            reference.observe(q);
        }

        let engine = start(&t, config(), EngineConfig::sequential_parity());
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        let stats = engine.shutdown();

        assert_eq!(stats.ledger, *reference.ledger(), "ledger diverged");
        assert_eq!(stats.switches, reference.switches());
        assert_eq!(stats.final_physical, reference.physical_layout());
        assert_eq!(stats.final_logical, reference.logical_layout());
        assert_eq!(stats.max_states_seen, reference.max_states_seen());
    }

    #[test]
    fn concurrent_scans_return_exact_row_sets() {
        let t = table(2000);
        let queries = drifting_queries(&t, 300);
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 4,
                batch: 8,
                ..Default::default()
            },
        );
        let handles: Vec<_> = queries
            .iter()
            .map(|q| engine.submit_tracked(q.clone()))
            .collect();
        for (q, h) in queries.iter().zip(handles) {
            let out = h.wait();
            let expected: Vec<u32> = (0..t.num_rows() as u32)
                .filter(|&r| t.row_matches(r as usize, &q.predicate))
                .collect();
            assert_eq!(out.scan.matches, expected, "row set diverged at {}", q.seq);
        }
        let stats = engine.shutdown();
        assert_eq!(stats.queries, 300);
        // every decision was eventually built and published
        assert_eq!(stats.snapshots_published, stats.switches);
        assert_eq!(stats.windows.len() as u64, stats.switches);
        assert!(stats.switches >= 1, "stream never triggered a reorg");
    }

    #[test]
    fn measured_delay_lands_switches_at_publish_time() {
        let t = table(2000);
        let queries = drifting_queries(&t, 400);
        let engine = start(
            &t,
            // huge configured delay: only complete_reorg can land switches
            config().with_delay(1_000_000),
            EngineConfig {
                workers: 2,
                delay: DelaySemantics::Measured,
                ..Default::default()
            },
        );
        let initial = engine.pin().layout();
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        let stats = engine.shutdown();
        assert!(stats.switches >= 1);
        assert_ne!(
            stats.final_physical, initial,
            "measured switch never landed"
        );
        assert!(stats.mean_delta_queries().is_some());
        for w in &stats.windows {
            assert!(w.wall >= w.build);
            assert_eq!(w.rows, 2000);
        }
    }

    #[test]
    fn disabled_reorg_keeps_initial_snapshot() {
        let t = table(1500);
        let queries = drifting_queries(&t, 300);
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 2,
                background_reorg: false,
                ..Default::default()
            },
        );
        let initial_epoch = engine.epoch();
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        assert_eq!(engine.epoch(), initial_epoch);
        let stats = engine.shutdown();
        assert_eq!(stats.snapshots_published, 0);
        assert!(stats.windows.is_empty());
        assert_eq!(stats.queries, 300);
    }

    fn tmproot(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oreo-engine-{tag}-{}-{}",
            std::process::id(),
            rand::random::<u32>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Tiered serving: every publish commits an on-disk generation, old
    /// generations are garbage-collected once unpinned, and the same run
    /// yields an empirical α (write bill vs scan throughput) next to the
    /// measured Δ.
    #[test]
    fn tiered_mode_persists_generations_and_measures_alpha() {
        let t = table(2000);
        let queries = drifting_queries(&t, 400);
        let root = tmproot("tiered");
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 2,
                ..Default::default()
            }
            .tiered(&root),
        );
        assert!(root.join("gen-000001").exists(), "initial gen persisted");
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        let store_gens = engine.tiered().expect("tiered store").generations_on_disk();
        assert!(!store_gens.is_empty());
        let stats = engine.shutdown();
        assert!(stats.switches >= 1, "stream never reorganized");
        assert_eq!(stats.mode.label(), "tiered");
        assert!(stats.tiered_errors.is_empty(), "{:?}", stats.tiered_errors);
        for w in &stats.windows {
            assert!(w.bytes_written > 0, "tiered rewrite wrote nothing");
            assert!(w.generation >= 2);
            assert!(w.wall >= w.build + w.write, "Δ window excludes the write");
        }
        // bytes accounting is on encoded file sizes and α is measurable
        assert!(stats.bytes_scanned > 0);
        assert!(stats.table_bytes > 0);
        assert!(stats.scan_seconds > 0.0);
        let alpha = stats.empirical_alpha().expect("α measurable");
        assert!(alpha > 0.0, "α = {alpha}");
        assert_eq!(
            stats.reorg_bytes_written(),
            stats.windows.iter().map(|w| w.bytes_written).sum::<u64>()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Memory-mode runs report scan bytes too (the satellite fix): the
    /// ScanStats/SnapshotScan byte accounting must make Memory and Tiered
    /// reports comparable.
    #[test]
    fn memory_mode_reports_scan_bytes() {
        let t = table(1000);
        let queries = drifting_queries(&t, 100);
        let engine = start(&t, config(), EngineConfig::default().with_workers(2));
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        let stats = engine.shutdown();
        assert_eq!(stats.mode, ServeMode::Memory);
        assert!(stats.bytes_scanned > 0, "memory scans must report bytes");
        assert!(stats.table_bytes > 0);
        for w in &stats.windows {
            assert_eq!(w.bytes_written, 0);
            assert_eq!(w.generation, 0);
        }
        // no physical rewrite → no empirical α (build-only ratios would
        // under-report Table I's write-inclusive quantity)
        assert_eq!(stats.empirical_alpha(), None);
    }

    /// Restarting a tiered engine on a root left behind by a previous run
    /// must not collide with the existing generations: the new engine
    /// continues the sequence and supersedes them.
    #[test]
    fn tiered_engine_restarts_on_existing_root() {
        let t = table(1200);
        let queries = drifting_queries(&t, 200);
        let root = tmproot("restart");
        let run = |expect_min_gen: u64| {
            let engine = start(
                &t,
                config(),
                EngineConfig {
                    workers: 1,
                    ..Default::default()
                }
                .tiered(&root),
            );
            for q in &queries {
                engine.submit(q.clone());
            }
            engine.drain();
            let current = engine.tiered().expect("tiered").current().number();
            assert!(current >= expect_min_gen, "{current} < {expect_min_gen}");
            engine.shutdown();
            current
        };
        let first = run(1);
        // second engine on the same root: continues past the survivor
        let second = run(first + 1);
        assert!(second > first);
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A journal-enabled FIFO run: the drained event stream replays to the
    /// live ledger bit-for-bit, every query's lifecycle span is complete,
    /// and the registry's counters agree with the shutdown stats.
    #[test]
    fn journal_and_registry_track_a_fifo_run() {
        use oreo_core::CostLedger;
        use oreo_obs::EventKind;

        let t = table(2000);
        let queries = drifting_queries(&t, 300);
        let engine = start(
            &t,
            config(),
            EngineConfig::sequential_parity().with_journal_capacity(16_384),
        );
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();

        // live registry readable mid-flight (before shutdown)
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("engine.queries_submitted"), Some(300));
        assert_eq!(snap.counter("engine.queries_completed"), Some(300));
        let latency = snap.histogram("engine.latency_us").expect("histogram");
        assert_eq!(latency.count, 300);

        let stats = engine.shutdown();
        assert_eq!(stats.events_dropped, 0, "journal sized for the run");
        assert!(!stats.events.is_empty());
        // seq-sorted and unique
        assert!(stats.events.windows(2).all(|w| w[0].seq < w[1].seq));
        // ledger replay parity (satellite: event-level EXACT)
        assert_eq!(CostLedger::replay(&stats.events), stats.ledger);
        // span coverage: each submit_id appears as enqueue → pickup →
        // scan → complete exactly once
        let count_of = |pred: &dyn Fn(&EventKind) -> bool| {
            stats.events.iter().filter(|e| pred(&e.kind)).count() as u64
        };
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::QueryEnqueued { .. })),
            300
        );
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::QueryPickup { .. })),
            300
        );
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::QueryScanned { .. })),
            300
        );
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::QueryCompleted { .. })),
            300
        );
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::QueryObserved { .. })),
            stats.ledger.queries
        );
        assert_eq!(
            count_of(&|k| matches!(k, EventKind::SwitchDecided { .. })),
            stats.switches
        );
        // latency stats came from the histogram; count/max are exact
        assert_eq!(stats.latency.count, 300);
        assert!(stats.latency.p50_us <= stats.latency.p99_us);
        // trace renders one line per event + header
        let trace = oreo_obs::render_trace(&stats.events);
        assert_eq!(trace.lines().count(), stats.events.len() + 1);
    }

    /// The metrics exporter emits ≥2 JSONL snapshots (initial + final),
    /// with cell label, elapsed time, and the required keys.
    #[test]
    fn exporter_writes_periodic_snapshots() {
        use engine::ObsConfig;

        let t = table(1500);
        let queries = drifting_queries(&t, 200);
        let dir = tmproot("metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let engine = start(
            &t,
            config(),
            EngineConfig::default().with_workers(2).with_obs(ObsConfig {
                metrics_json: Some(path.clone()),
                metrics_interval: Some(std::time::Duration::from_millis(10)),
                label: "test-cell".into(),
                ..Default::default()
            }),
        );
        for q in &queries {
            engine.submit(q.clone());
        }
        engine.drain();
        let stats = engine.shutdown();
        assert_eq!(stats.queries, 200);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "want ≥2 snapshots, got {}", lines.len());
        for line in &lines {
            assert!(line.contains("\"cell\":\"test-cell\""));
            assert!(line.contains("\"elapsed_s\":"));
            assert!(line.contains("\"engine.latency_us\":{"));
        }
        // the final snapshot reflects the drained run
        let last = lines.last().unwrap();
        assert!(last.contains("\"engine.queries_completed\":200"));
        assert!(last.contains("\"pool.hit_rate\":"));
        assert!(last.contains("\"alpha.hat\":"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sentinel_append(i: i64) -> IngestOp {
        // a-values ≥ 5000 are outside the base domain (base a,b < 1000), so
        // sentinel queries hit only ingested rows.
        IngestOp::Append {
            values: vec![
                Scalar::Int(10_000 + i),
                Scalar::Int(5_000 + i),
                Scalar::Int(0),
            ],
        }
    }

    /// The write path end to end (memory serving): appends/updates/deletes
    /// are immediately visible through the served overlay, a background
    /// reorganization folds them into the base under stable row ids, and
    /// answers are identical before and after the fold.
    #[test]
    fn ingest_is_visible_exact_and_folded() {
        let t = table(2000);
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for i in 0..40 {
            let r = engine.ingest(&[sentinel_append(i)]).unwrap();
            assert_eq!(r.appended, 1);
            assert_eq!(r.seq, i as u64 + 1);
        }
        // delete base rows 10..20, then update delta row 2000 (the first
        // append): tombstone + re-append under id 2040.
        let deletes: Vec<IngestOp> = (10u32..20).map(|row| IngestOp::Delete { row }).collect();
        assert_eq!(engine.ingest(&deletes).unwrap().deleted, 10);
        engine
            .ingest(&[IngestOp::Update {
                row: 2000,
                values: vec![Scalar::Int(10_000), Scalar::Int(5_000), Scalar::Int(0)],
            }])
            .unwrap();
        assert_eq!(engine.live_rows(), 2000 + 41 - 11);

        let q_delta = QueryBuilder::new(t.schema())
            .between("a", 5_000, 5_039)
            .build();
        let mut want_delta: Vec<u32> = (2001..2040).collect();
        want_delta.push(2040); // the update's re-append (a = 5000)
        let out = engine.submit_tracked(q_delta.clone()).wait();
        assert_eq!(out.scan.matches, want_delta, "delta rows served");

        let q_base = QueryBuilder::new(t.schema()).between("a", 70, 70).build();
        let want_base: Vec<u32> = (0..2000u32)
            .filter(|&r| (i64::from(r) * 7) % 1000 == 70 && !(10..20).contains(&r))
            .collect();
        let out = engine.submit_tracked(q_base.clone()).wait();
        assert_eq!(out.scan.matches, want_base, "tombstoned base rows hidden");

        // Drive the drifting stream until switches fold the deltas in.
        for q in drifting_queries(&t, 500) {
            engine.submit(q);
        }
        engine.drain();
        let out = engine.submit_tracked(q_delta).wait();
        assert_eq!(out.scan.matches, want_delta, "post-fold answers identical");
        let out = engine.submit_tracked(q_base).wait();
        assert_eq!(out.scan.matches, want_base);

        let stats = engine.shutdown();
        assert!(stats.switches >= 1, "stream never reorganized");
        assert!(stats.folds() >= 1, "no reorganization folded the deltas");
        assert_eq!(stats.folded_rows(), 41, "all delta rows folded once");
        assert_eq!(stats.ingest_batches, 42);
        assert_eq!(stats.rows_appended, 41);
        assert_eq!(stats.rows_deleted, 11);
        assert_eq!(stats.delta_rows, 0, "nothing left unfolded");
        assert!(stats.delta_bytes_scanned > 0, "pre-fold scans read runs");
        assert!(stats.write_amplification().unwrap() >= 1.0);
        // merge + fold work entered the ledger as compaction
        assert!(stats.ledger.compactions >= 41);
        assert!(stats.ledger.compaction_cost > 0.0);
        assert!(stats.ledger.total() > stats.ledger.query_cost + stats.ledger.reorg_cost);
    }

    /// Tiered serving: every accepted batch is WAL-logged before it is
    /// applied, folds GC the covered records, and the pooled byte
    /// accounting invariant holds with delta scans in the mix.
    #[test]
    fn tiered_ingest_wal_logs_and_folds_truncate() {
        let t = table(1500);
        let root = tmproot("ingest");
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 2,
                ..Default::default()
            }
            .tiered(&root),
        );
        let wal_path = root.join("wal.log");
        assert!(wal_path.exists(), "tiered engine opens a WAL");
        for i in 0..30 {
            engine.ingest(&[sentinel_append(i)]).unwrap();
        }
        let wal_size = std::fs::metadata(&wal_path).unwrap().len();
        assert!(wal_size > 8, "records appended past the magic");

        let q = QueryBuilder::new(t.schema())
            .between("a", 5_000, 5_029)
            .build();
        let want: Vec<u32> = (1500..1530).collect();
        let out = engine.submit_tracked(q.clone()).wait();
        assert_eq!(
            out.scan.matches, want,
            "deltas visible through pooled scans"
        );

        for q in drifting_queries(&t, 400) {
            engine.submit(q);
        }
        engine.drain();
        let out = engine.submit_tracked(q).wait();
        assert_eq!(out.scan.matches, want, "post-fold answers identical");

        let stats = engine.shutdown();
        assert!(stats.tiered_errors.is_empty(), "{:?}", stats.tiered_errors);
        assert!(stats.switches >= 1);
        assert!(stats.folds() >= 1);
        assert_eq!(stats.folded_rows(), 30);
        assert_eq!(stats.delta_rows, 0);
        assert!(
            std::fs::metadata(&wal_path).unwrap().len() < wal_size,
            "fold must truncate the covered WAL records"
        );
        assert_eq!(
            stats.io_cold_bytes + stats.io_cached_bytes + stats.delta_bytes_scanned,
            stats.bytes_scanned,
            "pooled byte accounting must stay exact with deltas"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A failed WAL (here: the path is a directory) degrades ingestion to
    /// memory-only — writes still succeed and serve, the reorganizer stays
    /// alive, and the degradation lands in `tiered_errors` (voiding α) —
    /// the same contract as failed tiered publishes.
    #[test]
    fn wal_failure_degrades_ingestion_not_the_engine() {
        let t = table(1200);
        let root = tmproot("waldir");
        std::fs::create_dir_all(root.join("wal.log")).unwrap();
        let engine = start(
            &t,
            config(),
            EngineConfig {
                workers: 1,
                ..Default::default()
            }
            .tiered(&root),
        );
        engine.ingest(&[sentinel_append(0)]).unwrap();
        let q = QueryBuilder::new(t.schema())
            .between("a", 5_000, 5_000)
            .build();
        let out = engine.submit_tracked(q).wait();
        assert_eq!(out.scan.matches, vec![1200], "memory-only ingest serves");
        for q in drifting_queries(&t, 300) {
            engine.submit(q);
        }
        engine.drain();
        let stats = engine.shutdown();
        assert!(!stats.tiered_errors.is_empty(), "degradation recorded");
        assert!(
            stats.tiered_errors[0].contains("wal open"),
            "{:?}",
            stats.tiered_errors
        );
        assert!(stats.switches >= 1, "reorganizer must stay alive");
        assert_eq!(stats.empirical_alpha(), None, "degraded run reports no α");
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Readers pinning concurrently with publishes never observe a snapshot
    /// that loses or duplicates rows — the epoch/CoW publish invariant.
    #[test]
    fn pin_publish_never_loses_or_duplicates_rows() {
        use oreo_storage::{SnapshotCell, TableSnapshot};
        let t = table(600);
        let n = t.num_rows();
        let expected: Vec<u32> = (0..n as u32).collect();
        let cell = Arc::new(SnapshotCell::new(TableSnapshot::build(
            &t,
            &vec![0u32; n],
            1,
            0,
            "init",
        )));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let publisher = {
            let cell = Arc::clone(&cell);
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for gen in 1..40u32 {
                    let k = (gen % 7 + 1) as usize;
                    let assignment: Vec<u32> = (0..t.num_rows())
                        .map(|r| ((r as u32).wrapping_mul(gen)) % k as u32)
                        .collect();
                    cell.publish(TableSnapshot::build(
                        &t,
                        &assignment,
                        k,
                        u64::from(gen),
                        "gen",
                    ));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut pins = 0u64;
                    let mut last_epoch = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = cell.pin();
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        assert_eq!(snap.row_cover(), expected, "partition cover broken");
                        pins += 1;
                    }
                    pins
                })
            })
            .collect();
        publisher.join().unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(cell.epoch(), 40);
    }
}
