//! The engine's write-path state and the fold (compact-and-switch) build.
//!
//! `IngestState` is everything `Engine::ingest` mutates, serialized
//! behind one mutex (lock order: ingest → core — the write path charges
//! merge work into the bookkeeping core while holding its own lock, never
//! the other way around). It owns:
//!
//! * the [`DeltaBuffer`] — delta runs + tombstones the scans overlay;
//! * the WAL (tiered serving only) — the fsync'd append is the ack point;
//! * the *base identity*: the table the served snapshots were built from
//!   and the global row id each base position carries. Folds replace both.
//!
//! `build_fold_snapshot` is the reorganizer acting as compactor: given a
//! frozen [`FoldCapture`], it carves tombstoned rows out of the base and
//! the captured runs, concatenates the survivors, and routes the merged
//! table through the target layout — one rewrite that is simultaneously
//! the layout switch (billed α at decision time) and the compaction.

use oreo_layout::SharedSpec;
use oreo_storage::{
    concat_tables, DeltaBuffer, FoldCapture, LayoutId, Result, Table, TableSnapshot, Wal,
};
use std::sync::Arc;

/// Mutable write-path state behind the engine's ingest lock.
pub(crate) struct IngestState {
    /// Delta runs, tombstones, sequence/row-id counters.
    pub buffer: DeltaBuffer,
    /// The write-ahead log (tiered serving only). `None` after a WAL
    /// failure degraded ingestion to memory-only, and always in memory
    /// serving.
    pub wal: Option<Wal>,
    /// The table the served base partitions were projected from. Starts as
    /// the boot table; each completed fold replaces it with the merged
    /// table.
    pub base: Arc<Table>,
    /// Global row id of each `base` position. Identity at boot; folds
    /// install the concatenated surviving ids.
    pub base_ids: Arc<[u32]>,
    /// True while `base_ids[i] == i` — lets the no-ingest reorganization
    /// path stay bit-for-bit the pre-ingestion build.
    pub ids_identity: bool,
    /// Highest ingest sequence folded into `base` (the WAL GC watermark).
    pub folded: u64,
    /// Write-path degradations (WAL open/append/truncate failures). Merged
    /// into `EngineStats::tiered_errors` at shutdown.
    pub errors: Vec<String>,
    /// Batches accepted.
    pub batches: u64,
    /// Rows appended (including the re-append half of updates).
    pub rows_appended: u64,
    /// Rows tombstoned.
    pub rows_deleted: u64,
    /// Rows written building/merging delta runs — the write-amplification
    /// numerator over `rows_appended`.
    pub rows_written: u64,
    /// WAL size after the last append/truncation.
    pub wal_bytes: u64,
}

impl IngestState {
    /// Fresh state over `base` with identity row ids.
    pub fn new(
        buffer: DeltaBuffer,
        wal: Option<Wal>,
        base: Arc<Table>,
        errors: Vec<String>,
    ) -> Self {
        let base_ids: Vec<u32> = (0..base.num_rows() as u32).collect();
        Self {
            buffer,
            wal,
            base,
            base_ids: base_ids.into(),
            ids_identity: true,
            folded: 0,
            errors,
            batches: 0,
            rows_appended: 0,
            rows_deleted: 0,
            rows_written: 0,
            wal_bytes: 0,
        }
    }
}

/// What [`build_fold_snapshot`] produced: the snapshot to publish and, when
/// a fold actually merged deltas, the new base identity to install.
pub(crate) struct FoldBuild {
    /// The materialized target-layout snapshot (delta overlay not yet
    /// attached — the publisher re-reads the live overlay under the ingest
    /// lock).
    pub snapshot: TableSnapshot,
    /// `Some((merged_table, merged_ids))` when `capture` folded deltas in;
    /// `None` for a pure layout rewrite.
    pub merged: Option<(Arc<Table>, Arc<[u32]>)>,
}

/// Build the target layout's snapshot, folding `capture` (if any) into the
/// base: tombstoned rows are carved out of the base and the captured runs,
/// survivors concatenate (base first, then runs oldest-first — global ids
/// stay ascending), and the merged table is routed by `spec`.
///
/// With no capture and identity ids this is exactly the pre-ingestion
/// [`crate::reorg::materialize`] — the no-ingest bit-parity path.
pub(crate) fn build_fold_snapshot(
    base: &Arc<Table>,
    base_ids: &Arc<[u32]>,
    ids_identity: bool,
    capture: Option<&FoldCapture>,
    spec: &SharedSpec,
    target: LayoutId,
) -> Result<FoldBuild> {
    let Some(cap) = capture else {
        let snapshot = if ids_identity {
            crate::reorg::materialize(base, spec, target)
        } else {
            // Prior folds re-identified the base rows; route positions,
            // carry the surviving ids.
            let assignment = spec.assign(base);
            TableSnapshot::build_with_rows(
                base,
                base_ids,
                &assignment,
                spec.k(),
                target,
                spec.describe(),
            )
        };
        return Ok(FoldBuild {
            snapshot,
            merged: None,
        });
    };

    let dead = |gid: u32| cap.tombstones.binary_search(&gid).is_ok();
    let keep: Vec<u32> = (0..base.num_rows() as u32)
        .filter(|&pos| !dead(base_ids[pos as usize]))
        .collect();
    let mut ids: Vec<u32> = keep.iter().map(|&pos| base_ids[pos as usize]).collect();
    let mut parts: Vec<Table> = Vec::with_capacity(1 + cap.runs.len());
    parts.push(base.project_rows(&keep));
    for run in &cap.runs {
        // A tombstone can name a delta row (update/delete of a row
        // ingested earlier); carve those out of the run too.
        let live: Vec<u32> = (0..run.rows.len() as u32)
            .filter(|&pos| !dead(run.rows[pos as usize]))
            .collect();
        if live.is_empty() {
            continue;
        }
        ids.extend(live.iter().map(|&pos| run.rows[pos as usize]));
        parts.push(run.data.project_rows(&live));
    }
    let merged = Arc::new(concat_tables(base.schema(), &parts)?);
    let assignment = spec.assign(&merged);
    let snapshot = TableSnapshot::build_with_rows(
        &merged,
        &ids,
        &assignment,
        spec.k(),
        target,
        spec.describe(),
    );
    Ok(FoldBuild {
        snapshot,
        merged: Some((merged, ids.into())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::RangeLayout;
    use oreo_query::{ColumnType, Scalar, Schema};
    use oreo_storage::{IngestOp, MergePolicy, TableBuilder};

    fn base(n: i64) -> Arc<Table> {
        let s = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i)]);
        }
        Arc::new(b.finish())
    }

    fn append(v: i64) -> IngestOp {
        IngestOp::Append {
            values: vec![Scalar::Int(v)],
        }
    }

    #[test]
    fn fold_carves_tombstones_and_appends_runs_with_stable_ids() {
        let t = base(100);
        let mut buf =
            DeltaBuffer::new(Arc::clone(t.schema()), 100, MergePolicy::KBinomial { k: 2 });
        buf.apply(&[append(1000), append(1001)]).unwrap(); // ids 100, 101
        buf.apply(&[
            IngestOp::Update {
                row: 100,
                values: vec![Scalar::Int(2000)],
            }, // tombstone 100, append id 102
            IngestOp::Delete { row: 7 }, // base tombstone
        ])
        .unwrap();
        let cap = buf.freeze_for_fold().unwrap();
        let spec: SharedSpec = Arc::new(RangeLayout::from_sample(&t, 0, 4));
        let ids: Arc<[u32]> = (0..100u32).collect::<Vec<_>>().into();
        let built = build_fold_snapshot(&t, &ids, true, Some(&cap), &spec, 5).unwrap();
        let (merged, merged_ids) = built.merged.expect("fold merged");
        // 100 base − 1 tombstone + 3 delta − 1 delta tombstone = 101 rows
        assert_eq!(merged.num_rows(), 101);
        assert_eq!(built.snapshot.total_rows(), 101);
        assert!(!merged_ids.iter().any(|&g| g == 7 || g == 100));
        assert!(merged_ids.contains(&102));
        // ids ascend: base survivors then runs oldest-first
        assert!(merged_ids.windows(2).all(|w| w[0] < w[1]));
        // the folded rows are queryable through the snapshot
        let q = oreo_query::QueryBuilder::new(t.schema())
            .between("v", 2000, 2000)
            .build();
        let scan = built.snapshot.scan(&q.predicate);
        assert_eq!(scan.matches, vec![102]);
    }

    #[test]
    fn no_capture_non_identity_routes_surviving_ids() {
        let t = base(10);
        // pretend an earlier fold dropped id 3: base has 9 rows, ids skip 3
        let keep: Vec<u32> = (0..10u32).filter(|&i| i != 3).collect();
        let shrunk = Arc::new(t.project_rows(&keep));
        let ids: Arc<[u32]> = keep.into();
        let spec: SharedSpec = Arc::new(RangeLayout::from_sample(&shrunk, 0, 2));
        let built = build_fold_snapshot(&shrunk, &ids, false, None, &spec, 1).unwrap();
        assert!(built.merged.is_none());
        let mut cover = built.snapshot.row_cover();
        cover.sort_unstable();
        assert_eq!(cover, ids.to_vec());
    }
}
