//! Multi-tenant engine invariants.
//!
//! The load-bearing property of the N-tenant refactor is *per-tenant
//! ledger parity*: serving N tenants interleaved through one engine — one
//! worker pool, one buffer pool, one reorganization scheduler — must
//! produce, for every tenant, a `CostLedger` byte-identical to an
//! independent single-tenant engine run over that tenant's substream
//! alone. The tests here drive interleaved query/ingest/fold streams
//! (randomized and deterministic, memory and tiered+pooled) against that
//! oracle, and a zero-budget starvation test asserts the scheduler's
//! force-admit bound: every tenant's due switch lands within a bounded
//! deferral window even when the α budget admits nothing.

use oreo_core::OreoConfig;
use oreo_engine::{Engine, EngineConfig, EngineStats, ReorgBudget, TenantSpec};
use oreo_layout::RangeLayout;
use oreo_query::{ColumnType, Query, QueryBuilder, Scalar, Schema};
use oreo_storage::{IngestOp, Table, TableBuilder};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn table(kind: u64, n: i64) -> Arc<Table> {
    let schema = Arc::new(Schema::from_pairs([
        ("ts", ColumnType::Timestamp),
        ("a", ColumnType::Int),
        ("b", ColumnType::Int),
    ]));
    let mut b = TableBuilder::new(Arc::clone(&schema));
    for i in 0..n {
        b.push_row(&[
            Scalar::Int(i),
            Scalar::Int((i * (7 + kind as i64)) % 1000),
            Scalar::Int((i * (13 + kind as i64)) % 1000),
        ]);
    }
    Arc::new(b.finish())
}

fn oreo_config(seed: u64) -> OreoConfig {
    OreoConfig {
        alpha: 5.0,
        window: 40,
        generation_interval: 40,
        data_sample_rows: 400,
        partitions: 8,
        seed,
        ..Default::default()
    }
}

fn tenant_spec(name: &str, t: &Arc<Table>, oreo: OreoConfig) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        table: Arc::clone(t),
        initial_spec: Arc::new(RangeLayout::from_sample(t, 0, oreo.partitions)),
        generator: Arc::new(oreo_layout::QdTreeGenerator::new()),
        oreo,
    }
}

fn tmproot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oreo-mt-{tag}-{}-{}",
        std::process::id(),
        rand::random::<u32>()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One step of a tenant's substream.
#[derive(Clone, Debug)]
enum Op {
    Query(Query),
    Ingest(Vec<IngestOp>),
}

/// Drive `script` through `engine` in lockstep: each query completes (and,
/// if it decided a switch, the switch *publishes*) before the next op
/// runs. The quiesce after every decision is what makes fold contents —
/// and therefore compaction charges — deterministic, so the interleaved
/// run is byte-comparable to the per-tenant oracles.
fn drive(engine: &Engine, script: &[(usize, Op)]) {
    let mut switches = 0u64;
    for (tenant, op) in script {
        match op {
            Op::Query(q) => {
                let out = engine.submit_tracked_to(*tenant, q.clone()).wait();
                if out.decision.is_some() {
                    switches += 1;
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while engine.snapshots_published() < switches {
                        assert!(Instant::now() < deadline, "decided switch never published");
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
            Op::Ingest(ops) => {
                engine.ingest_to(*tenant, ops).expect("ingest accepted");
            }
        }
    }
}

/// The oracle: the tenant's substream alone, through a fresh single-tenant
/// engine with the same configuration.
fn run_solo(t: &Arc<Table>, oreo: OreoConfig, config: EngineConfig, ops: &[Op]) -> EngineStats {
    let initial = Arc::new(RangeLayout::from_sample(t, 0, oreo.partitions));
    let engine = Engine::start(
        Arc::clone(t),
        initial,
        Arc::new(oreo_layout::QdTreeGenerator::new()),
        oreo,
        config,
    );
    let script: Vec<(usize, Op)> = ops.iter().map(|op| (0, op.clone())).collect();
    drive(&engine, &script);
    engine.drain();
    engine.shutdown()
}

/// Materialize a proptest-generated `(tenant, kind, param)` trace into the
/// interleaved script plus each tenant's substream (identical objects, so
/// any divergence is the engine's, not the generator's).
fn materialize(tables: &[Arc<Table>], trace: &[(u8, u8, u16)]) -> (Vec<(usize, Op)>, Vec<Vec<Op>>) {
    let n = tables.len();
    let mut script = Vec::with_capacity(trace.len());
    let mut per_tenant: Vec<Vec<Op>> = vec![Vec::new(); n];
    let mut query_seq = vec![0u64; n];
    let mut ingest_seq = vec![0i64; n];
    for &(tenant, kind, param) in trace {
        let tenant = tenant as usize % n;
        let op = if kind < 8 {
            let col = if kind % 2 == 0 { "a" } else { "b" };
            let lo = i64::from(param) % 900;
            let q = QueryBuilder::new(tables[tenant].schema())
                .between(col, lo, lo + 60)
                .build()
                .with_seq(query_seq[tenant]);
            query_seq[tenant] += 1;
            Op::Query(q)
        } else {
            // Sentinel appends outside the base domain (a, b < 1000).
            let base = ingest_seq[tenant];
            ingest_seq[tenant] += 3;
            Op::Ingest(
                (base..base + 3)
                    .map(|i| IngestOp::Append {
                        values: vec![
                            Scalar::Int(10_000 + i),
                            Scalar::Int(5_000 + i),
                            Scalar::Int(0),
                        ],
                    })
                    .collect(),
            )
        };
        per_tenant[tenant].push(op.clone());
        script.push((tenant, op));
    }
    (script, per_tenant)
}

/// Assert tenant `i` of the interleaved run matches its solo oracle
/// exactly — ledger byte-for-byte, switch count, and final layouts.
fn assert_tenant_parity(multi: &EngineStats, i: usize, solo: &EngineStats, label: &str) {
    let ten = &multi.tenants[i];
    assert_eq!(
        ten.ledger, solo.ledger,
        "{label}: tenant {i} ledger diverged from its solo run"
    );
    assert_eq!(ten.switches, solo.switches, "{label}: tenant {i} switches");
    assert_eq!(
        ten.final_physical, solo.final_physical,
        "{label}: tenant {i} physical layout"
    );
    assert_eq!(
        ten.final_logical, solo.final_logical,
        "{label}: tenant {i} logical layout"
    );
}

fn parity_case(trace: &[(u8, u8, u16)], tiered: bool) {
    let tables = [table(0, 1200), table(3, 1200)];
    let (script, per_tenant) = materialize(&tables, trace);
    let names = ["alpha", "beta"];
    let (config, root) = if tiered {
        let root = tmproot("parity");
        (EngineConfig::sequential_parity().tiered(&root), Some(root))
    } else {
        (EngineConfig::sequential_parity(), None)
    };
    let specs = (0..2)
        .map(|i| tenant_spec(names[i], &tables[i], oreo_config(17 + i as u64)))
        .collect();
    let engine = Engine::start_tenants(specs, config);
    drive(&engine, &script);
    engine.drain();
    let multi = engine.shutdown();
    assert!(multi.tiered_errors.is_empty(), "{:?}", multi.tiered_errors);
    for i in 0..2 {
        let (solo_cfg, solo_root) = if tiered {
            let r = tmproot(names[i]);
            (EngineConfig::sequential_parity().tiered(&r), Some(r))
        } else {
            (EngineConfig::sequential_parity(), None)
        };
        let solo = run_solo(
            &tables[i],
            oreo_config(17 + i as u64),
            solo_cfg,
            &per_tenant[i],
        );
        assert!(solo.tiered_errors.is_empty(), "{:?}", solo.tiered_errors);
        let label = if tiered { "tiered" } else { "memory" };
        assert_tenant_parity(&multi, i, &solo, label);
        if let Some(r) = solo_root {
            let _ = std::fs::remove_dir_all(r);
        }
    }
    if let Some(r) = root {
        let _ = std::fs::remove_dir_all(r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Random interleavings of two tenants' query/ingest/fold streams:
    /// per-tenant ledgers must be byte-identical to independent
    /// single-tenant runs, in memory serving.
    #[test]
    fn interleaved_tenants_match_solo_runs_memory(
        trace in proptest::collection::vec((0..2u8, 0..10u8, any::<u16>()), 40..90)
    ) {
        parity_case(&trace, false);
    }

    /// The same invariant through the full disk path: tiered stores under
    /// per-tenant subdirectories, scans through the one shared buffer
    /// pool, folds persisting generations.
    #[test]
    fn interleaved_tenants_match_solo_runs_tiered(
        trace in proptest::collection::vec((0..2u8, 0..10u8, any::<u16>()), 30..60)
    ) {
        parity_case(&trace, true);
    }
}

/// Deterministic three-tenant fold parity through tiered+pooled serving,
/// plus the layout/namespace contracts the refactor promises: per-tenant
/// store subdirectories, per-tenant metric namespaces next to intact
/// aggregate series, and per-tenant stats that add up to the fleet's.
#[test]
fn three_tenants_fold_parity_and_namespaces_tiered() {
    let tables = [table(0, 1500), table(2, 1500), table(5, 1500)];
    let names = ["orders", "events", "logs"];
    let root = tmproot("three");
    // A fixed interleave with queries drifting from column a to b (forcing
    // switches + folds) and ingest bursts on every tenant.
    let trace: Vec<(u8, u8, u16)> = (0..240)
        .map(|i| {
            let tenant = (i % 3) as u8;
            let kind = if i % 11 == 7 {
                9 // ingest burst
            } else if i < 120 {
                0 // column a
            } else {
                1 // column b
            };
            (tenant, kind, (i as u16).wrapping_mul(37) % 900)
        })
        .collect();
    let (script, per_tenant) = materialize(&tables, &trace);
    let specs = (0..3)
        .map(|i| tenant_spec(names[i], &tables[i], oreo_config(29 + i as u64)))
        .collect();
    let engine = Engine::start_tenants(specs, EngineConfig::sequential_parity().tiered(&root));
    // Tenant stores live under per-tenant subdirectories of one data dir.
    for name in names {
        assert!(
            root.join(format!("tenant-{name}"))
                .join("gen-000001")
                .exists(),
            "tenant-{name} store not created"
        );
        assert!(
            root.join(format!("tenant-{name}")).join("wal.log").exists(),
            "tenant-{name} WAL not created"
        );
    }
    drive(&engine, &script);
    engine.drain();

    // Per-tenant metric namespaces exist and agree with the aggregates.
    let snap = engine.registry().snapshot();
    let mut per_tenant_completed = 0;
    for i in 0..3 {
        let c = snap
            .counter(&format!("tenant.{i}.engine.queries_completed"))
            .expect("per-tenant series registered");
        assert!(c > 0, "tenant {i} served no queries?");
        per_tenant_completed += c;
    }
    assert_eq!(
        snap.counter("engine.queries_completed"),
        Some(per_tenant_completed),
        "aggregate must equal the sum of tenant series"
    );

    let multi = engine.shutdown();
    assert!(multi.tiered_errors.is_empty(), "{:?}", multi.tiered_errors);
    assert_eq!(multi.tenants.len(), 3);
    assert_eq!(
        multi.queries,
        multi.tenants.iter().map(|t| t.queries).sum::<u64>()
    );
    assert!(
        multi.tenants.iter().all(|t| t.switches >= 1),
        "every tenant's drift should reorganize: {:?}",
        multi.tenants.iter().map(|t| t.switches).collect::<Vec<_>>()
    );
    // Windows are tagged with their tenant and every tenant shows up.
    for name in names {
        assert!(
            multi.windows.iter().any(|w| w.tenant == name),
            "no window for {name}"
        );
    }
    for i in 0..3 {
        let solo_root = tmproot(names[i]);
        let solo = run_solo(
            &tables[i],
            oreo_config(29 + i as u64),
            EngineConfig::sequential_parity().tiered(&solo_root),
            &per_tenant[i],
        );
        assert_tenant_parity(&multi, i, &solo, "three-tenant tiered");
        let _ = std::fs::remove_dir_all(solo_root);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// A single-tenant engine must not grow tenant-namespaced series — PR 8's
/// registry schema is frozen for the N = 1 case.
#[test]
fn single_tenant_registry_schema_is_unchanged() {
    let t = table(0, 800);
    let engine = Engine::start(
        Arc::clone(&t),
        Arc::new(RangeLayout::from_sample(&t, 0, 8)),
        Arc::new(oreo_layout::QdTreeGenerator::new()),
        oreo_config(1),
        EngineConfig::sequential_parity(),
    );
    for i in 0..50i64 {
        let q = QueryBuilder::new(t.schema())
            .between("a", (i * 11) % 800, (i * 11) % 800 + 40)
            .build();
        engine.submit(q);
    }
    engine.drain();
    let snap = engine.registry().snapshot();
    assert_eq!(snap.counter("engine.queries_completed"), Some(50));
    assert_eq!(
        snap.counter("tenant.0.engine.queries_completed"),
        None,
        "single-tenant runs must not register tenant namespaces"
    );
    let stats = engine.shutdown();
    assert_eq!(stats.tenants.len(), 1);
    assert_eq!(stats.tenants[0].name, "default");
    assert_eq!(stats.tenants[0].queries, 50);
    assert_eq!(stats.tenants[0].ledger, stats.ledger);
}

/// Starvation freedom under a zero α budget: nothing is admissible on
/// budget alone, so *every* switch must land through the force-admit
/// bound. Each tenant's due switches all publish, deferral is observed
/// and recorded, and no window's deferral exceeds the configured bound
/// plus bounded scheduling slack.
#[test]
fn zero_budget_scheduler_never_starves_a_tenant() {
    let tables = [table(0, 1500), table(4, 1500)];
    let names = ["aggressor", "victim"];
    const PER_TENANT: u64 = 700;
    const MAX_DEFER: u64 = 150;
    let specs = (0..2)
        .map(|i| tenant_spec(names[i], &tables[i], oreo_config(43 + i as u64)))
        .collect();
    let engine = Engine::start_tenants(
        specs,
        EngineConfig::sequential_parity().with_budget(ReorgBudget {
            fraction: 0.0,
            burst: 0.0,
            max_defer_queries: MAX_DEFER,
        }),
    );
    // Both tenants drift a → b so both *need* switches; the zero budget
    // defers every one of them until the force-admit clock fires.
    for i in 0..PER_TENANT {
        for (tenant, t) in tables.iter().enumerate() {
            let col = if i < PER_TENANT / 2 { "a" } else { "b" };
            let lo = ((i * 37) % 900) as i64;
            let q = QueryBuilder::new(t.schema())
                .between(col, lo, lo + 60)
                .build();
            // Tracked waits keep the observed clock moving at query
            // granularity, so deferral windows are measured tightly.
            engine.submit_tracked_to(tenant, q).wait();
        }
    }
    engine.drain();
    let stats = engine.shutdown();
    let total_observed = 2 * PER_TENANT;
    assert!(stats.reorg_budget_spent > 0.0, "switches were admitted");
    for ten in &stats.tenants {
        assert!(ten.switches >= 1, "{} never reorganized", ten.name);
        assert_eq!(
            ten.snapshots_published, ten.switches,
            "{}: a due switch never landed",
            ten.name
        );
    }
    assert!(
        stats.tenants.iter().map(|t| t.reorg_deferrals).sum::<u64>() >= 1,
        "a zero budget must actually defer"
    );
    // The deferral window is bounded: force-admit fires MAX_DEFER steps
    // after the decision; the admitted build may then wait behind a
    // bounded number of in-flight builds, never until end-of-stream.
    let slack = total_observed / 2;
    for w in &stats.windows {
        assert!(
            w.deferred_queries <= MAX_DEFER + slack,
            "window for {} deferred {} queries (bound {})",
            w.tenant,
            w.deferred_queries,
            MAX_DEFER + slack
        );
    }
    // And the recorded per-tenant maximum agrees with the windows.
    for ten in &stats.tenants {
        let max_in_windows = stats
            .windows
            .iter()
            .filter(|w| w.tenant == ten.name)
            .map(|w| w.deferred_queries)
            .max()
            .unwrap_or(0);
        assert_eq!(ten.max_deferred_queries, max_in_windows, "{}", ten.name);
    }
}
