//! Criterion microbenchmarks of OREO's hot paths: Morton encoding, Qd-tree
//! construction, metadata-based cost evaluation, D-UMTS steps, Algorithm 5
//! admission distances, and the on-disk codec.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oreo_core::{Dumts, DumtsConfig, TransitionPolicy};
use oreo_layout::{build_exact_model, morton_encode, QdTreeBuilder, ZOrderLayout};
use oreo_query::QueryBuilder;
use oreo_sim::offline_optimum;
use oreo_storage::cost_vector_distance;
use oreo_workload::{tpch, StreamConfig};
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    c.bench_function("morton_encode_3d_8bit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            black_box(morton_encode(
                &[i & 0xff, (i >> 8) & 0xff, (i >> 3) & 0xff],
                8,
            ))
        })
    });
}

fn bench_qdtree_build(c: &mut Criterion) {
    let table = tpch::tpch_table(4_000, 1);
    let templates = tpch::tpch_templates(table.schema());
    let stream = oreo_workload::generate_stream(
        &templates,
        StreamConfig {
            total_queries: 200,
            segments: 2,
            seed: 3,
            ..Default::default()
        },
    );
    c.bench_function("qdtree_build_4k_sample_200q_k32", |b| {
        b.iter(|| black_box(QdTreeBuilder::new(32).build(&table, &stream.queries)))
    });
}

fn bench_cost_eval(c: &mut Criterion) {
    let table = tpch::tpch_table(20_000, 1);
    let templates = tpch::tpch_templates(table.schema());
    let stream = oreo_workload::generate_stream(
        &templates,
        StreamConfig {
            total_queries: 100,
            segments: 2,
            seed: 3,
            ..Default::default()
        },
    );
    let tree = QdTreeBuilder::new(64).build(&table, &stream.queries);
    let model = build_exact_model(&tree, 0, &table);
    let q = &stream.queries[0];
    c.bench_function("layout_cost_eval_k64", |b| {
        b.iter(|| black_box(model.cost(q)))
    });
    let sample = &stream.queries[..64.min(stream.queries.len())];
    c.bench_function("cost_vector_64q_k64", |b| {
        b.iter(|| black_box(model.cost_vector(sample)))
    });
}

fn bench_zorder_route(c: &mut Criterion) {
    let table = tpch::tpch_table(20_000, 1);
    let shipdate = table.schema().col("l_shipdate").unwrap();
    let qty = table.schema().col("l_quantity").unwrap();
    let layout = ZOrderLayout::from_sample(&table, &[shipdate, qty], 8, 64);
    c.bench_function("zorder_assign_20k_rows", |b| {
        b.iter(|| black_box(oreo_layout::LayoutSpec::assign(&layout, &table)))
    });
}

fn bench_dumts_step(c: &mut Criterion) {
    c.bench_function("dumts_observe_query_24_states", |b| {
        let states: Vec<u64> = (0..24).collect();
        b.iter_batched(
            || {
                Dumts::new(
                    &states,
                    DumtsConfig {
                        alpha: 80.0,
                        transition: TransitionPolicy::default_biased(),
                        stay_on_reset: true,
                        mid_phase_admission: true,
                        seed: 1,
                    },
                )
            },
            |mut d| {
                for i in 0..100u64 {
                    d.observe_query(|s| ((s * 31 + i) % 97) as f64 / 97.0);
                }
                black_box(d.switches())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_admission_distance(c: &mut Criterion) {
    let a: Vec<f64> = (0..64).map(|i| (i % 7) as f64 / 7.0).collect();
    let bvec: Vec<f64> = (0..64).map(|i| (i % 5) as f64 / 5.0).collect();
    c.bench_function("admission_l1_distance_64", |b| {
        b.iter(|| black_box(cost_vector_distance(&a, &bvec)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let table = tpch::tpch_table(10_000, 1);
    c.bench_function("encode_partition_10k_rows", |b| {
        b.iter(|| black_box(oreo_storage::format::encode_partition(&table)))
    });
    let bytes = oreo_storage::format::encode_partition(&table);
    let schema = table.schema().clone();
    c.bench_function("decode_partition_10k_rows", |b| {
        b.iter(|| black_box(oreo_storage::format::decode_partition(&schema, &bytes).unwrap()))
    });
}

fn bench_offline_dp(c: &mut Criterion) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let costs: Vec<Vec<f64>> = (0..2_000)
        .map(|_| (0..20).map(|_| rng.random::<f64>()).collect())
        .collect();
    c.bench_function("offline_dp_2000q_20_states", |b| {
        b.iter(|| black_box(offline_optimum(&costs, 80.0).total_cost))
    });
}

fn bench_queries(c: &mut Criterion) {
    let table = tpch::tpch_table(50_000, 1);
    let q = QueryBuilder::new(table.schema())
        .between("l_shipdate", 1000, 1365)
        .lt("l_quantity", 24)
        .build();
    c.bench_function("row_predicate_eval_50k_rows", |b| {
        b.iter(|| black_box(table.selectivity(&q.predicate)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_morton,
        bench_qdtree_build,
        bench_cost_eval,
        bench_zorder_route,
        bench_dumts_step,
        bench_admission_distance,
        bench_codec,
        bench_offline_dp,
        bench_queries
);
criterion_main!(benches);
