//! Vectorized scan-kernel microbenchmark: chunked selection-vector
//! evaluation ([`oreo_storage::kernel`]) vs the row-at-a-time interpreter
//! it replaced, on the in-memory and buffer-pooled scan paths.
//!
//! Variants (all over the same TPC-H lineitem table and the same Q6-style
//! multi-atom predicate):
//!
//! * `memory_rowwise` / `memory_vectorized` — memory-resident snapshot.
//! * `pooled_warm_rowwise` / `pooled_warm_vectorized` — disk-backed
//!   generation through a buffer pool large enough to hold the predicate's
//!   column payloads (every page a pool hit after the warmup scan).
//! * `pooled_cold_vectorized` — a fresh (empty) pool per scan: decode and
//!   page-fetch cost dominates, bounding what kernel speedups can buy.
//!
//! `--json <path>` writes a machine-readable report (rows/sec per variant
//! plus vectorized-over-interpreted speedups); CI gates on the pool-warm
//! speedup staying ≥ 2×.

use criterion::{criterion_group, criterion_main, Criterion};
use oreo_bench::common::{json_path_arg, write_json_report, Json};
use oreo_query::{Predicate, QueryBuilder};
use oreo_storage::{BufferPool, BufferPoolConfig, SnapshotScan, TableSnapshot, TieredStore};
use oreo_workload::tpch;
use std::hint::black_box;
use std::time::Instant;

/// Partitions in the benchmark layout (round-robin, so nothing prunes and
/// every scan pays full predicate-evaluation cost).
const PARTITIONS: u32 = 16;

/// One measured variant: name, sustained throughput, mean per-scan time.
struct Measurement {
    name: &'static str,
    rows_per_sec: f64,
    mean_scan_us: f64,
}

/// Time `iters` runs of `scan`, verifying each run returns `expected`
/// matches, and convert to rows/sec over the full (unpruned) table.
fn measure(
    name: &'static str,
    rows: usize,
    iters: usize,
    expected: &[u32],
    mut scan: impl FnMut() -> SnapshotScan,
) -> Measurement {
    // Warmup run, doubling as the correctness oracle check.
    let first = scan();
    assert_eq!(
        first.matches, expected,
        "{name}: scan disagrees with the oracle row set"
    );
    let start = Instant::now();
    for _ in 0..iters {
        black_box(scan());
    }
    let elapsed = start.elapsed().as_secs_f64();
    let m = Measurement {
        name,
        rows_per_sec: (rows * iters) as f64 / elapsed,
        mean_scan_us: elapsed / iters as f64 * 1e6,
    };
    println!(
        "{:<24} {:>12.0} rows/sec  ({:>8.1} µs/scan, {} matches)",
        m.name,
        m.rows_per_sec,
        m.mean_scan_us,
        expected.len()
    );
    m
}

/// The Q6-style benchmark predicate: int range + float range + int bound +
/// string set — one kernel per physical column representation.
fn bench_predicate(table: &oreo_storage::Table) -> Predicate {
    QueryBuilder::new(table.schema())
        .between("l_shipdate", 1000, 1365)
        .between("l_discount", 0.02, 0.07)
        .lt("l_quantity", 24)
        .in_set("l_shipmode", ["AIR", "TRUCK", "MAIL"])
        .build_predicate()
}

fn scan_kernels(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows: usize = if quick { 60_000 } else { 200_000 };
    let iters = if quick { 20 } else { 30 };

    let table = tpch::tpch_table(rows, 1);
    let pred = bench_predicate(&table);
    let assignment: Vec<u32> = (0..rows).map(|i| i as u32 % PARTITIONS).collect();
    let snap = TableSnapshot::build(&table, &assignment, PARTITIONS as usize, 0, "bench");
    let expected = snap.scan_rowwise(&pred).matches;

    println!(
        "== scan_kernels: {rows} rows, {PARTITIONS} partitions, 4-atom predicate, \
         {} matches ==",
        expected.len()
    );

    // Criterion latency lines for the two memory variants.
    c.bench_function("scan_memory_rowwise", |b| {
        b.iter(|| black_box(snap.scan_rowwise(&pred)))
    });
    c.bench_function("scan_memory_vectorized", |b| {
        b.iter(|| black_box(snap.scan(&pred)))
    });

    let mem_rowwise = measure("memory_rowwise", rows, iters, &expected, || {
        snap.scan_rowwise(&pred)
    });
    let mem_vectorized = measure("memory_vectorized", rows, iters, &expected, || {
        snap.scan(&pred)
    });

    // Disk-backed snapshot for the pooled variants.
    let root = std::env::temp_dir().join(format!(
        "oreo-scan-kernels-{}-{}",
        std::process::id(),
        rand::random::<u64>()
    ));
    let mut tiered_snap =
        TableSnapshot::build(&table, &assignment, PARTITIONS as usize, 0, "bench");
    let (store, _) = TieredStore::create(&root, &mut tiered_snap).expect("create tiered store");
    let warm_pool = BufferPool::new(BufferPoolConfig::default());

    let warm_rowwise = measure("pooled_warm_rowwise", rows, iters, &expected, || {
        tiered_snap
            .scan_pooled_rowwise(&pred, &warm_pool)
            .expect("pooled scan")
    });
    let warm_vectorized = measure("pooled_warm_vectorized", rows, iters, &expected, || {
        tiered_snap
            .scan_pooled(&pred, &warm_pool)
            .expect("pooled scan")
    });
    let cold_iters = if quick { 3 } else { 5 };
    let cold_vectorized = measure(
        "pooled_cold_vectorized",
        rows,
        cold_iters,
        &expected,
        || {
            let cold_pool = BufferPool::new(BufferPoolConfig::default());
            tiered_snap
                .scan_pooled(&pred, &cold_pool)
                .expect("pooled scan")
        },
    );

    let kernel_scan = snap.scan(&pred);
    let speedup_memory = mem_vectorized.rows_per_sec / mem_rowwise.rows_per_sec;
    let speedup_pooled_warm = warm_vectorized.rows_per_sec / warm_rowwise.rows_per_sec;
    println!(
        "vectorized speedup: {speedup_memory:.2}x memory, {speedup_pooled_warm:.2}x pool-warm \
         ({} chunks, {} rows short-circuited per scan)",
        kernel_scan.chunks_evaluated, kernel_scan.rows_short_circuited
    );

    if let Some(path) = json_path_arg() {
        let variants = [
            &mem_rowwise,
            &mem_vectorized,
            &warm_rowwise,
            &warm_vectorized,
            &cold_vectorized,
        ];
        let doc = Json::obj([
            ("benchmark", Json::from("scan_kernels")),
            ("rows", Json::from(rows)),
            ("partitions", Json::from(PARTITIONS as u64)),
            ("predicate_atoms", Json::from(4u64)),
            ("matches", Json::from(expected.len())),
            (
                "variants",
                Json::Arr(
                    variants
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("name", Json::from(m.name)),
                                ("rows_per_sec", Json::from(m.rows_per_sec)),
                                ("mean_scan_us", Json::from(m.mean_scan_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("speedup_memory", Json::from(speedup_memory)),
            ("speedup_pooled_warm", Json::from(speedup_pooled_warm)),
            ("chunks_evaluated", Json::from(kernel_scan.chunks_evaluated)),
            (
                "rows_short_circuited",
                Json::from(kernel_scan.rows_short_circuited),
            ),
        ]);
        write_json_report(&path, &doc);
    }

    drop(store);
    drop(tiered_snap);
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scan_kernels
);
criterion_main!(benches);
